"""Shim for legacy editable installs (environments without `wheel`).

All metadata lives in pyproject.toml; this file only enables
``pip install -e . --no-use-pep517`` on toolchains that cannot build
PEP 517 editable wheels.
"""

from setuptools import setup

setup()
