"""Figure 5 — scalability: precision vs dataset sampling ratio.

The paper samples each dataset at ratios 0.1-0.5 (budget scales with the
sample) and reports precision per framework.  Its shape: CrowdRL stays high
as scale grows while baselines degrade.
"""

from __future__ import annotations

from repro.harness.figures import fig5
from repro.harness.report import render_figures


def test_fig5_scalability(benchmark, bench_scale, bench_seeds):
    panels = benchmark.pedantic(
        lambda: fig5(scale=bench_scale * 2, n_seeds=bench_seeds),
        rounds=1, iterations=1,
    )
    print("\n" + render_figures(panels))
    from conftest import save_report

    save_report("fig5", render_figures(panels))

    for panel in panels:
        for name, values in panel.series.items():
            benchmark.extra_info[f"{panel.figure}[{name}]"] = values

    # Shape assertion over panel means (individual subsampled panels are
    # small and noisy at bench scale): averaged across the three datasets,
    # CrowdRL at the largest sampling ratio is within 6% of the best
    # framework's mean.
    import numpy as np

    finals_by_framework = {
        name: np.mean([p.series[name][-1] for p in panels])
        for name in panels[0].series
    }
    crowdrl = finals_by_framework["CrowdRL"]
    assert crowdrl >= max(finals_by_framework.values()) - 0.06
