"""Shared benchmark configuration.

Every figure benchmark runs the corresponding harness experiment once
(``benchmark.pedantic`` with a single round — these are minutes-scale
end-to-end experiments, not microseconds-scale kernels), prints the
rows/series the paper's figure plots, and attaches the headline numbers to
``benchmark.extra_info`` so they land in pytest-benchmark's JSON output.

``BENCH_SCALE`` (env ``REPRO_BENCH_SCALE``) controls dataset size:
0.02 keeps the full suite in a few minutes; raise it toward 1.0 to
approach paper-size datasets.
"""

from __future__ import annotations

import os

import pytest

#: Dataset scale for all figure benchmarks (1.0 = paper size).
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.05"))
#: Seeds averaged per configuration.
BENCH_SEEDS = int(os.environ.get("REPRO_BENCH_SEEDS", "2"))


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


@pytest.fixture(scope="session")
def bench_seeds() -> int:
    return BENCH_SEEDS


RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def save_report(name: str, text: str) -> None:
    """Persist a figure's rendered table under benchmarks/results/.

    pytest captures stdout of passing tests, so the printed tables would
    otherwise be invisible in a plain ``pytest benchmarks/`` log; the saved
    files are the durable record of each regenerated figure.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text + "\n")
