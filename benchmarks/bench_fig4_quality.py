"""Figure 4 — labelling quality at equal budget.

Regenerates the paper's three panels (Precision / Recall / F1) for the six
frameworks across all seven datasets.  The paper's shape: CrowdRL on top by
5-20% on the speech tasks, OBA at the bottom, CP feature views beating the
single views, Fashion easier than speech.
"""

from __future__ import annotations

from repro.harness.figures import fig4
from repro.harness.report import render_figures


def test_fig4_quality(benchmark, bench_scale, bench_seeds):
    panels = benchmark.pedantic(
        lambda: fig4(scale=bench_scale, n_seeds=bench_seeds),
        rounds=1, iterations=1,
    )
    print("\n" + render_figures(panels))
    from conftest import save_report

    save_report("fig4", render_figures(panels))

    precision = panels[0]
    for name, values in precision.series.items():
        benchmark.extra_info[f"precision_mean[{name}]"] = (
            sum(values) / len(values)
        )

    # Shape assertions (paper's headline result): CrowdRL's average
    # precision beats every baseline's, and OBA is the weakest.
    means = {
        name: sum(vals) / len(vals) for name, vals in precision.series.items()
    }
    assert means["CrowdRL"] == max(means.values())
    assert means["OBA"] == min(means.values())
