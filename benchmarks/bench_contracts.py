"""Contract-overhead micro-benchmarks.

Not a paper figure — these pin the cost model of
:mod:`repro.analysis.contracts`: an *enabled* ``@shaped``/``@row_stochastic``
wrapper pays one signature bind plus the numpy checks, while a *disabled*
decorator (``REPRO_CONTRACTS=0`` or ``enabled=False``) returns the
original function object, so the disabled path must benchmark identically
to the undecorated function (the acceptance bar is a delta under 2%, and
identity gives exactly 0%).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.contracts import row_stochastic, shaped


def _em_style_kernel(counts: np.ndarray) -> np.ndarray:
    return counts / counts.sum(axis=-1, keepdims=True)


@pytest.fixture(scope="module")
def counts():
    rng = np.random.default_rng(7)
    return rng.random((50, 4, 4)) + 0.1


def test_bench_kernel_undecorated(benchmark, counts):
    """Baseline: the raw normalisation kernel."""
    benchmark(_em_style_kernel, counts)


def test_bench_kernel_contracts_disabled(benchmark, counts):
    """Disabled contracts are the same function object as the baseline."""
    fn = shaped(counts="(n_annotators, n_classes, n_classes)",
                enabled=False)(_em_style_kernel)
    assert fn is _em_style_kernel  # identity, not a pass-through wrapper
    benchmark(fn, counts)


def test_bench_kernel_contracts_enabled(benchmark, counts):
    """Enabled contracts: bind + shape walk + stochasticity check."""
    fn = shaped(counts="(n_annotators, n_classes, n_classes)",
                enabled=True)(
        row_stochastic(result=True, enabled=True)(_em_style_kernel)
    )
    benchmark(fn, counts)
