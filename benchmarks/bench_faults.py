"""Resilience-layer overhead micro-benchmarks.

Not a paper figure — these pin the acceptance bar of the fault-tolerance
layer: with every fault rate at zero the ``UnreliablePlatform`` and the
``ResilientCollector`` both take pure-delegation fast paths, so draining a
batch through the full stack must cost within 5% of draining it through
the bare platform.  A separate case measures the stack under a 20% fault
rate, where recovery work (retries, reassignment, breaker bookkeeping) is
*expected* to cost extra.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.crowd.annotator import Annotator, AnnotatorKind
from repro.crowd.compose import wrap
from repro.crowd.confusion import ConfusionMatrix
from repro.crowd.cost import BudgetManager
from repro.crowd.faults import FaultModel
from repro.crowd.platform import CrowdPlatform
from repro.crowd.pool import AnnotatorPool

N_OBJECTS = 200
N_ANNOTATORS = 8


def _build_platform(seed=0):
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 2, size=N_OBJECTS)
    streams = rng.spawn(N_ANNOTATORS)
    annotators = [
        Annotator(annotator_id=j, kind=AnnotatorKind.WORKER,
                  confusion=ConfusionMatrix.from_accuracy(2, 0.7),
                  cost=1.0, _rng=streams[j])
        for j in range(N_ANNOTATORS)
    ]
    pool = AnnotatorPool(annotators, 2)
    return CrowdPlatform(labels, pool, BudgetManager(10.0 ** 9))


def _assignments():
    return [(i, list(range(N_ANNOTATORS))) for i in range(N_OBJECTS)]


def _drain(platform_factory):
    def run():
        platform = platform_factory()
        return platform.ask_batch(_assignments())
    return run


def _wrapped(rate):
    def factory():
        platform = _build_platform()
        model = FaultModel.from_rate(N_ANNOTATORS, rate, rng=1)
        return wrap(platform, faults=model, resilient=True,
                    resilience_seed=2)
    return factory


def test_bench_bare_platform(benchmark):
    """Baseline: the unwrapped platform drains the batch."""
    records = benchmark(_drain(_build_platform))
    assert len(records) == N_OBJECTS * N_ANNOTATORS


def test_bench_resilient_stack_rate_zero(benchmark):
    """Acceptance: rate-0 stack within 5% of the bare platform.

    Compare its mean against ``test_bench_bare_platform`` (both build the
    platform inside the timed region, so the delta isolates the two
    wrapper hops' delegation cost).
    """
    records = benchmark(_drain(_wrapped(0.0)))
    assert len(records) == N_OBJECTS * N_ANNOTATORS
    benchmark.extra_info["acceptance"] = "mean <= 1.05 x bare platform"


def test_bench_resilient_stack_rate_20(benchmark):
    """The recovery price under a 20% fault rate (not a regression bar)."""
    records = benchmark(_drain(_wrapped(0.2)))
    assert records  # most answers recovered via retry/reassignment
