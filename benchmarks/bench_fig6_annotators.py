"""Figure 6 — precision vs number of annotators |W| in {3, 5, 7}.

The paper's shape: CrowdRL leads at every pool size; baselines are more
sensitive to the annotator count; Fashion is the least sensitive dataset.
"""

from __future__ import annotations

from repro.harness.figures import fig6
from repro.harness.report import render_figures


def test_fig6_varying_annotators(benchmark, bench_scale, bench_seeds):
    panels = benchmark.pedantic(
        lambda: fig6(scale=bench_scale, n_seeds=bench_seeds),
        rounds=1, iterations=1,
    )
    print("\n" + render_figures(panels))
    from conftest import save_report

    save_report("fig6", render_figures(panels))

    for panel in panels:
        for name, values in panel.series.items():
            benchmark.extra_info[f"{panel.figure}[{name}]"] = values

    # Shape assertions over panel *means* (single bench-scale panels are
    # noisy): averaged across datasets, CrowdRL at |W|=7 holds what it had
    # at |W|=3 and stays within 8% of the best framework's mean.
    import numpy as np

    crowdrl_first = np.mean([p.series["CrowdRL"][0] for p in panels])
    crowdrl_final = np.mean([p.series["CrowdRL"][-1] for p in panels])
    assert crowdrl_final >= crowdrl_first - 0.06
    finals_by_framework = {
        name: np.mean([p.series[name][-1] for p in panels])
        for name in panels[0].series
    }
    assert crowdrl_final >= max(finals_by_framework.values()) - 0.08
