"""Observability-overhead benchmarks.

Not a paper figure — these pin the cost model of :mod:`repro.obs`: under
the disabled :data:`~repro.obs.NULL_REGISTRY` an instrumented code path
(phase timers + counter bumps) must stay within **5%** of the same code
with no instrumentation at all, the acceptance bar the ISSUE sets for
"disabled compiles to no-ops".  The bound is asserted in-code from
min-of-repeats timings, so a CI bench run fails outright when the no-op
path regresses; the pytest-benchmark cases alongside record the same
paths in the JSON output for trending.

The timed workload is calibrated to the episode path it stands in for:
one numpy reduction of a few hundred microseconds per iteration — the
measured weight of the real instrumented phases (``collect`` ~0.25 ms,
``featurize`` ~0.33 ms, ``q_forward`` ~0.6 ms per call on the reference
machine) — with the instrumented variant adding one ``phase_timer``
block and one counter bump per iteration, the framework loop's density.
A sub-microsecond-body tight loop would overstate the relative overhead
of instrumentation no real phase has.
"""

from __future__ import annotations

import timeit

import numpy as np
import pytest

from repro.obs import (
    NULL_REGISTRY,
    MetricsRegistry,
    get_registry,
    phase_timer,
    set_registry,
    use_registry,
)

#: Acceptance bar: disabled instrumentation overhead stays under 5%.
MAX_DISABLED_OVERHEAD = 0.05

ITERATIONS = 50


@pytest.fixture(autouse=True)
def _disabled_registry():
    """Benchmarks run under the default (disabled) registry."""
    previous = set_registry(None)
    yield
    set_registry(previous)


def _make_workload():
    rng = np.random.default_rng(11)
    # (500, 100) puts one loop body at ~0.2 ms — the weight of the real
    # instrumented phases (see module docstring).
    features = rng.random((500, 100))
    return features


def _plain_episode(features: np.ndarray) -> float:
    """The uninstrumented reference loop (featurize-sized numpy work)."""
    total = 0.0
    for _ in range(ITERATIONS):
        z = features - features.mean(axis=0)
        total += float(np.abs(z).sum())
    return total


def _instrumented_episode(features: np.ndarray) -> float:
    """Same loop with the framework's instrumentation density."""
    total = 0.0
    for _ in range(ITERATIONS):
        with phase_timer("featurize"):
            z = features - features.mean(axis=0)
            total += float(np.abs(z).sum())
        get_registry().inc("budget.collect", 1.0)
    return total


def _bare_instrumentation() -> None:
    """Exactly the per-iteration instrumentation, with an empty body."""
    with phase_timer("featurize"):
        pass
    get_registry().inc("budget.collect", 1.0)


def test_disabled_overhead_under_bound():
    """NULL_REGISTRY instrumentation costs < 5% of one phase body.

    Measured as a *ratio of two separately-timed minima* rather than an
    end-to-end A/B: on a shared CI box, wall-clock drift between two
    ~10 ms loop runs (frequency scaling, neighbours) easily exceeds the
    sub-1% quantity under test, while a tight loop over the bare
    instrumentation (sub-microsecond per pass) and the calibrated phase
    body (~0.2 ms per pass) each measure stably.  ``min`` over repeats
    filters interference; the asserted ratio is the per-phase overhead a
    real disabled run pays.
    """
    features = _make_workload()
    assert get_registry() is NULL_REGISTRY
    # Warm both paths (allocator, caches, bytecode) before measuring.
    _bare_instrumentation()
    _plain_episode(features)
    bare = min(timeit.repeat(
        _bare_instrumentation, number=20_000, repeat=7)) / 20_000
    body = min(timeit.repeat(
        lambda: _plain_episode(features), number=2, repeat=7)
    ) / (2 * ITERATIONS)
    overhead = bare / body
    assert overhead < MAX_DISABLED_OVERHEAD, (
        f"disabled-registry overhead {overhead:.2%} exceeds the "
        f"{MAX_DISABLED_OVERHEAD:.0%} bound "
        f"(instrumentation {bare * 1e9:.0f} ns per phase vs body "
        f"{body * 1e6:.1f} us per phase)"
    )


def test_instrumented_results_identical():
    """Instrumentation must not change the computation itself."""
    features = _make_workload()
    assert _plain_episode(features) == _instrumented_episode(features)
    reg = MetricsRegistry()
    with use_registry(reg):
        assert _plain_episode(features) == _instrumented_episode(features)
    assert reg.counter_value("budget.collect") == ITERATIONS


def test_bench_episode_uninstrumented(benchmark):
    """Baseline: the raw loop, no instrumentation in the source."""
    benchmark(_plain_episode, _make_workload())


def test_bench_episode_disabled_registry(benchmark):
    """Instrumented loop under NULL_REGISTRY (the default)."""
    assert get_registry() is NULL_REGISTRY
    benchmark(_instrumented_episode, _make_workload())


def test_bench_episode_enabled_registry(benchmark):
    """Instrumented loop under a live registry (collection cost)."""
    features = _make_workload()
    reg = MetricsRegistry()

    def run():
        with use_registry(reg):
            return _instrumented_episode(features)

    benchmark(run)
