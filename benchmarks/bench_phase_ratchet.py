"""Produce the deterministic metrics run the per-phase perf ratchet reads.

Runs one small CrowdRL experiment (fixed dataset/scale/seed — it
exercises all eight ratcheted phases: featurize, q_forward, select,
collect, e_step, m_step, enrich, dqn_train) several times with metrics
enabled and concatenates the raw ``phase`` events of every repeat into
one JSONL.  The minimum over that file is a min-over-calls *and*
min-over-runs — the tight-loop-minima idiom ``bench_obs.py`` uses,
applied to whole episodes — which is what
``python -m repro.obs report <out> --baseline ...`` then ratchets.

Usage (what the CI ``perf-ratchet`` job runs)::

    PYTHONPATH=src python benchmarks/bench_phase_ratchet.py --out ratchet.jsonl
    PYTHONPATH=src python -m repro.obs report ratchet.jsonl \
        --baseline benchmarks/results/BENCH_phase_baselines.json

Re-baselining after an intentional performance change::

    PYTHONPATH=src python benchmarks/bench_phase_ratchet.py --out ratchet.jsonl
    PYTHONPATH=src python -m repro.obs report ratchet.jsonl \
        --baseline benchmarks/results/BENCH_phase_baselines.json \
        --write-baseline
"""

from __future__ import annotations

import argparse
import os
import tempfile

from repro.harness.experiment import (
    ExperimentSetting,
    ExperimentSpec,
    run_experiment,
)
from repro.obs.baseline import PHASE_BASELINE_MAP, phase_minima

#: The ratchet workload: small but large enough that every ratcheted
#: phase clears the comparison floor, and fully deterministic so repeats
#: differ only in timing.
SETTING = ExperimentSetting("S12CP", scale=0.05, seed=0)
FRAMEWORK = "CrowdRL"
REPEATS = int(os.environ.get("REPRO_RATCHET_REPEATS", "3"))


def produce_events(out_path: str, repeats: int = REPEATS) -> None:
    """Run warm-up + ``repeats`` metric runs; concatenate events to ``out_path``."""
    def one_run(path: str) -> None:
        run_experiment(
            FRAMEWORK, SETTING,
            ExperimentSpec(metrics=True, metrics_out=path),
            pretrain=False,
        )

    with tempfile.TemporaryDirectory() as tmp:
        one_run(os.path.join(tmp, "warmup.jsonl"))  # caches, allocator
        with open(out_path, "w", encoding="utf-8") as out:
            for r in range(repeats):
                path = os.path.join(tmp, f"run{r}.jsonl")
                one_run(path)
                with open(path, "r", encoding="utf-8") as fh:
                    out.write(fh.read())


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="ratchet-metrics.jsonl",
        help="combined metrics JSONL to write (default ratchet-metrics.jsonl)",
    )
    parser.add_argument(
        "--repeats", type=int, default=REPEATS,
        help=f"timed episode repeats after warm-up (default {REPEATS})",
    )
    args = parser.parse_args()
    produce_events(args.out, repeats=args.repeats)
    minima = phase_minima(args.out)
    missing = sorted(set(PHASE_BASELINE_MAP) - set(minima))
    print(f"wrote {args.out}: per-phase minima over "
          f"{args.repeats} runs")
    for name in sorted(minima):
        stat = minima[name]
        print(f"  {name:<12} {stat['min_s'] * 1e6:9.1f} us  "
              f"({stat['calls']} calls)")
    if missing:
        print(f"FAIL: ratchet workload never hit: {', '.join(missing)}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
