"""Episode-stepping speedup: vectorized hot path vs the pre-PR reference.

The PR's acceptance bar is a **measured >= 10x** speedup of fig5-scale
episode stepping with bit-identical outputs.  This benchmark pins both
halves of that claim:

* the *reference* per-step cost — the pre-vectorization implementation,
  embedded verbatim below: a full feature-tensor rebuild every step with
  a Python loop over answered objects (``answer_counts`` per object) and
  the Python min-heap object selection;
* the *current* per-step cost — :class:`repro.core.StateFeaturizer`'s
  dirty-set refresh (recompute only the rows/columns a step touched)
  plus the ``np.argpartition``-based selection in
  :func:`repro.utils.topk.select_objects_by_topk_q`.

Both paths run against the same mid-episode state, outputs are asserted
``np.array_equal`` before anything is timed, and each side is measured
as a min-of-repeats per-step time (the ``bench_obs.py`` idiom).  Run as
a script to print the table, enforce the speedup floor and write
``benchmarks/results/BENCH_episode_stepping.json``::

    PYTHONPATH=src python benchmarks/bench_episode_stepping.py

Environment knobs: ``REPRO_STEPPING_SCALE`` (dataset scale, default 1.0
= the paper-size S12CP panel fig5 steps over), ``REPRO_STEPPING_MIN_SPEEDUP``
(assertion floor, default 10), ``REPRO_WRITE_BENCH=0`` to skip the JSON.
"""

from __future__ import annotations

import json
import os
import timeit

import numpy as np

from repro import make_platform
from repro.core.state import LabellingState
from repro.datasets.registry import load_dataset
from repro.utils.tables import format_table
from repro.utils.topk import (
    select_objects_by_topk_q,
    select_objects_by_topk_q_reference,
)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
RESULT_JSON = os.path.join(RESULTS_DIR, "BENCH_episode_stepping.json")

SCALE = float(os.environ.get("REPRO_STEPPING_SCALE", "1.0"))
MIN_SPEEDUP = float(os.environ.get("REPRO_STEPPING_MIN_SPEEDUP", "10"))

#: Annotators recorded between consecutive featurizations — the paper's
#: ``k`` assignments on one object per step.
TOUCH_K = 3
SELECT_BATCH = 16


# ----------------------------------------------------------------------
# Reference implementation — the pre-vectorization hot path, verbatim.
# ----------------------------------------------------------------------
def _reference_object_features(state: LabellingState) -> np.ndarray:
    from repro.crowd.history import UNANSWERED

    n = state.history.n_objects
    n_classes = state.history.n_classes
    answered = state.history.matrix != UNANSWERED
    n_answers = answered.sum(axis=1).astype(float)

    vote_share = np.zeros(n)  # majority vote share among answers
    for i in np.nonzero(n_answers > 0)[0]:
        counts = state.history.answer_counts(i)
        vote_share[i] = counts.max() / counts.sum()
    disagreement = np.where(n_answers > 0, 1.0 - vote_share, 0.0)

    proba = state._classifier_proba
    if proba is not None:
        part = np.partition(proba, -2, axis=1)
        clf_margin = part[:, -1] - part[:, -2]
        clf_maxp = proba.max(axis=1)
        clf_entropy = (
            -(proba * np.log(proba + 1e-12)).sum(axis=1) / np.log(n_classes)
        )
    else:
        clf_margin = np.zeros(n)
        clf_maxp = np.full(n, 1.0 / n_classes)
        clf_entropy = np.ones(n)

    return np.column_stack([
        np.minimum(n_answers / state.answer_norm, 1.0),
        disagreement,
        vote_share,
        clf_margin,
        clf_maxp,
        clf_entropy,
    ])


def _reference_annotator_features(state: LabellingState) -> np.ndarray:
    costs = state.pool.costs
    max_cost = costs.max()
    qualities = state.pool.estimated_qualities()
    experts = state.pool.expert_mask.astype(float)
    loads = np.array([
        state.history.annotator_load(j) for j in range(len(state.pool))
    ], dtype=float)
    load_norm = loads / max(state.history.n_objects, 1)
    return np.column_stack([costs / max_cost, qualities, experts, load_norm])


def _reference_global_features(state: LabellingState) -> np.ndarray:
    n = state.history.n_objects
    return np.array([
        state.budget.remaining / state.budget.total,
        len(state._human_labelled) / n,
        len(state._enriched) / n,
    ])


def reference_feature_tensor(state: LabellingState) -> np.ndarray:
    """The old per-step featurization: full rebuild, Python vote loop."""
    from repro.core.featurizer import (
        N_ANNOTATOR_FEATURES,
        N_GLOBAL_FEATURES,
        N_OBJECT_FEATURES,
        N_PAIR_FEATURES,
    )

    obj = _reference_object_features(state)
    ann = _reference_annotator_features(state)
    glob = _reference_global_features(state)
    n_obj, n_ann = obj.shape[0], ann.shape[0]
    tensor = np.empty((n_obj, n_ann, N_PAIR_FEATURES))
    tensor[:, :, :N_OBJECT_FEATURES] = obj[:, None, :]
    tensor[:, :, N_OBJECT_FEATURES:N_OBJECT_FEATURES + N_ANNOTATOR_FEATURES] = (
        ann[None, :, :]
    )
    tensor[:, :, -N_GLOBAL_FEATURES:] = glob[None, None, :]
    return tensor


# ----------------------------------------------------------------------
# Workload construction
# ----------------------------------------------------------------------
def build_midepisode_state(scale: float, seed: int = 0) -> LabellingState:
    """A fig5-scale state mid-episode: answers, estimates, classifier."""
    dataset = load_dataset("S12CP", scale=scale, rng=seed)
    platform = make_platform(
        dataset, n_workers=3, n_experts=2, budget=1e9, rng=seed + 1
    )
    state = LabellingState(
        platform.history, platform.pool, platform.budget, mask_enriched=False
    )
    rng = np.random.default_rng(seed + 2)
    n, w = platform.n_objects, len(platform.pool)
    # Answer ~two annotators per object for 80% of objects — the density
    # of a mid-episode history.
    for i in rng.permutation(n)[: int(0.8 * n)]:
        for j in rng.choice(w, size=2, replace=False):
            platform.ask(int(i), int(j))
    proba = rng.dirichlet(np.ones(dataset.n_classes), size=n)
    state.set_classifier_proba(proba)
    labelled = rng.permutation(n)[: n // 4]
    state.set_labelled(labelled[: n // 8], labelled[n // 8:])
    return state


def make_q_matrix(state: LabellingState, seed: int = 3) -> np.ndarray:
    """A masked Q-matrix of the shape the agent scores each step."""
    rng = np.random.default_rng(seed)
    n, w = state.history.n_objects, len(state.pool)
    q = rng.normal(size=(n, w))
    q[~state.action_mask()] = -np.inf
    return q


def _touch_schedule(state: LabellingState, steps: int, seed: int = 4):
    """Unanswered (object, [annotators]) pairs to record, one per step."""
    from repro.crowd.history import UNANSWERED

    rng = np.random.default_rng(seed)
    schedule = []
    matrix = state.history.matrix
    candidates = rng.permutation(np.flatnonzero(
        (matrix == UNANSWERED).sum(axis=1) >= TOUCH_K
    ))[:steps]
    for i in candidates:
        open_cols = np.flatnonzero(matrix[i] == UNANSWERED)
        schedule.append((int(i), [int(j) for j in open_cols[:TOUCH_K]]))
    return schedule


# ----------------------------------------------------------------------
# Measurement
# ----------------------------------------------------------------------
def verify_bit_identity(state: LabellingState, q: np.ndarray) -> None:
    """Both paths must agree exactly before either is timed."""
    assert np.array_equal(
        reference_feature_tensor(state), state.featurizer.features()
    ), "vectorized feature tensor diverged from the reference"
    assert select_objects_by_topk_q(q, TOUCH_K, SELECT_BATCH) == \
        select_objects_by_topk_q_reference(q, TOUCH_K, SELECT_BATCH), \
        "vectorized selection diverged from the heap reference"


def measure(scale: float = SCALE) -> dict:
    """Per-step featurize/select timings for both paths, plus speedups."""
    state = build_midepisode_state(scale)
    q = make_q_matrix(state)
    schedule = _touch_schedule(state, steps=8)
    verify_bit_identity(state, q)

    def step_reference() -> None:
        # The old loop rebuilt the whole tensor from scratch every step.
        for _ in schedule:
            reference_feature_tensor(state)

    def step_vectorized() -> None:
        # The new loop recomputes only what a step touched; marking rows
        # dirty reproduces what history.record's listener does per answer.
        feat = state.featurizer
        for obj, annotators in schedule:
            feat.mark_dirty(objects=[obj], annotators=annotators)
            feat.features()

    def select_reference() -> None:
        select_objects_by_topk_q_reference(q, TOUCH_K, SELECT_BATCH)

    def select_vectorized() -> None:
        select_objects_by_topk_q(q, TOUCH_K, SELECT_BATCH)

    timings = {}
    for name, fn, per_call in (
        ("featurize_reference", step_reference, len(schedule)),
        ("featurize_vectorized", step_vectorized, len(schedule)),
        ("select_reference", select_reference, 1),
        ("select_vectorized", select_vectorized, 1),
    ):
        fn()  # warm-up (allocator, caches, first-refresh paths)
        timings[name] = min(
            timeit.repeat(fn, number=3, repeat=7)
        ) / (3 * per_call)

    ref_step = timings["featurize_reference"] + timings["select_reference"]
    new_step = timings["featurize_vectorized"] + timings["select_vectorized"]
    return {
        "scale": scale,
        "n_objects": int(state.history.n_objects),
        "n_annotators": len(state.pool),
        "per_step_s": timings,
        "speedup": {
            "featurize": timings["featurize_reference"]
            / timings["featurize_vectorized"],
            "select": timings["select_reference"]
            / timings["select_vectorized"],
            "episode_step": ref_step / new_step,
        },
    }


def render(result: dict) -> str:
    t = result["per_step_s"]
    s = result["speedup"]
    rows = [
        ["featurize", f"{t['featurize_reference'] * 1e6:.1f}",
         f"{t['featurize_vectorized'] * 1e6:.1f}", f"{s['featurize']:.1f}x"],
        ["select", f"{t['select_reference'] * 1e6:.1f}",
         f"{t['select_vectorized'] * 1e6:.1f}", f"{s['select']:.1f}x"],
        ["episode step", "-", "-", f"{s['episode_step']:.1f}x"],
    ]
    header = (
        f"episode stepping at scale {result['scale']} "
        f"({result['n_objects']} objects x {result['n_annotators']} "
        f"annotators), per-step minima"
    )
    return header + "\n" + format_table(
        ["stage", "reference (us)", "vectorized (us)", "speedup"], rows
    )


def main() -> int:
    result = measure()
    print(render(result))
    if os.environ.get("REPRO_WRITE_BENCH", "1") != "0":
        os.makedirs(RESULTS_DIR, exist_ok=True)
        with open(RESULT_JSON, "w", encoding="utf-8") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nwrote {RESULT_JSON}")
    speedup = result["speedup"]["episode_step"]
    if speedup < MIN_SPEEDUP:
        print(f"FAIL: episode-step speedup {speedup:.1f}x is below the "
              f"{MIN_SPEEDUP:.0f}x floor")
        return 1
    print(f"ok: episode-step speedup {speedup:.1f}x "
          f">= {MIN_SPEEDUP:.0f}x floor")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
