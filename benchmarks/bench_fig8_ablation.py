"""Figure 8 — ablation study: M1 / M2 / M3 vs full CrowdRL (accuracy).

M1 drops CrowdRL's task selection (random TS), M2 drops its task
assignment (random TA), M3 replaces joint inference with PM.  The paper's
shape: every ablation hurts; full CrowdRL is the best of the four.
"""

from __future__ import annotations

from repro.harness.figures import fig8
from repro.harness.report import render_figure


def test_fig8_ablation(benchmark, bench_scale, bench_seeds):
    panel = benchmark.pedantic(
        lambda: fig8(scale=bench_scale, n_seeds=max(bench_seeds, 2)),
        rounds=1, iterations=1,
    )
    print("\n" + render_figure(panel))
    from conftest import save_report

    save_report("fig8", render_figure(panel))

    means = {
        name: sum(vals) / len(vals) for name, vals in panel.series.items()
    }
    for name, value in means.items():
        benchmark.extra_info[f"accuracy_mean[{name}]"] = value

    # Shape assertion: the full framework beats the average ablation.
    ablation_mean = (means["M1"] + means["M2"] + means["M3"]) / 3
    assert means["CrowdRL"] >= ablation_mean
