"""Figure 7 — precision vs initial sampling rate alpha in {0.01, 0.05, 0.1}.

The paper's shape: CrowdRL wins especially at small alpha (it can bootstrap
from few labels via joint inference + enrichment); once alpha is large
enough all methods flatten out.
"""

from __future__ import annotations

from repro.harness.figures import fig7
from repro.harness.report import render_figures


def test_fig7_varying_alpha(benchmark, bench_scale, bench_seeds):
    panels = benchmark.pedantic(
        lambda: fig7(scale=bench_scale, n_seeds=bench_seeds),
        rounds=1, iterations=1,
    )
    print("\n" + render_figures(panels))
    from conftest import save_report

    save_report("fig7", render_figures(panels))

    for panel in panels:
        for name, values in panel.series.items():
            benchmark.extra_info[f"{panel.figure}[{name}]"] = values

    # Shape assertion over panel means: averaged across the three datasets,
    # CrowdRL at the smallest alpha is within 8% of the best framework's
    # mean (the paper's "CrowdRL wins especially when alpha is small").
    import numpy as np

    smallest_by_framework = {
        name: np.mean([p.series[name][0] for p in panels])
        for name in panels[0].series
    }
    crowdrl = smallest_by_framework["CrowdRL"]
    assert crowdrl >= max(smallest_by_framework.values()) - 0.08
