"""Sharded-engine benchmarks: overhead, scaling, and bit-identity.

Not a paper figure — these pin the cost model of
:mod:`repro.harness.parallel`:

* **Serial overhead.** Routing a sweep through the engine with
  ``parallel=1`` (what every figure now does by default) must stay
  within :data:`MAX_SERIAL_OVERHEAD` of running the same task in a bare
  loop — the engine's bookkeeping (spawn-stream derivation, obs
  counters, outcome assembly) may not tax the common path.  Asserted
  in-code from min-of-repeats timings, like ``bench_obs.py``.
* **Bit-identity under parallelism.** Worker count is a wall-clock
  knob, never a results knob: ``parallel=2`` must reproduce the serial
  values exactly.  (On the 1-core reference VM the parallel run is
  *slower* — spawn start-up dominates — which is exactly what the
  committed scaling JSON should show: honest numbers, not a linear
  speedup this machine cannot produce.)

``python benchmarks/bench_parallel.py`` regenerates
``benchmarks/results/BENCH_parallel_scaling.json``.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time

import numpy as np

from repro.harness.parallel import SweepOptions, run_sharded
from repro.utils.rng import spawn_rng_at

#: Acceptance bar: the engine's serial rung stays within 25% of a bare loop.
MAX_SERIAL_OVERHEAD = 0.25

#: Shards per measured sweep and the per-shard workload: a ~25 ms chain
#: of (WORK x WORK) matmuls — light enough to keep min-of-repeats fast,
#: heavy enough that per-shard engine bookkeeping (~0.1 ms) cannot
#: dominate the ratio the overhead bound asserts.
N_SHARDS = 4
WORK = 220
ITERS = 30

RESULTS_PATH = os.path.join(
    os.path.dirname(__file__), "results", "BENCH_parallel_scaling.json"
)


def sweep_shard(payload, ctx):
    """A deterministic, engine-shaped shard: seeded compute + a draw.

    Module-level (spawn pickles it by reference) and a pure function of
    the payload and the shard's engine stream, like every real shard.
    """
    matrix = ctx.rng.random((payload["work"], payload["work"]))
    for _ in range(payload["iters"]):
        matrix = matrix @ matrix
        matrix /= np.abs(matrix).max()
    return {"checksum": float(matrix.sum()), "draw": float(ctx.rng.random())}


def _payloads():
    return [{"work": WORK, "iters": ITERS}] * N_SHARDS


def _bare_loop(seed):
    """The engine-free reference: same shards, same streams, bare loop."""
    values = []
    for index in range(N_SHARDS):
        rng = spawn_rng_at(seed, index)
        matrix = rng.random((WORK, WORK))
        for _ in range(ITERS):
            matrix = matrix @ matrix
            matrix /= np.abs(matrix).max()
        values.append({"checksum": float(matrix.sum()),
                       "draw": float(rng.random())})
    return values


def _engine_run(parallel, seed):
    outcomes = run_sharded(
        sweep_shard, _payloads(),
        options=SweepOptions(parallel=parallel, seed=seed),
    )
    return [o.value for o in outcomes]


def _min_of(repeats, fn, *args):
    best, value = None, None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn(*args)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, value


def test_serial_engine_overhead_bounded():
    """``parallel=1`` through the engine costs <25% over a bare loop."""
    bare_s, bare = _min_of(3, _bare_loop, 3)
    engine_s, engine = _min_of(3, _engine_run, 1, 3)
    assert engine == bare  # the engine streams ARE the bare streams
    overhead = engine_s / bare_s - 1.0
    assert overhead < MAX_SERIAL_OVERHEAD, (
        f"engine serial rung {engine_s:.4f}s vs bare loop {bare_s:.4f}s "
        f"({overhead:.1%} > {MAX_SERIAL_OVERHEAD:.0%})"
    )


def test_parallel_two_is_bit_identical():
    """Two spawn workers reproduce the serial values exactly."""
    assert _engine_run(2, 3) == _engine_run(1, 3)


def main():
    bare_s, bare = _min_of(3, _bare_loop, 3)
    runs = []
    for parallel in (1, 2):
        wall_s, values = _min_of(2, _engine_run, parallel, 3)
        runs.append({
            "parallel": parallel,
            "wall_s": round(wall_s, 4),
            "speedup_vs_serial_engine": None,
            "bit_identical_to_bare_loop": values == bare,
        })
    for run in runs:
        run["speedup_vs_serial_engine"] = round(
            runs[0]["wall_s"] / run["wall_s"], 3
        )
    payload = {
        "bench": "parallel_scaling",
        "n_shards": N_SHARDS,
        "work": WORK,
        "machine": {
            "system": platform.system(),
            "release": platform.release(),
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
        "bare_loop_wall_s": round(bare_s, 4),
        "serial_engine_overhead": round(runs[0]["wall_s"] / bare_s - 1.0, 4),
        "runs": runs,
        "note": (
            "Worker count is a wall-clock knob only: every run is "
            "bit-identical. Speedups below 1.0 mean spawn start-up "
            "dominates on this machine (see cpu_count)."
        ),
    }
    with open(RESULTS_PATH, "w", encoding="utf-8") as sink:
        json.dump(payload, sink, indent=2)
        sink.write("\n")
    json.dump(payload, sys.stdout, indent=2)
    print()


if __name__ == "__main__":
    main()
