"""Substrate micro-benchmarks: the hot kernels under every experiment.

Not a paper figure — these measure the throughput of the building blocks
(truth inference sweeps, DQN steps, featurization, classifier fits,
enrichment) so regressions in the substrates are visible independently of
the end-to-end experiments.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import make_platform
from repro.classifiers.logistic import LogisticRegressionClassifier
from repro.classifiers.mlp import MLPClassifier
from repro.core.config import CrowdRLConfig
from repro.core.state import LabellingState
from repro.datasets.synthetic import make_blobs
from repro.inference.dawid_skene import DawidSkene
from repro.inference.joint import JointInference
from repro.inference.majority import MajorityVote
from repro.inference.pm import PMInference
from repro.rl.dqn import DQNAgent, DQNConfig


@pytest.fixture(scope="module")
def answered_platform():
    dataset = make_blobs(200, 10, separation=2.5, rng=0)
    platform = make_platform(dataset, n_workers=3, n_experts=2,
                             budget=10.0 ** 9, rng=1)
    platform.ask_batch((i, [0, 1, 2]) for i in range(200))
    answers = {i: platform.history.answers_for(i) for i in range(200)}
    return dataset, platform, answers


@pytest.mark.parametrize("algo_factory,algo_name", [
    (lambda: MajorityVote(rng=0), "majority-vote"),
    (lambda: DawidSkene(), "dawid-skene"),
    (lambda: PMInference(), "pm"),
], ids=["mv", "ds", "pm"])
def test_inference_throughput(benchmark, answered_platform, algo_factory,
                              algo_name):
    _dataset, platform, answers = answered_platform
    algo = algo_factory()
    result = benchmark(lambda: algo.infer(answers, 2, len(platform.pool)))
    assert len(result.labels) == 200


def test_joint_inference_throughput(benchmark, answered_platform):
    dataset, platform, answers = answered_platform

    def run():
        clf = LogisticRegressionClassifier(dataset.n_features, 2, l2=0.02)
        joint = JointInference(clf, dataset.features,
                               expert_mask=platform.pool.expert_mask,
                               max_iter=10)
        return joint.infer(answers, 2, len(platform.pool))

    result = benchmark(run)
    assert len(result.labels) == 200


def test_state_featurization_throughput(benchmark, answered_platform):
    _dataset, platform, _answers = answered_platform
    state = LabellingState(platform.history, platform.pool, platform.budget)
    tensor = benchmark(state.feature_tensor)
    assert tensor.shape[0] == 200


def test_dqn_train_step_throughput(benchmark):
    agent = DQNAgent(DQNConfig(n_features=13, hidden=(64, 32),
                               min_buffer_for_training=32), rng=0)
    rng = np.random.default_rng(0)
    for _ in range(500):
        agent.remember(rng.normal(size=13), float(rng.random()),
                       rng.normal(size=(16, 13)), False)
    loss = benchmark(agent.train_step)
    assert loss is not None


def test_classifier_fit_throughput(benchmark):
    dataset = make_blobs(300, 20, separation=2.5, rng=0)

    def fit():
        clf = LogisticRegressionClassifier(20, 2)
        return clf.fit(dataset.features, dataset.labels)

    clf = benchmark(fit)
    assert (clf.predict(dataset.features) == dataset.labels).mean() > 0.8


def test_mlp_fit_throughput(benchmark):
    dataset = make_blobs(200, 10, separation=3.0, rng=0)

    def fit():
        clf = MLPClassifier(10, 2, hidden=(16,), epochs=20, rng=0)
        return clf.fit(dataset.features, dataset.labels)

    clf = benchmark.pedantic(fit, rounds=3, iterations=1)
    assert (clf.predict(dataset.features) == dataset.labels).mean() > 0.85


def test_crowdrl_iteration_throughput(benchmark):
    """One full CrowdRL labelling episode on a small workload."""
    from repro.core.framework import CrowdRL

    dataset = make_blobs(60, 8, separation=2.5, rng=2)
    config = CrowdRLConfig(alpha=0.1, batch_size=4,
                           min_truths_for_enrichment=12,
                           train_steps_per_iteration=2)

    def run():
        platform = make_platform(dataset, n_workers=3, n_experts=1,
                                 budget=180.0, rng=3)
        return CrowdRL(config, rng=4).run(dataset, platform)

    outcome = benchmark.pedantic(run, rounds=3, iterations=1)
    assert outcome.final_labels.shape == (60,)
