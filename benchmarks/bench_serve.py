"""Online-serving overlap: in-flight collection vs serial collection.

The serving PR's acceptance bar is that the event loop actually buys
concurrency: answers collected *in flight* (annotators working in
parallel on the virtual clock, sessions interleaving on one pool) must
finish in less virtual time than collecting the same answers one at a
time.  Everything here runs on the deterministic
:class:`~repro.serve.clock.VirtualClock`, so the numbers are exact and
reproducible — this benchmark measures the *schedule*, not host timing.

Two overlap ratios are pinned:

* **single project** — one served CrowdRL run; ratio of the serial
  service total (the sum of every answer's service time, i.e. one
  annotator at a time) to the virtual makespan.  With 3 workers and 2
  experts sharing the load the schedule should beat serial comfortably.
* **multi-tenant** — eight projects on one shared pool through
  :class:`~repro.serve.engine.ServeEngine`; ratio of the back-to-back
  total (each project served alone on its own clock, makespans summed)
  to the shared-engine makespan.  Interleaving sessions keeps annotators
  busy across project boundaries, so this must also beat 1.

Run as a script to print the table, enforce the overlap floors and write
``benchmarks/results/BENCH_serve_overlap.json``::

    PYTHONPATH=src python benchmarks/bench_serve.py

Environment knobs: ``REPRO_SERVE_SCALE`` (dataset scale, default 0.05),
``REPRO_SERVE_MIN_OVERLAP`` (single-project floor, default 1.5),
``REPRO_SERVE_MIN_TENANT_OVERLAP`` (multi-tenant floor, default 1.1 —
cross-session interleaving is bounded by each episode's batch barriers,
so it buys less than intra-batch parallelism), ``REPRO_WRITE_BENCH=0``
to skip the JSON.
"""

from __future__ import annotations

import json
import os

from repro.core.config import CrowdRLConfig
from repro.core.framework import CrowdRL
from repro.crowd.pool import AnnotatorPool
from repro.datasets.registry import load_dataset
from repro.harness.experiment import (
    ExperimentSetting,
    ExperimentSpec,
    run_experiment,
)
from repro.serve import ServeEngine
from repro.utils.tables import format_table

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
RESULT_JSON = os.path.join(RESULTS_DIR, "BENCH_serve_overlap.json")

SCALE = float(os.environ.get("REPRO_SERVE_SCALE", "0.05"))
MIN_OVERLAP = float(os.environ.get("REPRO_SERVE_MIN_OVERLAP", "1.5"))
MIN_TENANT_OVERLAP = float(
    os.environ.get("REPRO_SERVE_MIN_TENANT_OVERLAP", "1.1")
)

N_PROJECTS = 8
PROJECT_BUDGET = 80.0


def measure_single_project(scale: float = SCALE) -> dict:
    """One served run: virtual makespan vs the serial service total."""
    setting = ExperimentSetting("S12CP", scale=scale, seed=0)
    result = run_experiment(
        "CrowdRL", setting, ExperimentSpec(serve=True, metrics=True),
        pretrain=False,
    )
    serve = result.outcome.extras["serve"]
    serial = result.metrics["histograms"]["serve.service_s"]["sum"]
    return {
        "completed": serve["completed"],
        "makespan_s": serve["makespan"],
        "serial_s": serial,
        "lease_wait_s": serve["lease_wait_s"],
        "overlap": serial / serve["makespan"],
    }


def _projects(scale: float):
    """The benchmark's fixed project set (datasets + framework seeds)."""
    datasets = [
        load_dataset("S12CP", scale=scale, rng=100 + i)
        for i in range(N_PROJECTS)
    ]
    return datasets


def measure_multi_tenant(scale: float = SCALE) -> dict:
    """Eight shared-pool sessions vs the same eight back to back."""
    datasets = _projects(scale)
    pool = AnnotatorPool.build(datasets[0].n_classes, 3, 2, rng=7)

    shared = ServeEngine(pool)
    for i, dataset in enumerate(datasets):
        shared.add_project(
            f"proj{i}", dataset, CrowdRL(CrowdRLConfig(), rng=200 + i),
            budget=PROJECT_BUDGET, seed=i,
        )
    shared_report = shared.run()

    # Back-to-back baseline: each project alone on a fresh engine (its
    # own clock), so the pool never interleaves sessions.
    solo_total = 0.0
    for i, dataset in enumerate(datasets):
        solo_pool = AnnotatorPool.build(dataset.n_classes, 3, 2, rng=7)
        solo = ServeEngine(solo_pool)
        solo.add_project(
            f"proj{i}", dataset, CrowdRL(CrowdRLConfig(), rng=200 + i),
            budget=PROJECT_BUDGET, seed=i,
        )
        solo_total += solo.run().makespan

    return {
        "n_projects": N_PROJECTS,
        "shared_makespan_s": shared_report.makespan,
        "back_to_back_s": solo_total,
        "lease_wait_s": shared_report.lease_wait_s,
        "overlap": solo_total / shared_report.makespan,
    }


def measure(scale: float = SCALE) -> dict:
    """Both overlap measurements on the virtual clock."""
    return {
        "scale": scale,
        "single_project": measure_single_project(scale),
        "multi_tenant": measure_multi_tenant(scale),
    }


def render(result: dict) -> str:
    """Plain-text summary table of the two overlap ratios."""
    single = result["single_project"]
    multi = result["multi_tenant"]
    rows = [
        ["single project", f"{single['serial_s']:.1f}",
         f"{single['makespan_s']:.1f}", f"{single['overlap']:.2f}x"],
        [f"multi-tenant ({multi['n_projects']} sessions)",
         f"{multi['back_to_back_s']:.1f}",
         f"{multi['shared_makespan_s']:.1f}", f"{multi['overlap']:.2f}x"],
    ]
    header = (
        f"serving overlap at scale {result['scale']} "
        f"(virtual seconds, deterministic)"
    )
    return header + "\n" + format_table(
        ["workload", "serial (s)", "overlapped (s)", "overlap"], rows
    )


def main() -> int:
    """Measure, render, optionally persist, and enforce the floors."""
    result = measure()
    print(render(result))
    if os.environ.get("REPRO_WRITE_BENCH", "1") != "0":
        os.makedirs(RESULTS_DIR, exist_ok=True)
        with open(RESULT_JSON, "w", encoding="utf-8") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nwrote {RESULT_JSON}")
    failed = False
    for name, floor in (
        ("single_project", MIN_OVERLAP),
        ("multi_tenant", MIN_TENANT_OVERLAP),
    ):
        overlap = result[name]["overlap"]
        if overlap < floor:
            print(f"FAIL: {name} overlap {overlap:.2f}x is below the "
                  f"{floor:.2f}x floor")
            failed = True
        else:
            print(f"ok: {name} overlap {overlap:.2f}x "
                  f">= {floor:.2f}x floor")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
