"""Design-choice ablations beyond the paper's Fig. 8.

DESIGN.md calls out several design decisions this reproduction makes on top
of the paper's M1/M2/M3 ablations; this bench sweeps each against the
default configuration on one speech workload so their effect is measured,
not asserted:

* enrichment margin epsilon (Algorithm 1's top-2 gap test),
* sticky vs recomputed enrichment,
* the expert-quality floor of joint inference on/off,
* UCB1 exploration (Eq. 6) vs plain greedy action selection,
* Double DQN vs the classical DQN target.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro import CrowdRL, CrowdRLConfig, load_dataset, make_platform
from repro.utils.tables import format_table

_N_SEEDS = 2


def _run_variant(config: CrowdRLConfig, scale: float, seed: int) -> float:
    dataset = load_dataset("S12CP", scale=scale, rng=seed)
    platform = make_platform(dataset, n_workers=3, n_experts=2,
                             budget=10_000.0 * scale, rng=seed + 100)
    outcome = CrowdRL(config, rng=seed + 200).run(dataset, platform)
    return outcome.evaluate(platform.evaluation_labels()).f1


def _sweep(variants: dict[str, CrowdRLConfig], scale: float) -> dict[str, float]:
    return {
        name: float(np.mean([
            _run_variant(config, scale, seed) for seed in range(_N_SEEDS)
        ]))
        for name, config in variants.items()
    }


def test_design_ablations(benchmark, bench_scale):
    base = CrowdRLConfig()
    variants = {
        "default": base,
        "margin=0.1": dataclasses.replace(base, enrichment_margin=0.1),
        "margin=0.5": dataclasses.replace(base, enrichment_margin=0.5),
        "sticky-enrich": dataclasses.replace(base, sticky_enrichment=True),
        "no-expert-floor": dataclasses.replace(base, expert_floor=0.01),
        "greedy (no UCB)": dataclasses.replace(base, ucb_exploration=False),
        "double-dqn": dataclasses.replace(base, double_dqn=True),
        "no-expert-cap": dataclasses.replace(
            base, max_experts_per_object=None
        ),
        "no-shaping": dataclasses.replace(
            base, info_gain_weight=0.0, agreement_weight=0.0,
            pair_cost_weight=0.0,
        ),
    }
    results = benchmark.pedantic(
        lambda: _sweep(variants, bench_scale), rounds=1, iterations=1
    )

    rows = [[name, f1] for name, f1 in results.items()]
    print("\n" + format_table(["variant", "S12CP f1"], rows))
    from conftest import save_report

    save_report("design_ablations", format_table(["variant", "S12CP f1"], rows))
    for name, value in results.items():
        benchmark.extra_info[f"f1[{name}]"] = value

    # Every variant must still produce a working labelling pipeline.
    assert all(value > 0.5 for value in results.values())
    # The default should not be dominated by the degenerate variants.
    assert results["default"] >= results["no-shaping"] - 0.1
