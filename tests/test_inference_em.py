"""Tests for the EM-family inference algorithms (Dawid-Skene, PM, GLAD)."""

import numpy as np
import pytest

from repro.crowd.cost import BudgetManager
from repro.crowd.platform import CrowdPlatform
from repro.exceptions import ConfigurationError
from repro.inference.dawid_skene import DawidSkene
from repro.inference.glad import GladInference
from repro.inference.majority import MajorityVote
from repro.inference.pm import PMInference

from conftest import build_pool


def simulate_answers(n_objects=80, worker_accs=(0.85, 0.8, 0.75, 0.55),
                     seed=0):
    """All annotators answer all objects; returns (answers, truths)."""
    pool = build_pool(worker_accs=worker_accs, expert_accs=(), seed=seed)
    rng = np.random.default_rng(seed)
    truths = rng.integers(0, 2, size=n_objects)
    platform = CrowdPlatform(truths, pool, BudgetManager(10.0 ** 9))
    platform.ask_batch((i, list(range(len(pool)))) for i in range(n_objects))
    answers = {i: platform.history.answers_for(i) for i in range(n_objects)}
    return answers, truths, len(pool)


def label_accuracy(labels, truths):
    return np.mean([labels[i] == truths[i] for i in range(len(truths))])


@pytest.mark.parametrize("algo_factory", [
    lambda: DawidSkene(),
    lambda: PMInference(),
    lambda: GladInference(max_iter=15),
], ids=["dawid-skene", "pm", "glad"])
class TestEMContract:
    def test_beats_chance_clearly(self, algo_factory):
        answers, truths, n_ann = simulate_answers()
        result = algo_factory().infer(answers, 2, n_ann)
        assert label_accuracy(result.labels, truths) > 0.8

    def test_posteriors_are_distributions(self, algo_factory):
        answers, _truths, n_ann = simulate_answers(n_objects=20)
        result = algo_factory().infer(answers, 2, n_ann)
        for post in result.posteriors.values():
            assert post.shape == (2,)
            assert post.sum() == pytest.approx(1.0)
            assert (post >= 0).all()

    def test_empty_answers_ok(self, algo_factory):
        result = algo_factory().infer({}, 2, 3)
        assert result.labels == {}

    def test_labels_are_posterior_argmax(self, algo_factory):
        answers, _truths, n_ann = simulate_answers(n_objects=30)
        result = algo_factory().infer(answers, 2, n_ann)
        for oid, label in result.labels.items():
            assert label == int(np.argmax(result.posteriors[oid]))

    def test_single_object(self, algo_factory):
        result = algo_factory().infer({0: {0: 1, 1: 1}}, 2, 2)
        assert result.labels[0] == 1


class TestDawidSkeneSpecifics:
    def test_recovers_confusion_matrices(self):
        answers, truths, n_ann = simulate_answers(
            n_objects=400, worker_accs=(0.9, 0.85, 0.8, 0.75), seed=1
        )
        result = DawidSkene(smoothing=0.01).infer(answers, 2, n_ann)
        est_best = result.confusions[0].quality()
        est_worst = result.confusions[3].quality()
        assert est_best > est_worst
        assert est_best == pytest.approx(0.9, abs=0.07)

    def test_outperforms_mv_with_skewed_worker_quality(self):
        # One excellent + three near-random workers: weighting matters.
        answers, truths, n_ann = simulate_answers(
            n_objects=400, worker_accs=(0.97, 0.55, 0.55, 0.55), seed=2
        )
        ds_acc = label_accuracy(
            DawidSkene().infer(answers, 2, n_ann).labels, truths
        )
        mv_acc = label_accuracy(
            MajorityVote(rng=0).infer(answers, 2, n_ann).labels, truths
        )
        assert ds_acc > mv_acc

    def test_fixed_class_prior_respected(self):
        answers = {0: {0: 0, 1: 1}}
        result = DawidSkene(class_prior=np.array([0.99, 0.01])).infer(
            answers, 2, 2
        )
        assert result.labels[0] == 0

    def test_convergence_flag(self):
        answers, _t, n_ann = simulate_answers(n_objects=50)
        result = DawidSkene(max_iter=200).infer(answers, 2, n_ann)
        assert result.converged
        assert result.iterations <= 200

    def test_invalid_params_raise(self):
        with pytest.raises(ConfigurationError):
            DawidSkene(max_iter=0)
        with pytest.raises(ConfigurationError):
            DawidSkene(tol=0)
        with pytest.raises(ConfigurationError):
            DawidSkene(smoothing=-0.1)


class TestPMSpecifics:
    def test_good_workers_get_higher_weight_effect(self):
        # The reliable annotator should dominate a 1-vs-1 disagreement.
        answers = {}
        # Objects 0..39: annotators 0 (good) and 1 (bad) both answer; the
        # good one matches a consistent pattern, the bad one is random.
        rng = np.random.default_rng(3)
        truths = rng.integers(0, 2, 40)
        for i in range(40):
            good = int(truths[i])
            bad = int(truths[i]) if rng.random() < 0.55 else 1 - int(truths[i])
            # A third annotator mostly agrees with good, establishing trust.
            third = good if rng.random() < 0.9 else 1 - good
            answers[i] = {0: good, 1: bad, 2: third}
        result = PMInference().infer(answers, 2, 3)
        acc = label_accuracy(result.labels, truths)
        assert acc > 0.9

    def test_invalid_regulariser_raises(self):
        with pytest.raises(ConfigurationError):
            PMInference(regulariser=0.5)


class TestGladSpecifics:
    def test_accurate_with_mixed_pool(self):
        answers, truths, n_ann = simulate_answers(
            n_objects=200, worker_accs=(0.95, 0.6, 0.6), seed=4
        )
        result = GladInference(max_iter=10).infer(answers, 2, n_ann)
        assert label_accuracy(result.labels, truths) > 0.8

    def test_invalid_params_raise(self):
        with pytest.raises(ConfigurationError):
            GladInference(max_iter=0)
        with pytest.raises(ConfigurationError):
            GladInference(learning_rate=0)
