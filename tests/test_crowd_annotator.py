"""Determinism regression tests for :class:`repro.crowd.annotator.Annotator`.

The ``_rng`` field used to default to an *unseeded* ``default_rng()``
factory (flow rule REPRO007), so two identically-constructed annotators
produced different answer streams.  These tests pin the fixed contract:
the default stream derives from ``annotator_id``, and an explicit stream
(``seeded`` / ``_rng``) still takes precedence.
"""

import numpy as np

from repro.crowd.annotator import Annotator, AnnotatorKind
from repro.crowd.confusion import ConfusionMatrix
from repro.utils.rng import as_rng


def make_annotator(annotator_id=0, **kwargs):
    """A worker with a mildly noisy confusion matrix."""
    return Annotator(
        annotator_id=annotator_id,
        kind=AnnotatorKind.WORKER,
        confusion=ConfusionMatrix.from_accuracy(3, 0.7),
        cost=1.0,
        **kwargs,
    )


def answer_stream(annotator, n=50):
    """The first ``n`` answers over cycling true classes and difficulties."""
    return [
        annotator.answer(true_class=i % 3, difficulty=0.2 * (i % 4))
        for i in range(n)
    ]


def test_same_construction_gives_identical_answer_stream():
    """Two identically-constructed annotators answer identically."""
    first, second = make_annotator(annotator_id=7), make_annotator(annotator_id=7)
    assert answer_stream(first) == answer_stream(second)


def test_default_stream_derives_from_annotator_id():
    """Different ids get different (decoupled) default streams."""
    streams = [answer_stream(make_annotator(annotator_id=i)) for i in range(4)]
    assert len({tuple(s) for s in streams}) > 1


def test_explicit_stream_overrides_id_default():
    """A caller-supplied generator takes precedence over the id default."""
    explicit = make_annotator(annotator_id=7, _rng=as_rng(123))
    reference = make_annotator(annotator_id=99, _rng=as_rng(123))
    assert answer_stream(explicit) == answer_stream(reference)


def test_seeded_copy_is_reproducible():
    """``seeded`` rebinds the stream without touching the original."""
    base = make_annotator(annotator_id=3)
    assert answer_stream(base.seeded(5)) == answer_stream(base.seeded(5))


def test_per_call_rng_bypasses_owned_stream():
    """``answer(rng=...)`` draws from the given stream, not ``_rng``."""
    annotator = make_annotator(annotator_id=3)
    first = [annotator.answer(0, rng=np.random.default_rng(11))
             for _ in range(20)]
    second = [annotator.answer(0, rng=np.random.default_rng(11))
              for _ in range(20)]
    assert first == second
