"""Tests for the Gaussian naive Bayes classifier."""

import numpy as np
import pytest

from repro.classifiers.naive_bayes import NaiveBayesClassifier
from repro.datasets.synthetic import make_blobs
from repro.exceptions import ConfigurationError, NotFittedError


@pytest.fixture(scope="module")
def blobs():
    return make_blobs(200, 6, separation=3.5, rng=0)


class TestNaiveBayes:
    def test_learns_separable_data(self, blobs):
        clf = NaiveBayesClassifier(6, 2).fit(blobs.features, blobs.labels)
        assert (clf.predict(blobs.features) == blobs.labels).mean() > 0.85

    def test_proba_simplex(self, blobs):
        clf = NaiveBayesClassifier(6, 2).fit(blobs.features, blobs.labels)
        proba = clf.predict_proba(blobs.features[:20])
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)
        assert (proba >= 0).all()

    def test_recovers_class_means(self):
        ds = make_blobs(2000, 3, separation=4.0, rng=1)
        clf = NaiveBayesClassifier(3, 2).fit(ds.features, ds.labels)
        true_means = np.stack([
            ds.features[ds.labels == c].mean(axis=0) for c in range(2)
        ])
        np.testing.assert_allclose(clf._means, true_means, atol=0.01)

    def test_prior_learned_from_balance(self):
        ds = make_blobs(2000, 3, class_balance=np.array([0.8, 0.2]), rng=2)
        clf = NaiveBayesClassifier(3, 2).fit(ds.features, ds.labels)
        prior = np.exp(clf._log_prior)
        assert prior[0] == pytest.approx(0.8, abs=0.03)

    def test_fit_soft(self, blobs):
        soft = np.zeros((blobs.n_objects, 2))
        soft[np.arange(blobs.n_objects), blobs.labels] = 0.85
        soft[np.arange(blobs.n_objects), 1 - blobs.labels] = 0.15
        clf = NaiveBayesClassifier(6, 2).fit_soft(blobs.features, soft)
        assert (clf.predict(blobs.features) == blobs.labels).mean() > 0.85

    def test_sample_weights(self):
        x = np.array([[0.0], [0.0], [10.0]])
        y = np.array([0, 0, 1])
        # Heavy weight on the lone class-1 example keeps its prior alive.
        clf = NaiveBayesClassifier(1, 2).fit(
            x, y, sample_weights=np.array([1.0, 1.0, 10.0])
        )
        assert clf.predict(np.array([[10.0]]))[0] == 1

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            NaiveBayesClassifier(2, 2).predict_proba(np.zeros((1, 2)))

    def test_invalid_params_raise(self):
        with pytest.raises(ConfigurationError):
            NaiveBayesClassifier(0, 2)
        with pytest.raises(ConfigurationError):
            NaiveBayesClassifier(2, 2, var_smoothing=0)

    def test_works_as_joint_inference_phi(self, blobs):
        from repro import BudgetManager
        from repro.crowd.platform import CrowdPlatform
        from repro.inference.joint import JointInference
        from conftest import build_pool

        pool = build_pool()
        platform = CrowdPlatform(blobs.labels, pool, BudgetManager(10.0 ** 9))
        platform.ask_batch((i, [0, 1, 2]) for i in range(100))
        answers = {i: platform.history.answers_for(i) for i in range(100)}
        joint = JointInference(
            NaiveBayesClassifier(6, 2), blobs.features,
            expert_mask=pool.expert_mask,
        )
        result = joint.infer(answers, 2, len(pool))
        truths = platform.evaluation_labels()
        acc = np.mean([result.labels[i] == truths[i] for i in range(100)])
        assert acc > 0.75
