"""Bit-identity of the vectorized hot path against git-seed references.

The PR that vectorized the episode hot path (StateFeaturizer dirty-set
caching, fused agent scoring, argpartition top-k) promised **bit-identical
seeds**: every committed experiment output must reproduce exactly, not
approximately.  The reference values below were captured by running the
pre-vectorization implementation (the repository state before that PR)
over a fig4/fig8-style matrix — datasets x frameworks x seeds at tiny
scale, plus one pretrained run exercising the policy cache — and
recording accuracy, F1, budget spent, iteration count and a digest of
the final label vector.

If any of these comparisons drifts, the hot path changed numerics;
either a bug was introduced or a deliberate numerical change needs these
references (and every committed figure) regenerated together.
"""

import hashlib

import pytest

from repro.harness.experiment import (
    ExperimentSetting,
    clear_pretrained_policies,
    run_experiment,
)

#: key -> (accuracy, f1, spent, iterations, sha256[:16] of final labels),
#: captured from the pre-vectorization implementation (see module docstring).
SEED_REFERENCES = {
    "fig4:S12CP:CrowdRL-pretrained:seed7": (0.8936170212765957, 0.912280701754386, 200.0, 5, "b020e6505eab1930"),
    "fig4:S12CP:CrowdRL:seed0": (0.6382978723404256, 0.6530612244897959, 200.0, 8, "420d864c2d301262"),
    "fig4:S12CP:CrowdRL:seed1": (0.5957446808510638, 0.6885245901639345, 200.0, 5, "3b752fdc2ba1aa61"),
    "fig4:S12CP:CrowdRL:seed2": (0.6170212765957447, 0.6785714285714286, 200.0, 5, "000fc427118081b1"),
    "fig4:S12CP:DLTA:seed0": (0.8085106382978723, 0.8301886792452831, 191.0, 13, "ccc2f652d3d77291"),
    "fig4:S12CP:DLTA:seed1": (0.723404255319149, 0.7346938775510204, 191.0, 13, "f4cff0fe7a5e9e94"),
    "fig4:S12CP:DLTA:seed2": (0.7659574468085106, 0.7924528301886793, 200.0, 9, "ba6757cadd890e3f"),
    "fig4:S12CP:IDLE:seed0": (0.7659574468085106, 0.7555555555555555, 171.0, 13, "a0cfd7abad10aea2"),
    "fig4:S12CP:IDLE:seed1": (0.8723404255319149, 0.896551724137931, 191.0, 13, "72795b6c5678b32c"),
    "fig4:S12CP:IDLE:seed2": (0.8297872340425532, 0.8181818181818182, 191.0, 14, "43a6e864d73351d2"),
    "fig4:S3CP:CrowdRL:seed0": (0.8421052631578947, 0.823529411764706, 200.0, 8, "dbab75e15d6b7b76"),
    "fig4:S3CP:CrowdRL:seed1": (0.8421052631578947, 0.8846153846153847, 200.0, 5, "11d99e36fb25f9b8"),
    "fig4:S3CP:CrowdRL:seed2": (0.7105263157894737, 0.717948717948718, 200.0, 5, "ca54a86a8ec67d29"),
    "fig4:S3CP:DLTA:seed0": (0.631578947368421, 0.6666666666666666, 186.0, 10, "f99bf6821ae69e23"),
    "fig4:S3CP:DLTA:seed1": (0.7105263157894737, 0.744186046511628, 114.0, 10, "440d8ac6f55b87a7"),
    "fig4:S3CP:DLTA:seed2": (0.7368421052631579, 0.761904761904762, 200.0, 9, "ff15d2f99ce723f2"),
    "fig4:S3CP:IDLE:seed0": (0.6578947368421053, 0.5806451612903226, 164.0, 11, "844910671b064ad7"),
    "fig4:S3CP:IDLE:seed1": (0.8157894736842105, 0.8444444444444444, 164.0, 11, "0ee399576fa2fc50"),
    "fig4:S3CP:IDLE:seed2": (0.8157894736842105, 0.8444444444444444, 164.0, 11, "5baa6b38fb18693f"),
    "fig8:M1:seed0": (0.7659574468085106, 0.7441860465116279, 200.0, 8, "65a3e354d0bc6992"),
    "fig8:M1:seed1": (0.6808510638297872, 0.7457627118644068, 200.0, 5, "165a3e04e13ed088"),
    "fig8:M2:seed0": (0.851063829787234, 0.8444444444444444, 200.0, 4, "a51f1180fa85ad57"),
    "fig8:M2:seed1": (0.7021276595744681, 0.7666666666666667, 200.0, 5, "be70bd52554d9637"),
    "fig8:M3:seed0": (0.6808510638297872, 0.7540983606557378, 200.0, 5, "bebdd909f51e9f46"),
    "fig8:M3:seed1": (0.5531914893617021, 0.7042253521126761, 200.0, 5, "2226d4da6f5775e7"),
}


def _parse(key: str):
    """``fig4:<dataset>:<framework>:seed<n>`` / ``fig8:<framework>:seed<n>``."""
    parts = key.split(":")
    if parts[0] == "fig4":
        _, dataset, framework, seed = parts
    else:
        _, framework, seed = parts
        dataset = "S12CP"
    pretrain = framework.endswith("-pretrained")
    framework = framework.replace("-pretrained", "")
    return dataset, framework, int(seed.removeprefix("seed")), pretrain


def _labels_digest(labels) -> str:
    joined = ",".join(str(int(x)) for x in labels)
    return hashlib.sha256(joined.encode()).hexdigest()[:16]


@pytest.mark.parametrize("key", sorted(SEED_REFERENCES))
def test_seed_outputs_are_bit_identical(key):
    dataset, framework, seed, pretrain = _parse(key)
    clear_pretrained_policies()
    result = run_experiment(
        framework,
        ExperimentSetting(dataset, scale=0.02, seed=seed),
        pretrain=pretrain,
    )
    accuracy, f1, spent, iterations, digest = SEED_REFERENCES[key]
    # Exact equality on floats is the point: the vectorized path promises
    # the same IEEE operations as the git-seed reference, not tolerances.
    assert result.report.accuracy == accuracy, key
    assert result.report.f1 == f1, key
    assert result.outcome.spent == spent, key
    assert result.outcome.iterations == iterations, key
    assert _labels_digest(result.outcome.final_labels) == digest, key
