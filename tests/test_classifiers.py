"""Tests for repro.classifiers."""

import numpy as np
import pytest

from repro.classifiers import KNNClassifier, LogisticRegressionClassifier, MLPClassifier
from repro.datasets.synthetic import make_blobs
from repro.exceptions import ConfigurationError, NotFittedError


@pytest.fixture(scope="module")
def blobs():
    return make_blobs(150, 6, separation=3.5, rng=0)


ALL_CLASSIFIERS = [
    lambda d: MLPClassifier(d, 2, hidden=(16,), epochs=40, rng=0),
    lambda d: LogisticRegressionClassifier(d, 2),
    lambda d: KNNClassifier(2, k=5),
]


@pytest.mark.parametrize("factory", ALL_CLASSIFIERS,
                         ids=["mlp", "logistic", "knn"])
class TestClassifierContract:
    def test_learns_separable_data(self, factory, blobs):
        clf = factory(blobs.n_features).fit(blobs.features, blobs.labels)
        acc = (clf.predict(blobs.features) == blobs.labels).mean()
        assert acc > 0.9

    def test_proba_shape_and_simplex(self, factory, blobs):
        clf = factory(blobs.n_features).fit(blobs.features, blobs.labels)
        proba = clf.predict_proba(blobs.features[:10])
        assert proba.shape == (10, 2)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-6)
        assert (proba >= 0).all()

    def test_predict_is_argmax(self, factory, blobs):
        clf = factory(blobs.n_features).fit(blobs.features, blobs.labels)
        proba = clf.predict_proba(blobs.features[:20])
        np.testing.assert_array_equal(
            clf.predict(blobs.features[:20]), proba.argmax(axis=1)
        )

    def test_unfitted_raises(self, factory, blobs):
        clf = factory(blobs.n_features)
        with pytest.raises(NotFittedError):
            clf.predict_proba(blobs.features[:3])

    def test_fit_soft_accepts_distributions(self, factory, blobs):
        soft = np.zeros((blobs.n_objects, 2))
        soft[np.arange(blobs.n_objects), blobs.labels] = 0.9
        soft[np.arange(blobs.n_objects), 1 - blobs.labels] = 0.1
        clf = factory(blobs.n_features).fit_soft(blobs.features, soft)
        acc = (clf.predict(blobs.features) == blobs.labels).mean()
        assert acc > 0.85

    def test_confidence_margin_in_unit_interval(self, factory, blobs):
        clf = factory(blobs.n_features).fit(blobs.features, blobs.labels)
        margins = clf.confidence_margin(blobs.features[:15])
        assert margins.shape == (15,)
        assert (margins >= 0).all() and (margins <= 1).all()

    def test_wrong_soft_shape_raises(self, factory, blobs):
        clf = factory(blobs.n_features)
        with pytest.raises(ConfigurationError):
            clf.fit_soft(blobs.features, np.ones((blobs.n_objects, 5)))


class TestLogisticSpecifics:
    def test_sample_weights_tilt_decision(self):
        # Two identical points with opposite labels: weights decide.
        x = np.zeros((2, 1))
        y = np.array([0, 1])
        clf = LogisticRegressionClassifier(1, 2, l2=0.0)
        clf.fit(x, y, sample_weights=np.array([10.0, 1.0]))
        assert clf.predict_proba(np.zeros((1, 1)))[0, 0] > 0.5

    def test_bad_weight_shape_raises(self):
        clf = LogisticRegressionClassifier(2, 2)
        with pytest.raises(ConfigurationError):
            clf.fit(np.ones((3, 2)), np.array([0, 1, 0]),
                    sample_weights=np.ones(2))

    def test_invalid_params_raise(self):
        with pytest.raises(ConfigurationError):
            LogisticRegressionClassifier(0, 2)
        with pytest.raises(ConfigurationError):
            LogisticRegressionClassifier(2, 2, learning_rate=0)
        with pytest.raises(ConfigurationError):
            LogisticRegressionClassifier(2, 2, l2=-1)

    def test_multiclass(self):
        ds = make_blobs(200, 5, n_classes=3, separation=5.0, rng=2)
        clf = LogisticRegressionClassifier(5, 3).fit(ds.features, ds.labels)
        assert (clf.predict(ds.features) == ds.labels).mean() > 0.8


class TestKNNSpecifics:
    def test_memorises_training_points(self, blobs):
        clf = KNNClassifier(2, k=1).fit(blobs.features, blobs.labels)
        np.testing.assert_array_equal(
            clf.predict(blobs.features), blobs.labels
        )

    def test_k_capped_by_training_size(self):
        clf = KNNClassifier(2, k=50)
        clf.fit(np.array([[0.0], [1.0]]), np.array([0, 1]))
        proba = clf.predict_proba(np.array([[0.5]]))
        assert proba.shape == (1, 2)

    def test_wrong_query_width_raises(self, blobs):
        clf = KNNClassifier(2).fit(blobs.features, blobs.labels)
        with pytest.raises(ConfigurationError):
            clf.predict_proba(np.ones((2, blobs.n_features + 1)))

    def test_invalid_k_raises(self):
        with pytest.raises(ConfigurationError):
            KNNClassifier(2, k=0)

    def test_unweighted_variant(self, blobs):
        clf = KNNClassifier(2, k=3, distance_weighted=False)
        clf.fit(blobs.features, blobs.labels)
        acc = (clf.predict(blobs.features) == blobs.labels).mean()
        assert acc > 0.9


class TestMLPSpecifics:
    def test_warm_start_continues(self):
        ds = make_blobs(80, 4, separation=2.0, rng=2)
        clf = MLPClassifier(4, 2, hidden=(8,), epochs=5, warm_start=True, rng=0)
        clf.fit(ds.features, ds.labels)
        w_before = clf._network.layers[0].weight.copy()
        clf.fit(ds.features, ds.labels)
        assert not np.allclose(w_before, clf._network.layers[0].weight)

    def test_cold_start_reinitialises(self):
        ds = make_blobs(80, 4, separation=2.0, rng=2)
        clf = MLPClassifier(4, 2, hidden=(8,), epochs=5, rng=0)
        clf.fit(ds.features, ds.labels)
        first = clf._network
        clf.fit(ds.features, ds.labels)
        assert clf._network is not first

    def test_invalid_features_raise(self):
        with pytest.raises(ConfigurationError):
            MLPClassifier(0, 2)
