"""Feature-scale sanity for the State featurization.

The Q-network's inputs should stay in a bounded, comparable range across
the run — unbounded features would let one coordinate dominate training.
"""

import numpy as np
import pytest

from repro.core.state import N_PAIR_FEATURES, LabellingState
from repro.crowd.cost import BudgetManager
from repro.crowd.history import LabellingHistory

from conftest import build_pool


def make_state(n_objects=10):
    history = LabellingHistory(n_objects, 4, 2)
    return LabellingState(history, build_pool(), BudgetManager(100.0))


class TestFeatureBounds:
    def test_fresh_state_features_bounded(self):
        state = make_state()
        tensor = state.feature_tensor()
        assert tensor.min() >= 0.0
        assert tensor.max() <= 1.0 + 1e-9

    def test_features_stay_bounded_as_run_progresses(self):
        state = make_state()
        rng = np.random.default_rng(0)
        for i in range(10):
            for j in range(3):
                state.history.record(i, j, int(rng.integers(2)))
        state.budget.charge(60.0)
        state.set_labelled(human=range(5), enriched=[5, 6])
        proba = rng.dirichlet(np.ones(2), size=10)
        state.set_classifier_proba(proba)
        tensor = state.feature_tensor()
        assert tensor.min() >= 0.0
        assert tensor.max() <= 1.0 + 1e-9

    def test_feature_width_constant(self):
        assert make_state(3).feature_tensor().shape[-1] == N_PAIR_FEATURES
        assert make_state(30).feature_tensor().shape[-1] == N_PAIR_FEATURES

    def test_answer_count_saturates_at_one(self):
        state = LabellingState(
            LabellingHistory(2, 4, 2), build_pool(), BudgetManager(100.0),
            answer_norm=2,
        )
        for j in range(4):
            state.history.record(0, j, 0)
        # 4 answers with norm 2 saturates, it must not exceed 1.
        assert state.object_features()[0, 0] == 1.0
