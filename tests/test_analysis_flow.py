"""Tests for the interprocedural flow analyzer (REPRO007-012).

Each fixture under ``tests/analysis_fixtures/flow/`` carries the
violations one rule is designed to catch plus clean counterparts the
rule must stay quiet on, so the parametrized test pins down both
directions.  The CLI tests cover the baseline ratchet: write, honour,
and fail on genuinely new findings.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.cli import main as analysis_main
from repro.analysis.flow import FLOW_RULES, analyze_paths

FIXTURES = Path(__file__).parent / "analysis_fixtures" / "flow"
SRC = Path(__file__).parents[1] / "src"


def rule_ids(findings):
    """The multiset of rule ids in ``findings`` as a sorted list."""
    return sorted(f.rule_id for f in findings)


# ----------------------------------------------------------------------
# Per-rule fixtures: hits fire, clean forms stay silent
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "fixture, rule_id, n_hits",
    [
        ("rng_unseeded.py", "REPRO007", 3),
        ("rng_global.py", "REPRO008", 3),
        ("rng_shared.py", "REPRO009", 1),
        ("shapes_transposed.py", "REPRO010", 2),
        ("shapes_container.py", "REPRO010", 3),
        ("shapes_container_literal.py", "REPRO010", 3),
        ("det_order.py", "REPRO011", 3),
        ("det_clock.py", "REPRO012", 3),
        ("det_clock_exempt.py", "REPRO012", 3),
    ],
)
def test_rule_fires_only_on_hits(fixture, rule_id, n_hits):
    """Every flow rule reports its hits and nothing from clean code."""
    findings = analyze_paths([str(FIXTURES / fixture)])
    assert rule_ids(findings) == [rule_id] * n_hits
    source = (FIXTURES / fixture).read_text()
    hit_lines = {f.line for f in findings}
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "(silent)" in line:
            # The docstring of a clean function names the next def's body;
            # no finding may land within three lines of it.
            assert not hit_lines & {lineno, lineno + 1, lineno + 2}


def test_transposed_shaped_call_site_is_rejected():
    """The deliberately transposed ``@shaped`` call site is caught statically."""
    findings = analyze_paths([str(FIXTURES / "shapes_transposed.py")],
                             select=["REPRO010"])
    transposed = [f for f in findings if "transposed" in f.message]
    (finding,) = transposed
    assert "per_worker_totals" in finding.message
    assert "(n_workers, n_objects)" in finding.message


def test_container_round_trips_keep_dims_alive():
    """``list(...)`` and constant-key dict storage no longer launder dims."""
    findings = analyze_paths([str(FIXTURES / "shapes_container.py")],
                             select=["REPRO010"])
    assert len(findings) == 3
    assert all("transposed" in f.message for f in findings)
    source = (FIXTURES / "shapes_container.py").read_text().splitlines()
    for finding in findings:
        # Every hit sits inside one of the hit_* functions, none in clean_*.
        preceding = [line for line in source[:finding.line]
                     if line.startswith("def ")]
        assert preceding[-1].startswith("def hit_"), preceding[-1]


def test_container_literals_keep_dims_alive():
    """Dict/list/tuple *literal* storage is tracked like per-slot writes."""
    findings = analyze_paths(
        [str(FIXTURES / "shapes_container_literal.py")], select=["REPRO010"]
    )
    assert len(findings) == 3
    assert all("transposed" in f.message for f in findings)
    source = (
        FIXTURES / "shapes_container_literal.py"
    ).read_text().splitlines()
    for finding in findings:
        preceding = [line for line in source[:finding.line]
                     if line.startswith("def ")]
        assert preceding[-1].startswith("def hit_"), preceding[-1]


def test_keyed_wall_clock_exemption():
    """``# repro: wall-clock[<key>]`` exempts exactly the named clock."""
    findings = analyze_paths([str(FIXTURES / "det_clock_exempt.py")],
                             select=["REPRO012"])
    assert len(findings) == 3
    source = (FIXTURES / "det_clock_exempt.py").read_text().splitlines()
    for finding in findings:
        preceding = [line for line in source[:finding.line]
                     if line.startswith("def ")]
        assert preceding[-1].startswith("def hit_"), preceding[-1]
    # The finding's guidance names the keyed escape hatch.
    assert all("wall-clock[" in f.message for f in findings)


def test_wall_clock_exemption_key_must_match():
    """An annotation keyed for one clock never silences another (tmp)."""
    findings = analyze_paths([str(FIXTURES / "det_clock_exempt.py")],
                             select=["REPRO012"])
    flagged = {f.message.split("'")[1] for f in findings}
    # hit_wrong_key/hit_missing_why read time.time, hit_detached_comment
    # reads time.monotonic — both clocks fire despite nearby annotations.
    assert flagged == {"time.time", "time.monotonic"}


def test_shared_stream_dispatch_forms_are_exclusive():
    """If/else and early-return hand-offs must not count as sharing."""
    findings = analyze_paths([str(FIXTURES / "rng_shared.py")])
    assert len(findings) == 1
    assert "hit_shared_stream" in findings[0].message


def test_select_limits_flow_rules():
    """``select`` restricts the engines to the named rule ids."""
    findings = analyze_paths([str(FIXTURES)], select=["REPRO011"])
    assert set(rule_ids(findings)) == {"REPRO011"}


def test_noqa_suppresses_flow_findings(tmp_path):
    """``# repro: noqa REPRO007`` waives the flow rule on that line."""
    module = tmp_path / "suppressed.py"
    module.write_text(
        '"""Doc."""\n'
        "import numpy as np\n\n\n"
        "def fresh():\n"
        '    """Doc."""\n'
        "    return np.random.default_rng()  # repro: noqa REPRO007\n"
    )
    assert analyze_paths([str(module)]) == []


def test_shipped_tree_is_flow_clean():
    """``src/repro`` must carry zero unbaselined flow findings (exit 0)."""
    assert analysis_main(["flow", str(SRC / "repro")]) == 0


# ----------------------------------------------------------------------
# CLI behaviour and the baseline ratchet
# ----------------------------------------------------------------------
def test_cli_json_payload_shape(capsys):
    """``--format json`` lists rules, findings, and baseline status."""
    code = analysis_main(["flow", str(FIXTURES / "det_clock.py"),
                          "--no-baseline", "--format", "json"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert set(payload["rules"]) == set(FLOW_RULES)
    assert payload["count"] == len(payload["findings"]) == 3
    assert payload["baseline"] is None
    assert payload["baselined"] == []


def test_cli_exit_nonzero_per_fixture(capsys):
    """Every rule fixture fails the plain CLI run."""
    for fixture in FIXTURES.glob("*.py"):
        assert analysis_main(["flow", str(fixture), "--no-baseline"]) == 1


def test_fail_on_new_without_baseline_is_usage_error(tmp_path, capsys):
    """``--fail-on-new`` with no discoverable baseline exits 2."""
    module = tmp_path / "clean.py"
    module.write_text('"""Doc."""\n')
    assert analysis_main(["flow", str(module), "--fail-on-new"]) == 2
    assert "requires a baseline" in capsys.readouterr().err


def test_baseline_round_trip_ratchets(tmp_path, capsys):
    """write-baseline accepts findings; only *new* ones fail afterwards."""
    module = tmp_path / "timed.py"
    module.write_text(
        '"""Doc."""\n'
        "import time\n\n\n"
        "def stamp():\n"
        '    """Doc."""\n'
        "    return time.time()\n"
    )
    baseline = tmp_path / ".repro-flow-baseline.json"

    code = analysis_main(["flow", str(module), "--write-baseline",
                          str(baseline)])
    assert code == 0
    assert baseline.exists()
    capsys.readouterr()

    # The baselined finding no longer fails the run (auto-discovery).
    code = analysis_main(["flow", str(module), "--fail-on-new"])
    assert code == 0
    assert "1 baselined" in capsys.readouterr().out

    # A genuinely new violation does fail, while the old one stays waived.
    module.write_text(
        module.read_text()
        + "\n\ndef when():\n"
        '    """Doc."""\n'
        "    import datetime\n"
        "    return datetime.datetime.now()\n"
    )
    code = analysis_main(["flow", str(module), "--fail-on-new",
                          "--format", "json"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == 1
    assert "datetime" in payload["findings"][0]["message"]
    assert payload["baselined_count"] == 1


def test_baseline_keys_survive_line_shifts(tmp_path, capsys):
    """Baseline matching is line-free: moving a finding keeps it waived."""
    module = tmp_path / "timed.py"
    original = (
        '"""Doc."""\n'
        "import time\n\n\n"
        "def stamp():\n"
        '    """Doc."""\n'
        "    return time.time()\n"
    )
    module.write_text(original)
    baseline = tmp_path / ".repro-flow-baseline.json"
    assert analysis_main(["flow", str(module), "--write-baseline",
                          str(baseline)]) == 0
    # Shift the violation down by prepending an innocuous helper.
    module.write_text(
        '"""Doc."""\n'
        "import time\n\n\n"
        "def helper():\n"
        '    """Doc."""\n'
        "    return 1\n\n\n"
        "def stamp():\n"
        '    """Doc."""\n'
        "    return time.time()\n"
    )
    capsys.readouterr()
    assert analysis_main(["flow", str(module), "--fail-on-new"]) == 0


def test_harness_cli_flow_passthrough(capsys):
    """``repro.harness.cli lint flow ...`` forwards to the flow analyzer."""
    from repro.harness.cli import main as harness_main

    assert harness_main(["lint", "flow", str(SRC / "repro")]) == 0
    assert harness_main(
        ["lint", "flow", str(FIXTURES / "det_clock.py"), "--no-baseline"]
    ) == 1
