"""Tests for the CrowdRL joint truth-inference model (Section V)."""

import numpy as np
import pytest

from repro.classifiers.logistic import LogisticRegressionClassifier
from repro.crowd.cost import BudgetManager
from repro.crowd.platform import CrowdPlatform
from repro.datasets.synthetic import make_blobs
from repro.exceptions import ConfigurationError
from repro.inference.joint import JointInference
from repro.inference.majority import MajorityVote

from conftest import build_pool


def joint_setup(n_objects=100, separation=2.5, worker_accs=(0.7, 0.65, 0.6),
                expert_accs=(0.95,), expert_frac=0.0, seed=0):
    dataset = make_blobs(n_objects, 6, separation=separation, rng=seed)
    pool = build_pool(worker_accs=worker_accs, expert_accs=expert_accs,
                      seed=seed)
    platform = CrowdPlatform(dataset.labels, pool, BudgetManager(10.0 ** 9))
    rng = np.random.default_rng(seed)
    n_workers = len(worker_accs)
    expert_ids = list(range(n_workers, n_workers + len(expert_accs)))
    expert_objects = set(
        rng.choice(n_objects, int(n_objects * expert_frac),
                   replace=False).tolist()
    )
    for i in range(n_objects):
        annotators = list(range(n_workers))
        if i in expert_objects:
            annotators += expert_ids
        platform.ask_batch([(i, annotators)])
    answers = {i: platform.history.answers_for(i) for i in range(n_objects)}
    return dataset, platform, answers


def make_joint(dataset, platform, **kwargs):
    clf = LogisticRegressionClassifier(dataset.n_features, 2, l2=0.02)
    return JointInference(
        clf, dataset.features,
        expert_mask=platform.pool.expert_mask, **kwargs,
    )


class TestJointInference:
    def test_beats_majority_vote_with_features(self):
        dataset, platform, answers = joint_setup(expert_frac=0.3, seed=3)
        truths = platform.evaluation_labels()
        n_ann = len(platform.pool)
        joint = make_joint(dataset, platform)
        j_acc = np.mean([
            joint.infer(answers, 2, n_ann).labels[i] == truths[i]
            for i in range(len(truths))
        ])
        mv = MajorityVote(rng=0).infer(answers, 2, n_ann)
        mv_acc = np.mean([mv.labels[i] == truths[i] for i in range(len(truths))])
        assert j_acc >= mv_acc

    def test_fits_usable_classifier(self):
        dataset, platform, answers = joint_setup(seed=1)
        joint = make_joint(dataset, platform)
        joint.infer(answers, 2, len(platform.pool))
        assert joint.fitted_classifier is not None
        acc = (joint.fitted_classifier.predict(dataset.features)
               == dataset.labels).mean()
        assert acc > 0.7

    def test_expert_floor_bounds_expert_quality(self):
        dataset, platform, answers = joint_setup(expert_frac=1.0, seed=2)
        joint = make_joint(dataset, platform, expert_floor=0.9)
        result = joint.infer(answers, 2, len(platform.pool))
        expert_id = len(platform.pool) - 1
        expert_cm = result.confusions[expert_id]
        assert np.diag(expert_cm.matrix).min() >= 0.9 - 1e-9

    def test_workers_not_floored(self):
        dataset, platform, answers = joint_setup(
            worker_accs=(0.55,), expert_accs=(0.95,), expert_frac=1.0, seed=4
        )
        joint = make_joint(dataset, platform, expert_floor=0.9)
        result = joint.infer(answers, 2, len(platform.pool))
        worker_cm = result.confusions[0]
        assert np.diag(worker_cm.matrix).min() < 0.9

    def test_classifier_weight_zero_ignores_features(self):
        dataset, platform, answers = joint_setup(seed=5)
        joint = make_joint(dataset, platform, classifier_weight=0.0)
        result = joint.infer(answers, 2, len(platform.pool))
        assert joint.fitted_classifier is None
        assert result.labels  # still infers from annotators alone

    def test_posteriors_are_distributions(self):
        dataset, platform, answers = joint_setup(n_objects=30, seed=6)
        result = make_joint(dataset, platform).infer(
            answers, 2, len(platform.pool)
        )
        for post in result.posteriors.values():
            assert post.sum() == pytest.approx(1.0)
            assert (post >= 0).all()

    def test_empty_answers(self):
        dataset, platform, _ = joint_setup(n_objects=20, seed=7)
        result = make_joint(dataset, platform).infer(
            {}, 2, len(platform.pool)
        )
        assert result.labels == {}

    def test_object_without_features_raises(self):
        dataset, platform, answers = joint_setup(n_objects=20, seed=8)
        joint = make_joint(dataset, platform)
        answers[999] = {0: 1}
        with pytest.raises(ConfigurationError):
            joint.infer(answers, 2, len(platform.pool))

    def test_expert_mask_length_validated(self):
        dataset, platform, answers = joint_setup(n_objects=20, seed=9)
        clf = LogisticRegressionClassifier(dataset.n_features, 2)
        joint = JointInference(clf, dataset.features, expert_mask=[True])
        with pytest.raises(ConfigurationError):
            joint.infer(answers, 2, len(platform.pool))

    def test_invalid_construction_params(self):
        clf = LogisticRegressionClassifier(3, 2)
        feats = np.zeros((5, 3))
        with pytest.raises(ConfigurationError):
            JointInference(clf, feats, expert_floor=1.5)
        with pytest.raises(ConfigurationError):
            JointInference(clf, feats, classifier_weight=-1)
        with pytest.raises(ConfigurationError):
            JointInference(clf, feats, classifier_clip=0.4)
        with pytest.raises(ConfigurationError):
            JointInference(clf, np.zeros(5))

    def test_drifting_annotator_degrades_gracefully(self):
        """Joint EM survives a worker whose accuracy drifts below chance.

        Drift violates the fixed-confusion-matrix assumption, so no
        quality-estimate guarantee holds for the drifter — but inference
        must not crash, must label every object, and the expert floor must
        still bound the expert's estimated quality.
        """
        from repro.crowd.annotator import Annotator, AnnotatorKind
        from repro.crowd.behaviors import DriftingAnnotator
        from repro.crowd.confusion import ConfusionMatrix
        from repro.crowd.pool import AnnotatorPool

        n_objects, seed = 80, 12
        dataset = make_blobs(n_objects, 6, separation=2.5, rng=seed)
        streams = np.random.default_rng(seed).spawn(3)
        annotators = [
            # Starts fine, decays to far below the 0.5 chance level.
            DriftingAnnotator(0, 2, start_accuracy=0.6, floor_accuracy=0.2,
                              decay=0.8, rng=streams[0]),
            Annotator(annotator_id=1, kind=AnnotatorKind.WORKER,
                      confusion=ConfusionMatrix.from_accuracy(2, 0.7),
                      cost=1.0, _rng=streams[1]),
            Annotator(annotator_id=2, kind=AnnotatorKind.EXPERT,
                      confusion=ConfusionMatrix.from_accuracy(2, 0.95),
                      cost=10.0, _rng=streams[2]),
        ]
        pool = AnnotatorPool(annotators, 2)
        platform = CrowdPlatform(dataset.labels, pool, BudgetManager(10.0 ** 9))
        platform.ask_batch([(i, [0, 1, 2]) for i in range(n_objects)])
        assert annotators[0].current_accuracy < 0.5  # drift really happened

        answers = {i: platform.history.answers_for(i)
                   for i in range(n_objects)}
        joint = make_joint(dataset, platform, expert_floor=0.9)
        result = joint.infer(answers, 2, len(pool))

        assert sorted(result.labels) == list(range(n_objects))
        for post in result.posteriors.values():
            assert post.sum() == pytest.approx(1.0)
        # The expert lower bound holds even with a misspecified co-worker.
        assert np.diag(result.confusions[2].matrix).min() >= 0.9 - 1e-9

    def test_classifier_clip_tempers_contribution(self):
        """With a tight clip the classifier's E-step term is bounded, so the
        posterior never strays far from the annotator evidence."""
        dataset, platform, answers = joint_setup(n_objects=40, seed=10)
        tight = make_joint(dataset, platform, classifier_clip=0.55)
        loose = make_joint(dataset, platform, classifier_clip=0.99)
        r_tight = tight.infer(answers, 2, len(platform.pool))
        r_loose = loose.infer(answers, 2, len(platform.pool))
        mean_conf_tight = np.mean([p.max() for p in r_tight.posteriors.values()])
        mean_conf_loose = np.mean([p.max() for p in r_loose.posteriors.values()])
        assert mean_conf_tight <= mean_conf_loose + 1e-6
