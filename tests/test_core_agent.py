"""Tests for repro.core.agent and repro.core.action."""

import numpy as np
import pytest

from repro.core.action import Assignment, flat_action_index
from repro.core.agent import Agent
from repro.core.config import CrowdRLConfig
from repro.core.state import LabellingState
from repro.crowd.cost import BudgetManager
from repro.crowd.history import LabellingHistory
from repro.exceptions import ConfigurationError

from conftest import build_pool


def make_agent_and_state(n_objects=8, batch_size=2, k=2, **config_kwargs):
    pool = build_pool()  # 4 annotators
    config = CrowdRLConfig(batch_size=batch_size, k_per_object=k,
                           **config_kwargs)
    agent = Agent(n_objects, len(pool), config, rng=np.random.default_rng(0))
    history = LabellingHistory(n_objects, len(pool), 2)
    state = LabellingState(history, pool, BudgetManager(200.0))
    return agent, state


class TestAssignment:
    def test_pairs(self):
        a = Assignment(3, (0, 2))
        assert a.pairs == [(3, 0), (3, 2)]

    def test_duplicate_annotators_raise(self):
        with pytest.raises(ConfigurationError):
            Assignment(0, (1, 1))

    def test_empty_annotators_raise(self):
        with pytest.raises(ConfigurationError):
            Assignment(0, ())

    def test_negative_object_raises(self):
        with pytest.raises(ConfigurationError):
            Assignment(-1, (0,))

    def test_flat_index(self):
        assert flat_action_index(2, 3, 5) == 13

    def test_flat_index_range_checked(self):
        with pytest.raises(ConfigurationError):
            flat_action_index(0, 5, 5)


class TestQMatrix:
    def test_shape_and_masking(self):
        agent, state = make_agent_and_state()
        state.set_labelled(human=[0], enriched=[])
        q = agent.q_matrix(state)
        assert q.shape == (8, 4)
        assert np.isneginf(q[0]).all()
        assert np.isfinite(q[1]).all()


class TestAct:
    def test_batch_size_respected(self):
        agent, state = make_agent_and_state(batch_size=3, k=2)
        assignments = agent.act(state)
        assert len(assignments) == 3
        for a in assignments:
            assert len(a.annotator_ids) == 2

    def test_no_duplicate_objects_in_batch(self):
        agent, state = make_agent_and_state(batch_size=4)
        objects = [a.object_id for a in agent.act(state)]
        assert len(objects) == len(set(objects))

    def test_all_masked_returns_empty(self):
        agent, state = make_agent_and_state()
        state.set_labelled(human=range(8), enriched=[])
        assert agent.act(state) == []

    def test_stats_recorded(self):
        agent, state = make_agent_and_state(batch_size=2, k=2)
        agent.act(state)
        assert agent.stats.total == 4

    def test_random_ts_mode(self):
        agent, state = make_agent_and_state(batch_size=3, ts_mode="random")
        assignments = agent.act(state)
        assert len(assignments) == 3

    def test_random_ta_mode(self):
        agent, state = make_agent_and_state(batch_size=2, ta_mode="random")
        assignments = agent.act(state)
        for a in assignments:
            assert len(set(a.annotator_ids)) == len(a.annotator_ids)

    def test_random_ts_excludes_masked_objects(self):
        agent, state = make_agent_and_state(batch_size=8, ts_mode="random")
        state.set_labelled(human=[0, 1, 2, 3], enriched=[])
        objects = {a.object_id for a in agent.act(state)}
        assert objects == {4, 5, 6, 7}

    def test_greedy_mode_without_ucb(self):
        agent, state = make_agent_and_state(ucb_exploration=False)
        assert agent.act(state)


class TestLearning:
    def test_remember_and_train(self):
        agent, state = make_agent_and_state()
        feats = state.feature_tensor()[0, :2].reshape(2, -1)
        for _ in range(30):
            agent.remember_iteration(feats, np.array([1.0, 0.5]), state, False)
        losses = agent.dqn.train(5)
        assert losses  # buffer is big enough to train

    def test_scalar_reward_broadcasts(self):
        agent, state = make_agent_and_state()
        feats = state.feature_tensor()[0, :3].reshape(3, -1)
        agent.remember_iteration(feats, 0.7, state, True)
        assert len(agent.dqn.buffer) == 3

    def test_terminal_stores_no_next(self):
        agent, state = make_agent_and_state()
        feats = state.feature_tensor()[0, :1].reshape(1, -1)
        agent.remember_iteration(feats, 1.0, state, True)
        transition = agent.dqn.buffer._storage[-1]
        assert transition.terminal
        assert transition.next_features is None

    def test_fully_masked_next_state_becomes_terminal(self):
        agent, state = make_agent_and_state()
        feats = state.feature_tensor()[0, :1].reshape(1, -1)
        state.set_labelled(human=range(8), enriched=[])
        agent.remember_iteration(feats, 1.0, state, False)
        assert agent.dqn.buffer._storage[-1].terminal

    def test_policy_weight_roundtrip(self):
        agent_a, state = make_agent_and_state()
        agent_b, _ = make_agent_and_state()
        x = state.feature_tensor().reshape(-1, state.feature_tensor().shape[-1])
        agent_b.set_policy_weights(agent_a.get_policy_weights())
        np.testing.assert_allclose(
            agent_a.dqn.q_values(x), agent_b.dqn.q_values(x)
        )

    def test_invalid_sizes_raise(self):
        with pytest.raises(ConfigurationError):
            Agent(0, 4, CrowdRLConfig())
