"""Structural smoke tests for the per-figure experiment definitions.

Full figure runs live in benchmarks/; these tests validate structure and
bookkeeping at a tiny scale with cheap frameworks, so the test suite stays
fast.
"""

import pytest

from repro.harness.figures import (
    ALL_DATASETS,
    PANEL_DATASETS,
    SPEECH_DATASETS,
    _annotators_for,
    _dataset_scale,
    fig4,
    fig5,
    fig6,
    fig7,
)

FAST_FRAMEWORKS = ("OBA", "DLTA")
TINY = dict(scale=0.015, n_seeds=1, frameworks=FAST_FRAMEWORKS)


class TestHelpers:
    def test_annotators_for(self):
        assert _annotators_for("S12CP") == (3, 2)
        assert _annotators_for("Fashion") == (2, 1)

    def test_dataset_scale_normalises_fashion(self):
        assert _dataset_scale("S12C", 0.1) == 0.1
        assert _dataset_scale("Fashion", 0.1) < 0.1

    def test_dataset_constants(self):
        assert len(SPEECH_DATASETS) == 6
        assert ALL_DATASETS[-1] == "Fashion"
        assert set(PANEL_DATASETS) <= set(ALL_DATASETS)


class TestFigureStructure:
    def test_fig4_panels(self):
        panels = fig4(datasets=("S12C",), **TINY)
        assert [p.metric for p in panels] == ["precision", "recall", "f1"]
        for panel in panels:
            assert set(panel.series) == set(FAST_FRAMEWORKS)
            assert all(len(v) == 1 for v in panel.series.values())
            assert all(0 <= v[0] <= 1 for v in panel.series.values())

    def test_fig5_panel_per_dataset(self):
        panels = fig5(datasets=("S12C",), ratios=(0.5, 1.0), **TINY)
        assert len(panels) == 1
        assert panels[0].x_values == [0.5, 1.0]
        for series in panels[0].series.values():
            assert len(series) == 2

    def test_fig6_pool_sizes(self):
        panels = fig6(datasets=("S12C",), pool_sizes=(3,), **TINY)
        assert panels[0].x_values == [3]

    def test_fig7_alphas(self):
        panels = fig7(datasets=("S12C",), alphas=(0.05,), **TINY)
        assert panels[0].x_values == [0.05]

    def test_seed_reproducibility(self):
        a = fig4(datasets=("S12C",), seed=5, **TINY)
        b = fig4(datasets=("S12C",), seed=5, **TINY)
        assert a[0].series == b[0].series
