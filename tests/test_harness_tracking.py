"""Tests for run tracing."""

import numpy as np
import pytest

from repro import CrowdRL, CrowdRLConfig, make_platform
from repro.datasets.synthetic import make_blobs
from repro.harness.tracking import IterationRecord, RunTrace


@pytest.fixture
def traced_run():
    dataset = make_blobs(40, 6, separation=3.0, rng=0)
    platform = make_platform(dataset, n_workers=3, n_experts=1,
                             budget=120.0, rng=1)
    trace = RunTrace()
    config = CrowdRLConfig(alpha=0.1, batch_size=4,
                           min_truths_for_enrichment=10,
                           train_steps_per_iteration=1)
    outcome = CrowdRL(config, rng=2, trace=trace).run(dataset, platform)
    return trace, outcome


class TestRunTrace:
    def test_records_every_iteration(self, traced_run):
        trace, outcome = traced_run
        # One record per iteration that reached the act/infer stage.
        assert 1 <= trace.n_iterations <= outcome.iterations

    def test_budget_curve_monotone(self, traced_run):
        trace, _ = traced_run
        spends = [s for _, s in trace.budget_curve()]
        assert all(a <= b for a, b in zip(spends, spends[1:]))

    def test_truth_counts_monotone(self, traced_run):
        trace, _ = traced_run
        truths = [t for _, t, _ in trace.coverage_curve()]
        assert all(a <= b for a, b in zip(truths, truths[1:]))

    def test_total_cost_matches_ledger_delta(self, traced_run):
        trace, outcome = traced_run
        # Iteration costs exclude only the initial alpha-sample.
        assert trace.total_cost() <= outcome.spent + 1e-9
        assert trace.total_cost() > 0

    def test_reward_curve_matches_history(self, traced_run):
        trace, outcome = traced_run
        rewards = [r for _, r in trace.reward_curve()]
        assert rewards == outcome.reward_history[:len(rewards)]

    def test_to_rows_shape(self, traced_run):
        trace, _ = traced_run
        rows = trace.to_rows()
        assert len(rows) == trace.n_iterations
        assert all(len(row) == 6 for row in rows)

    def test_clear(self):
        trace = RunTrace()
        trace.record(IterationRecord(1, 10.0, 5, 2, 0.1, 10.0, 4))
        trace.clear()
        assert trace.n_iterations == 0
