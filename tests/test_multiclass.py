"""End-to-end multi-class (|C| > 2) coverage across the stack."""

import numpy as np
import pytest

from repro import CrowdRL, CrowdRLConfig, make_platform
from repro.baselines import DALC, DLTA
from repro.datasets.synthetic import make_blobs
from repro.inference import DawidSkene, JointInference, MajorityVote
from repro.classifiers.logistic import LogisticRegressionClassifier


@pytest.fixture(scope="module")
def dataset3():
    return make_blobs(90, 8, n_classes=3, separation=4.5, rng=0)


@pytest.fixture(scope="module")
def platform3(dataset3):
    return make_platform(dataset3, n_workers=3, n_experts=1,
                         budget=350.0, rng=1)


class TestMulticlassEndToEnd:
    def test_crowdrl_three_classes(self, dataset3):
        platform = make_platform(dataset3, n_workers=3, n_experts=1,
                                 budget=350.0, rng=1)
        config = CrowdRLConfig(alpha=0.1, batch_size=4,
                               min_truths_for_enrichment=12,
                               train_steps_per_iteration=2)
        outcome = CrowdRL(config, rng=2).run(dataset3, platform)
        assert set(np.unique(outcome.final_labels)) <= {0, 1, 2}
        report = outcome.evaluate(platform.evaluation_labels(), n_classes=3)
        assert report.accuracy > 0.5   # well above the 1/3 chance rate

    @pytest.mark.parametrize("factory", [
        lambda rng: DLTA(rng=rng),
        lambda rng: DALC(rng=rng),
    ], ids=["dlta", "dalc"])
    def test_baselines_three_classes(self, factory, dataset3):
        platform = make_platform(dataset3, n_workers=3, n_experts=1,
                                 budget=350.0, rng=1)
        outcome = factory(np.random.default_rng(3)).run(dataset3, platform)
        report = outcome.evaluate(platform.evaluation_labels(), n_classes=3)
        assert report.accuracy > 0.45

    def test_inference_three_classes(self, dataset3):
        platform = make_platform(dataset3, n_workers=3, n_experts=1,
                                 budget=10.0 ** 9, rng=4)
        platform.ask_batch((i, [0, 1, 2]) for i in range(dataset3.n_objects))
        answers = {i: platform.history.answers_for(i)
                   for i in range(dataset3.n_objects)}
        truths = platform.evaluation_labels()

        def acc(result):
            return np.mean([result.labels[i] == truths[i]
                            for i in range(len(truths))])

        mv = acc(MajorityVote(rng=0).infer(answers, 3, 4))
        ds = acc(DawidSkene().infer(answers, 3, 4))
        joint = JointInference(
            LogisticRegressionClassifier(dataset3.n_features, 3),
            dataset3.features,
            expert_mask=platform.pool.expert_mask,
        )
        j = acc(joint.infer(answers, 3, 4))
        assert mv > 0.55 and ds > 0.55 and j > 0.55

    def test_confusion_matrices_are_3x3(self, dataset3):
        platform = make_platform(dataset3, n_workers=2, n_experts=1,
                                 budget=10.0 ** 9, rng=5)
        platform.ask_batch((i, [0, 1]) for i in range(40))
        answers = {i: platform.history.answers_for(i) for i in range(40)}
        result = DawidSkene().infer(answers, 3, 3)
        for cm in result.confusions.values():
            assert cm.matrix.shape == (3, 3)
