"""Tests for the per-object expert cap (composition-constrained top-k)."""

import numpy as np
import pytest

from repro.core.agent import Agent
from repro.core.config import CrowdRLConfig
from repro.core.state import LabellingState
from repro.crowd.cost import BudgetManager
from repro.crowd.history import LabellingHistory
from repro.utils.topk import select_objects_by_topk_q

from conftest import build_pool


class TestGroupCappedTopK:
    Q = np.array([
        [5.0, 4.0, 3.0, 2.0, 1.0],
    ])

    def test_cap_limits_group_members(self):
        # Annotators 0 and 1 (highest scores) are in the capped group.
        mask = np.array([True, True, False, False, False])
        (obj, annotators), = select_objects_by_topk_q(
            self.Q, 3, 1, group_mask=mask, max_group=1
        )
        assert obj == 0
        assert annotators == [0, 2, 3]  # one expert + next-best workers

    def test_cap_zero_excludes_group(self):
        mask = np.array([True, True, False, False, False])
        (_, annotators), = select_objects_by_topk_q(
            self.Q, 3, 1, group_mask=mask, max_group=0
        )
        assert annotators == [2, 3, 4]

    def test_no_mask_behaves_as_before(self):
        (_, annotators), = select_objects_by_topk_q(self.Q, 3, 1)
        assert annotators == [0, 1, 2]

    def test_cap_larger_than_group_is_noop(self):
        mask = np.array([True, True, False, False, False])
        (_, annotators), = select_objects_by_topk_q(
            self.Q, 3, 1, group_mask=mask, max_group=5
        )
        assert annotators == [0, 1, 2]

    def test_mask_shape_validated(self):
        with pytest.raises(ValueError):
            select_objects_by_topk_q(
                self.Q, 2, 1, group_mask=np.array([True]), max_group=1
            )

    def test_max_group_required_with_mask(self):
        mask = np.zeros(5, dtype=bool)
        with pytest.raises(ValueError):
            select_objects_by_topk_q(self.Q, 2, 1, group_mask=mask,
                                     max_group=None)

    def test_masked_entries_still_skipped(self):
        q = self.Q.copy()
        q[0, 2] = -np.inf
        mask = np.array([True, True, False, False, False])
        (_, annotators), = select_objects_by_topk_q(
            q, 3, 1, group_mask=mask, max_group=1
        )
        assert annotators == [0, 3, 4]


class TestAgentExpertCap:
    def make(self, max_experts):
        config = CrowdRLConfig(batch_size=2, k_per_object=3,
                               max_experts_per_object=max_experts)
        pool = build_pool(worker_accs=(0.7, 0.65, 0.6),
                          expert_accs=(0.95, 0.93))
        agent = Agent(6, len(pool), config, rng=np.random.default_rng(0))
        history = LabellingHistory(6, len(pool), 2)
        state = LabellingState(history, pool, BudgetManager(500.0))
        return agent, state, pool

    def test_cap_one_expert_per_object(self):
        agent, state, pool = self.make(max_experts=1)
        expert_ids = {a.annotator_id for a in pool if a.is_expert}
        for assignment in agent.act(state):
            n_experts = len(set(assignment.annotator_ids) & expert_ids)
            assert n_experts <= 1

    def test_uncapped_allows_expert_pairs(self):
        agent, state, pool = self.make(max_experts=None)
        assignments = agent.act(state)
        assert assignments  # no constraint violations, just a smoke check

    def test_cap_respected_in_random_ta(self):
        config = CrowdRLConfig(batch_size=4, k_per_object=3,
                               max_experts_per_object=1, ts_mode="random")
        pool = build_pool(worker_accs=(0.7, 0.65, 0.6),
                          expert_accs=(0.95, 0.93))
        agent = Agent(6, len(pool), config, rng=np.random.default_rng(1))
        history = LabellingHistory(6, len(pool), 2)
        state = LabellingState(history, pool, BudgetManager(500.0))
        expert_ids = {a.annotator_id for a in pool if a.is_expert}
        for assignment in agent.act(state):
            assert len(set(assignment.annotator_ids) & expert_ids) <= 1

    def test_invalid_cap_raises(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            CrowdRLConfig(max_experts_per_object=-1)
