"""Tests for the DQN variants (Double DQN, prioritized) and demo pretraining."""

import dataclasses

import numpy as np
import pytest

from repro.core.agent import Agent
from repro.core.config import CrowdRLConfig
from repro.core.framework import CrowdRL
from repro.core.state import LabellingState
from repro.crowd.cost import BudgetManager
from repro.crowd.history import LabellingHistory
from repro.datasets.synthetic import make_blobs
from repro.exceptions import ConfigurationError
from repro.rl.dqn import DQNAgent, DQNConfig

from conftest import build_pool


class TestDoubleDQN:
    def make_agent(self, double):
        return DQNAgent(
            DQNConfig(n_features=3, hidden=(8,), batch_size=8,
                      min_buffer_for_training=8, double_dqn=double,
                      gamma=1.0),
            rng=0,
        )

    def test_double_dqn_trains(self):
        agent = self.make_agent(double=True)
        rng = np.random.default_rng(0)
        for _ in range(50):
            agent.remember(rng.normal(size=3), 1.0,
                           rng.normal(size=(4, 3)), False)
        assert agent.train_step() is not None

    def test_double_dqn_targets_bounded_by_vanilla(self):
        """Double DQN's bootstrap is target-net value at the online argmax,
        which can never exceed the target-net max used by vanilla DQN —
        the overestimation-control property."""
        agent = self.make_agent(double=True)
        # Desynchronise online and target networks.
        x = np.random.default_rng(1).normal(size=(8, 3))
        for _ in range(30):
            agent.qnet.train_on_targets(x, np.linspace(-1, 1, 8))
        nxt = np.random.default_rng(2).normal(size=(5, 3))
        target_q = agent.qnet.predict_target(nxt)
        online_q = agent.qnet.predict(nxt)
        double_bootstrap = target_q[int(np.argmax(online_q))]
        assert double_bootstrap <= target_q.max() + 1e-12

    def test_learns_bandit_like_vanilla(self):
        agent = self.make_agent(double=True)
        rng = np.random.default_rng(0)
        for _ in range(200):
            good = rng.random() < 0.5
            feats = np.array([1.0, 0.0, 0.0]) if good else np.zeros(3)
            agent.remember(feats, 1.0 if good else 0.0, None, True)
        agent.train(300)
        q = agent.q_values(np.array([[1.0, 0.0, 0.0], [0.0, 0.0, 0.0]]))
        assert q[0] > q[1] + 0.3


class TestCrowdRLVariantPlumbing:
    def test_config_flags_reach_dqn(self):
        config = CrowdRLConfig(double_dqn=True, prioritized_replay=True)
        agent = Agent(5, 3, config, rng=0)
        assert agent.dqn.config.double_dqn
        from repro.rl.replay import PrioritizedReplayBuffer

        assert isinstance(agent.dqn.buffer, PrioritizedReplayBuffer)

    def test_variant_run_end_to_end(self):
        dataset = make_blobs(40, 6, separation=3.0, rng=0)
        from repro import make_platform

        platform = make_platform(dataset, n_workers=3, n_experts=1,
                                 budget=120.0, rng=1)
        config = CrowdRLConfig(
            alpha=0.1, batch_size=4, min_truths_for_enrichment=10,
            train_steps_per_iteration=2, double_dqn=True,
            prioritized_replay=True,
        )
        outcome = CrowdRL(config, rng=2).run(dataset, platform)
        assert outcome.final_labels.shape == (40,)


class TestDemonstrationActing:
    def make_state(self, n_objects=8):
        history = LabellingHistory(n_objects, 4, 2)
        return LabellingState(history, build_pool(), BudgetManager(200.0))

    def test_demo_scores_prefer_uncertain_objects(self):
        config = CrowdRLConfig(demo_probability=1.0, batch_size=1,
                               k_per_object=2)
        agent = Agent(8, 4, config, rng=0)
        state = self.make_state()
        proba = np.full((8, 2), 0.5)
        proba[0] = [0.99, 0.01]   # object 0 is already obvious
        state.set_classifier_proba(proba)
        chosen = {agent.act(state)[0].object_id for _ in range(10)}
        assert 0 not in chosen

    def test_demo_scores_mask_respected(self):
        config = CrowdRLConfig(demo_probability=1.0, batch_size=8)
        agent = Agent(8, 4, config, rng=0)
        state = self.make_state()
        state.set_labelled(human=[1, 2], enriched=[])
        objects = {a.object_id for a in agent.act(state)}
        assert objects.isdisjoint({1, 2})

    def test_pretrain_restores_config(self):
        dataset = make_blobs(30, 5, separation=3.0, rng=0)
        from repro import make_platform

        config = CrowdRLConfig(alpha=0.1, batch_size=4,
                               min_truths_for_enrichment=10,
                               train_steps_per_iteration=1)
        framework = CrowdRL(config, rng=1)
        platform = make_platform(dataset, n_workers=2, n_experts=1,
                                 budget=90.0, rng=2)
        framework.pretrain(dataset, platform, demo_probability=0.7)
        assert framework.config.demo_probability == 0.0
        assert framework.config is config

    def test_invalid_demo_probability_raises(self):
        with pytest.raises(ConfigurationError):
            CrowdRLConfig(demo_probability=1.5)
