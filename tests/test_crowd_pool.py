"""Tests for repro.crowd.pool and repro.crowd.annotator."""

import numpy as np
import pytest

from repro.crowd.annotator import Annotator, AnnotatorKind
from repro.crowd.confusion import ConfusionMatrix
from repro.crowd.cost import CostModel
from repro.crowd.history import LabellingHistory
from repro.crowd.pool import AnnotatorPool
from repro.exceptions import ConfigurationError

from conftest import build_pool


class TestAnnotator:
    def test_expert_flag(self):
        a = Annotator(0, AnnotatorKind.EXPERT, ConfusionMatrix.uniform(2), 10.0)
        assert a.is_expert
        w = Annotator(0, AnnotatorKind.WORKER, ConfusionMatrix.uniform(2), 1.0)
        assert not w.is_expert

    def test_answer_uses_confusion(self):
        a = Annotator(0, AnnotatorKind.EXPERT, ConfusionMatrix(np.eye(2)), 1.0)
        assert a.answer(1) == 1

    def test_invalid_cost_raises(self):
        with pytest.raises(ConfigurationError):
            Annotator(0, AnnotatorKind.WORKER, ConfusionMatrix.uniform(2), 0.0)

    def test_seeded_copy_deterministic(self):
        a = Annotator(0, AnnotatorKind.WORKER,
                      ConfusionMatrix.from_accuracy(2, 0.7), 1.0)
        s1 = a.seeded(123)
        s2 = a.seeded(123)
        assert [s1.answer(0) for _ in range(10)] == [s2.answer(0) for _ in range(10)]

    def test_true_quality(self):
        a = Annotator(0, AnnotatorKind.WORKER,
                      ConfusionMatrix.from_accuracy(2, 0.7), 1.0)
        assert a.true_quality == pytest.approx(0.7)


class TestPoolBuild:
    def test_build_counts_and_kinds(self):
        pool = AnnotatorPool.build(2, n_workers=3, n_experts=2, rng=0)
        assert len(pool) == 5
        np.testing.assert_array_equal(
            pool.expert_mask, [False, False, False, True, True]
        )

    def test_build_costs(self):
        pool = AnnotatorPool.build(
            2, 2, 1, cost_model=CostModel(1.0, 10.0), rng=0
        )
        np.testing.assert_array_equal(pool.costs, [1.0, 1.0, 10.0])

    def test_build_accuracy_ranges(self):
        pool = AnnotatorPool.build(
            2, 5, 5, worker_accuracy=(0.6, 0.7),
            expert_accuracy=(0.95, 0.99), rng=0,
        )
        qualities = pool.true_qualities()
        assert (qualities[:5] <= 0.7 + 1e-9).all()
        assert (qualities[5:] >= 0.95 - 1e-9).all()

    def test_empty_pool_raises(self):
        with pytest.raises(ConfigurationError):
            AnnotatorPool.build(2, 0, 0)

    def test_ids_must_be_sequential(self):
        a = Annotator(1, AnnotatorKind.WORKER, ConfusionMatrix.uniform(2), 1.0)
        with pytest.raises(ConfigurationError):
            AnnotatorPool([a], 2)

    def test_class_count_mismatch_raises(self):
        a = Annotator(0, AnnotatorKind.WORKER, ConfusionMatrix.uniform(3), 1.0)
        with pytest.raises(ConfigurationError):
            AnnotatorPool([a], 2)

    def test_deterministic_given_seed(self):
        q1 = AnnotatorPool.build(2, 3, 2, rng=7).true_qualities()
        q2 = AnnotatorPool.build(2, 3, 2, rng=7).true_qualities()
        np.testing.assert_array_equal(q1, q2)


class TestEstimates:
    def test_initial_estimates_optimistic_for_experts(self):
        pool = build_pool()
        est = pool.estimated_qualities()
        assert est[-1] > est[0]

    def test_update_estimates_from_truths(self):
        pool = build_pool(worker_accs=(0.6,), expert_accs=())
        history = LabellingHistory(20, 1, 2)
        truths = {}
        rng = np.random.default_rng(0)
        for i in range(20):
            truth = int(rng.integers(2))
            truths[i] = truth
            history.record(i, 0, truth)  # annotator always agrees with truth
        pool.update_estimates(history, truths, smoothing=0.0)
        assert pool.estimated_qualities()[0] == pytest.approx(1.0)

    def test_update_skips_unseen_annotators(self):
        pool = build_pool()
        before = pool.estimated_qualities().copy()
        history = LabellingHistory(5, len(pool), 2)
        pool.update_estimates(history, {})
        np.testing.assert_array_equal(pool.estimated_qualities(), before)

    def test_set_estimate_validates_classes(self):
        pool = build_pool()
        with pytest.raises(ConfigurationError):
            pool.set_estimate(0, ConfusionMatrix.uniform(3))
