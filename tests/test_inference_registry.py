"""String registry for truth-inference algorithms (repro.inference.get)."""

import numpy as np
import pytest

import repro
from repro.classifiers.logistic import LogisticRegressionClassifier
from repro.exceptions import ConfigurationError
from repro.inference import (
    INFERENCE_NAMES,
    CATDInference,
    DawidSkene,
    GladInference,
    JointInference,
    MajorityVote,
    PMInference,
    TruthInference,
    WeightedMajorityVote,
    ZenCrowd,
    get,
)

EXPECTED_CLASSES = {
    "majority": MajorityVote,
    "weighted_majority": WeightedMajorityVote,
    "dawid_skene": DawidSkene,
    "pm": PMInference,
    "glad": GladInference,
    "zencrowd": ZenCrowd,
    "catd": CATDInference,
    "joint": JointInference,
}

#: Constructor kwargs for algorithms with required state.
REQUIRED_KWARGS = {
    "weighted_majority": lambda: {"weights": [1.0, 2.0, 1.5]},
    "joint": lambda: {
        "classifier": LogisticRegressionClassifier(4, 2),
        "features": np.zeros((6, 4)),
    },
}


def make(name):
    return get(name, **REQUIRED_KWARGS.get(name, dict)())


class TestRegistry:
    def test_names_cover_expected_algorithms(self):
        assert set(INFERENCE_NAMES) == set(EXPECTED_CLASSES)

    @pytest.mark.parametrize("name", sorted(EXPECTED_CLASSES))
    def test_roundtrip_every_algorithm(self, name):
        instance = make(name)
        assert isinstance(instance, EXPECTED_CLASSES[name])
        assert isinstance(instance, TruthInference)

    @pytest.mark.parametrize("name", sorted(EXPECTED_CLASSES))
    def test_registry_instances_infer(self, name):
        answers = {
            0: {0: 0, 1: 0, 2: 1},
            1: {0: 1, 1: 1, 2: 1},
            2: {0: 0, 1: 1, 2: 0},
            3: {0: 1, 1: 0, 2: 1},
            4: {0: 0, 1: 0, 2: 0},
            5: {0: 1, 1: 1, 2: 0},
        }
        result = make(name).infer(answers, n_classes=2, n_annotators=3)
        assert set(result.labels) == set(answers)
        assert all(label in (0, 1) for label in result.labels.values())

    def test_case_and_whitespace_insensitive(self):
        assert isinstance(get("  Dawid_Skene "), DawidSkene)

    def test_kwargs_forward_to_constructor(self):
        assert get("dawid_skene", max_iter=7).max_iter == 7

    def test_unknown_name_lists_available(self):
        with pytest.raises(ConfigurationError, match="dawid_skene"):
            get("super_vote")


class TestTopLevelSurface:
    def test_public_api_exports(self):
        for name in ("CrowdRL", "CrowdRLConfig", "run_experiment",
                     "ExperimentSpec", "ExperimentSetting", "TruthInference",
                     "get", "INFERENCE_NAMES"):
            assert name in repro.__all__
            assert getattr(repro, name) is not None

    def test_lazy_harness_exports_resolve(self):
        from repro.harness.experiment import ExperimentSpec, run_experiment

        assert repro.run_experiment is run_experiment
        assert repro.ExperimentSpec is ExperimentSpec
        assert "run_experiment" in dir(repro)

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.no_such_name
