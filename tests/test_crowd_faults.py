"""Tests for the fault-injection layer (repro.crowd.faults)."""

import numpy as np
import pytest

from repro.crowd.compose import wrap
from repro.crowd.cost import BudgetManager
from repro.crowd.faults import (
    FAULT_KINDS,
    FaultKind,
    FaultModel,
    UnreliablePlatform,
)
from repro.crowd.platform import CrowdPlatform
from repro.datasets.synthetic import make_blobs
from repro.exceptions import (
    AnnotatorUnavailableError,
    AnswerTimeoutError,
    ConfigurationError,
)

from conftest import build_pool


def make_unreliable(fault_model=None, budget=500.0, seed=7, **fault_kwargs):
    dataset = make_blobs(40, 6, separation=3.0, name="t", rng=seed)
    pool = build_pool(seed=seed)
    platform = CrowdPlatform(dataset.labels, pool, BudgetManager(budget))
    model = fault_model or FaultModel(len(pool), **fault_kwargs)
    return wrap(platform, faults=model, resilient=False), platform


class TestFaultModelValidation:
    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultModel(3, timeout=-0.1)

    def test_rates_summing_over_one_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultModel(3, timeout=0.6, abandon=0.6)

    def test_wrong_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultModel(3, timeout=[0.1, 0.2])

    def test_bad_outage_length_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultModel(3, outage_length=0)

    def test_bad_annotator_id_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultModel(3).draw(3)

    def test_from_rate_bounds(self):
        with pytest.raises(ConfigurationError):
            FaultModel.from_rate(3, 1.5)

    def test_rates_matrix_shape(self):
        model = FaultModel.from_rate(4, 0.2)
        assert model.rates().shape == (4, len(FAULT_KINDS))
        assert np.allclose(model.rates().sum(axis=1), 0.2)


class TestFaultModelSampling:
    def test_inert_at_rate_zero(self):
        model = FaultModel(3)
        assert model.inert
        assert all(model.draw(j % 3) is None for j in range(50))

    def test_deterministic_given_seed(self):
        model1 = FaultModel.from_rate(3, 0.5, rng=9)
        model2 = FaultModel.from_rate(3, 0.5, rng=9)
        draws1 = [model1.draw(j % 3) for j in range(100)]
        draws2 = [model2.draw(j % 3) for j in range(100)]
        assert draws1 == draws2
        assert any(d is not None for d in draws1)

    def test_per_annotator_rates(self):
        model = FaultModel(2, timeout=[1.0, 0.0], rng=1)
        assert model.draw(0) is FaultKind.TIMEOUT
        assert model.draw(1) is None

    def test_offline_opens_burst_outage(self):
        model = FaultModel(2, offline=1.0, outage_length=3, rng=0)
        assert model.draw(0) is FaultKind.OFFLINE
        # The next `outage_length` requests hit the outage window without
        # fresh sampling; the other annotator gets its own (fresh) fault.
        for _ in range(3):
            assert model.in_outage(0)
            assert model.draw(0) is FaultKind.OFFLINE

    def test_state_dict_round_trip(self):
        model = FaultModel.from_rate(3, 0.4, rng=5)
        for j in range(20):
            model.draw(j % 3)
        state = model.state_dict()
        clone = FaultModel.from_rate(3, 0.4, rng=5)
        clone.load_state_dict(state)
        draws = [model.draw(j % 3) for j in range(30)]
        assert draws == [clone.draw(j % 3) for j in range(30)]
        assert clone.clock == model.clock

    def test_malformed_state_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultModel(2).load_state_dict({"clock": 1})


class TestUnreliablePlatform:
    def test_pool_size_mismatch_rejected(self):
        unreliable, platform = make_unreliable()
        with pytest.raises(ConfigurationError):
            wrap(platform, faults=FaultModel(99))

    def test_direct_construction_warns_deprecation(self):
        _, platform = make_unreliable()
        with pytest.warns(DeprecationWarning, match="repro.crowd.wrap"):
            UnreliablePlatform(platform, FaultModel(len(platform.pool)))

    def test_timeout_raises_and_charges_partial_cost(self):
        unreliable, platform = make_unreliable(
            timeout=1.0, timeout_cost_fraction=0.5)
        with pytest.raises(AnswerTimeoutError):
            unreliable.ask(0, 0)
        assert platform.budget.spent == pytest.approx(
            0.5 * platform.pool[0].cost)
        assert not platform.history.has_answered(0, 0)
        assert platform.answer_log == []

    def test_abandon_raises_and_charges_nothing(self):
        unreliable, platform = make_unreliable(abandon=1.0)
        with pytest.raises(AnnotatorUnavailableError):
            unreliable.ask(0, 0)
        assert platform.budget.spent == 0.0

    def test_offline_outage_blocks_consecutive_requests(self):
        unreliable, platform = make_unreliable(
            offline=[1.0, 0.0, 0.0, 0.0], outage_length=4)
        with pytest.raises(AnnotatorUnavailableError):
            unreliable.ask(0, 0)
        with pytest.raises(AnnotatorUnavailableError):
            unreliable.ask(1, 0)
        # Other annotators are unaffected.
        record = unreliable.ask(0, 1)
        assert record.annotator_id == 1

    def test_corruption_is_silent_and_consistent(self):
        unreliable, platform = make_unreliable(corrupt=1.0)
        record = unreliable.ask(0, 0)
        assert 0 <= record.answer < platform.n_classes
        assert platform.history.matrix[0, 0] == record.answer
        assert platform.answer_log[-1] == record
        assert platform.budget.spent == pytest.approx(platform.pool[0].cost)

    def test_ask_batch_propagates_faults(self):
        unreliable, _ = make_unreliable(timeout=1.0)
        with pytest.raises(AnswerTimeoutError):
            unreliable.ask_batch([(0, [0, 1])])

    def test_ask_batch_mixed_fault_outcomes(self):
        # One batch, three outcomes: annotator 1 corrupts silently (the
        # record lands), annotator 3 answers honestly, annotator 0 times
        # out and aborts the batch — records collected so far stay on the
        # platform's books.
        unreliable, platform = make_unreliable(
            timeout=[1.0, 0.0, 0.0, 0.0],
            corrupt=[0.0, 1.0, 0.0, 0.0],
            offline=[0.0, 0.0, 1.0, 0.0],
        )
        with pytest.raises(AnswerTimeoutError):
            unreliable.ask_batch([(0, [1, 3, 0, 2])])
        assert platform.history.has_answered(0, 1)
        assert platform.history.has_answered(0, 3)
        assert not platform.history.has_answered(0, 0)
        assert not platform.history.has_answered(0, 2)
        # The timeout wasted its cost fraction on top of the two answers.
        answered_cost = platform.pool[1].cost + platform.pool[3].cost
        assert platform.budget.spent > answered_cost

    def test_inert_batch_identical_to_bare_platform(self):
        unreliable, _ = make_unreliable(seed=3)
        _, bare = make_unreliable(seed=3)
        assignments = [(i, [0, 1, 2, 3]) for i in range(10)]
        wrapped = unreliable.ask_batch(assignments)
        direct = bare.ask_batch(assignments)
        assert wrapped == direct

    def test_waste_capped_at_remaining_budget(self):
        unreliable, platform = make_unreliable(
            timeout=1.0, budget=4.0, timeout_cost_fraction=1.0)
        # Expert costs 10 but only 4 remains: waste the remainder, no more.
        with pytest.raises(AnswerTimeoutError):
            unreliable.ask(0, 3)
        assert platform.budget.spent == pytest.approx(4.0)
