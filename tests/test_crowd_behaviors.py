"""Tests for adverse annotator behaviours and robustness under them."""

import numpy as np
import pytest

from repro.crowd.annotator import AnnotatorKind
from repro.crowd.behaviors import (
    DriftingAnnotator,
    adversary_matrix,
    biased_matrix,
    contaminate_pool,
    spammer_matrix,
)
from repro.crowd.cost import BudgetManager
from repro.crowd.platform import CrowdPlatform
from repro.crowd.pool import AnnotatorPool
from repro.exceptions import ConfigurationError
from repro.inference.dawid_skene import DawidSkene
from repro.inference.majority import MajorityVote

from conftest import build_pool


class TestMatrices:
    def test_spammer_is_uniform(self):
        np.testing.assert_allclose(spammer_matrix(3).matrix, 1 / 3)

    def test_adversary_mostly_wrong(self):
        cm = adversary_matrix(2, strength=0.9)
        assert cm.matrix[0, 1] == pytest.approx(0.9)
        assert cm.quality() == pytest.approx(0.1)

    def test_adversary_strength_validated(self):
        with pytest.raises(ConfigurationError):
            adversary_matrix(2, strength=0.4)

    def test_biased_prefers_favoured_class(self):
        cm = biased_matrix(2, favoured_class=1, bias=0.9)
        assert cm.matrix[0, 1] > 0.8
        assert cm.matrix[1, 1] > 0.8
        np.testing.assert_allclose(cm.matrix.sum(axis=1), 1.0)

    def test_biased_validates_class(self):
        with pytest.raises(ConfigurationError):
            biased_matrix(2, favoured_class=2)


class TestDriftingAnnotator:
    def test_accuracy_decays_toward_floor(self):
        annotator = DriftingAnnotator(0, 2, start_accuracy=0.95,
                                      floor_accuracy=0.6, decay=0.8, rng=0)
        start = annotator.current_accuracy
        for _ in range(50):
            annotator.answer(0)
        assert annotator.current_accuracy < start
        assert annotator.current_accuracy >= 0.6 - 1e-9

    def test_empirical_quality_drops(self):
        annotator = DriftingAnnotator(0, 2, start_accuracy=1.0,
                                      floor_accuracy=0.5, decay=0.9, rng=1)
        early = np.mean([annotator.answer(0) == 0 for _ in range(30)])
        late = np.mean([annotator.answer(0) == 0 for _ in range(300)][-100:])
        assert early > late

    def test_invalid_params_raise(self):
        with pytest.raises(ConfigurationError):
            DriftingAnnotator(0, 2, start_accuracy=0.5, floor_accuracy=0.8)
        with pytest.raises(ConfigurationError):
            DriftingAnnotator(0, 2, decay=0.0)


class TestContamination:
    def test_replaces_last_workers_only(self):
        pool = build_pool(worker_accs=(0.8, 0.75, 0.7), expert_accs=(0.95,))
        contaminated = contaminate_pool(pool.annotators, n_spammers=1, rng=0)
        # Last worker (id 2) became a spammer; expert untouched.
        assert contaminated[2].confusion.quality() == pytest.approx(0.5)
        assert contaminated[3].confusion.quality() == pytest.approx(0.95)
        assert contaminated[0].confusion.quality() == pytest.approx(0.8)

    def test_over_contamination_raises(self):
        pool = build_pool(worker_accs=(0.8,), expert_accs=(0.95,))
        with pytest.raises(ConfigurationError):
            contaminate_pool(pool.annotators, n_spammers=2)

    def test_ids_and_costs_preserved(self):
        pool = build_pool()
        contaminated = contaminate_pool(pool.annotators, n_adversaries=1,
                                        rng=0)
        for original, new in zip(pool.annotators, contaminated):
            assert new.annotator_id == original.annotator_id
            assert new.cost == original.cost
            assert new.kind == original.kind


class TestRobustnessUnderContamination:
    def _accuracy(self, algo, answers, truths, n_ann):
        result = algo.infer(answers, 2, n_ann)
        return np.mean([result.labels[i] == truths[i]
                        for i in range(len(truths))])

    def test_dawid_skene_downweights_a_spammer(self):
        """With a spammer in the pool, confusion-matrix EM should recover
        more accuracy than unweighted majority voting."""
        clean = build_pool(worker_accs=(0.85, 0.8, 0.75), expert_accs=(),
                           seed=3).annotators
        annotators = contaminate_pool(clean, n_spammers=1, rng=4)
        pool = AnnotatorPool(annotators, 2)
        rng = np.random.default_rng(5)
        truths = rng.integers(0, 2, size=300)
        platform = CrowdPlatform(truths, pool, BudgetManager(10.0 ** 9))
        platform.ask_batch((i, [0, 1, 2]) for i in range(300))
        answers = {i: platform.history.answers_for(i) for i in range(300)}
        ds_acc = self._accuracy(DawidSkene(), answers, truths, 3)
        mv_acc = self._accuracy(MajorityVote(rng=0), answers, truths, 3)
        assert ds_acc >= mv_acc

    def test_platform_accepts_drifting_annotators(self):
        annotators = [
            DriftingAnnotator(0, 2, rng=0),
            DriftingAnnotator(1, 2, rng=1),
        ]
        pool = AnnotatorPool(annotators, 2)
        truths = np.array([0, 1, 0, 1])
        platform = CrowdPlatform(truths, pool, BudgetManager(100.0))
        records = platform.ask_batch((i, [0, 1]) for i in range(4))
        assert len(records) == 8
