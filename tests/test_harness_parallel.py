"""Tests for the fault-tolerant sharded experiment engine.

The fast tests pin the engine's determinism contract (per-shard spawn
streams, index-order merge, journal resume) without spawning processes.
The ``chaos``-marked tests inject real faults: a worker SIGKILLed
mid-shard, a worker frozen mid-shard (SIGSTOP, so heartbeats stop while
the process stays alive), a worker that dies on every attempt (the
degradation ladder's bottom rung), and a whole sweep SIGKILLed from the
outside and resumed from its journal.  In every case the merged output
must be bit-identical to an undisturbed serial run.

Task functions live at module level because the spawn start method
pickles them by reference (REPRO015).  Fault tasks must only misbehave
inside *worker* processes — never in the pytest process, and never in
the engine's in-process degradation rung — so they compare their pid to
``REPRO_TEST_SWEEP_MAIN_PID``, which each test sets to its own pid.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.exceptions import ConfigurationError, ShardError
from repro.harness.parallel import (
    ShardedRunner,
    SweepOptions,
    _backoff_delay,
    run_sharded,
)
from repro.obs import make_registry, use_registry
from repro.utils.rng import spawn_rng_at

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))

SRC = Path(__file__).parents[1] / "src"
TESTS = Path(__file__).parent


def _in_worker() -> bool:
    """True inside a spawn worker (not the pytest/driver main process)."""
    main_pid = os.environ.get("REPRO_TEST_SWEEP_MAIN_PID")
    return main_pid is not None and os.getpid() != int(main_pid)


# ----------------------------------------------------------------------
# Module-level task functions (spawn pickles them by reference)
# ----------------------------------------------------------------------
def draw_task(payload, ctx):
    """The canonical deterministic shard: draws from the engine stream."""
    return {
        "index": ctx.index,
        "scaled": payload["scale"] * float(ctx.rng.random()),
    }


def journalling_task(payload, ctx):
    """Leaves a per-attempt marker in the shard journal, then draws."""
    if ctx.journal_dir is not None:
        marker = ctx.journal_dir / f"attempt-{ctx.attempt}.marker"
        marker.write_text(str(ctx.resuming))
    return {"draw": float(ctx.rng.random())}


def metrics_task(payload, ctx):
    """Writes one obs-style event line into the shard's metrics dir."""
    if ctx.metrics_dir is not None:
        log = ctx.metrics_dir / "metrics-00.jsonl"
        log.write_text(json.dumps({"shard": ctx.index}) + "\n")
    return ctx.index


def raising_task(payload, ctx):
    """Deterministic failure: must surface, never retry."""
    if payload.get("boom"):
        raise ValueError(f"shard {ctx.index} is broken")
    return float(ctx.rng.random())


def slow_draw_task(payload, ctx):
    """Slow enough that an external SIGKILL lands mid-sweep."""
    time.sleep(payload["sleep"])
    return {"index": ctx.index, "draw": float(ctx.rng.random())}


def crash_once_task(payload, ctx):
    """SIGKILLs its worker on the first attempt at the chosen shard."""
    if ctx.index == payload["victim"] and ctx.attempt == 0 and _in_worker():
        os.kill(os.getpid(), signal.SIGKILL)
    return {"index": ctx.index, "draw": float(ctx.rng.random()),
            "attempt": ctx.attempt}


def freeze_once_task(payload, ctx):
    """SIGSTOPs its worker: alive but silent, so heartbeats stop."""
    if ctx.index == payload["victim"] and ctx.attempt == 0 and _in_worker():
        os.kill(os.getpid(), signal.SIGSTOP)
    return {"index": ctx.index, "draw": float(ctx.rng.random())}


def crash_always_task(payload, ctx):
    """Dies in every worker attempt; only completes in-process."""
    if _in_worker():
        os.kill(os.getpid(), signal.SIGKILL)
    return {"index": ctx.index, "draw": float(ctx.rng.random())}


def expected_draws(seed, n):
    """What the engine's per-shard streams yield, shard by shard."""
    return [float(spawn_rng_at(seed, i).random()) for i in range(n)]


# ----------------------------------------------------------------------
# Options and backoff (no processes involved)
# ----------------------------------------------------------------------
class TestSweepOptions:
    @pytest.mark.parametrize("overrides", [
        {"parallel": 0},
        {"shard_timeout": 0.0},
        {"shard_retries": -1},
        {"heartbeat_every": 0.0},
        {"resume": True},                  # without journal_dir
        {"metrics": True},                 # without journal_dir
    ])
    def test_invalid_options_rejected(self, overrides):
        with pytest.raises(ConfigurationError):
            SweepOptions(**overrides)

    def test_coerce_accepts_counts_none_and_options(self):
        assert SweepOptions.coerce(None) == SweepOptions()
        assert SweepOptions.coerce(3).parallel == 3
        options = SweepOptions(parallel=2, seed=9)
        assert SweepOptions.coerce(options) is options

    def test_backoff_is_seeded_bounded_and_growing(self):
        options = SweepOptions(seed=5, backoff_base=0.1, backoff_cap=0.4)
        first = _backoff_delay(options, index=3, attempt=1)
        assert first == _backoff_delay(options, index=3, attempt=1)
        assert first != _backoff_delay(options, index=4, attempt=1)
        for attempt in range(1, 8):
            delay = _backoff_delay(options, 3, attempt)
            base = min(0.4, 0.1 * 2.0 ** (attempt - 1))
            assert base * 0.5 <= delay <= base * 1.5


# ----------------------------------------------------------------------
# Serial path: determinism, ordering, journal, metrics
# ----------------------------------------------------------------------
class TestSerialEngine:
    def test_streams_are_spawn_children_in_index_order(self):
        payloads = [{"scale": 2.0}] * 4
        outcomes = run_sharded(draw_task, payloads,
                               tags=[f"t{i}" for i in range(4)],
                               options=SweepOptions(seed=CHAOS_SEED + 13))
        assert [o.index for o in outcomes] == [0, 1, 2, 3]
        assert [o.tag for o in outcomes] == ["t0", "t1", "t2", "t3"]
        draws = expected_draws(CHAOS_SEED + 13, 4)
        assert [o.value["scaled"] for o in outcomes] == [
            2.0 * d for d in draws
        ]
        assert all(o.worker == "serial" and o.attempts == 1
                   for o in outcomes)

    def test_tag_count_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            run_sharded(draw_task, [{"scale": 1.0}], tags=["a", "b"])

    def test_counters_track_shard_lifecycle(self):
        with use_registry(make_registry()) as registry:
            run_sharded(draw_task, [{"scale": 1.0}] * 3)
            assert registry.counter_value("shards.launched") == 3
            assert registry.counter_value("shards.completed") == 3
            assert registry.counter_value("shards.retried") == 0
            assert registry.snapshot()["gauges"]["shard.2.wall_s"] >= 0.0

    def test_journal_resume_loads_instead_of_recomputing(self, tmp_path):
        journal = tmp_path / "sweep"
        payloads = [{}] * 3
        options = SweepOptions(seed=3, journal_dir=journal)
        first = run_sharded(journalling_task, payloads, options=options)
        with use_registry(make_registry()) as registry:
            second = run_sharded(
                journalling_task, payloads,
                options=SweepOptions(seed=3, journal_dir=journal,
                                     resume=True),
            )
            assert registry.counter_value("shards.resumed") == 3
            assert registry.counter_value("shards.launched") == 0
        assert [o.value for o in second] == [o.value for o in first]
        assert all(o.resumed for o in second)
        # Only the original execution's attempt markers exist: nothing re-ran.
        for i in range(3):
            markers = sorted((journal / f"shard-{i:04d}").glob("*.marker"))
            assert [m.name for m in markers] == ["attempt-0.marker"]

    def test_rerun_without_resume_clears_journal_and_recomputes(
            self, tmp_path):
        journal = tmp_path / "sweep"
        options = SweepOptions(seed=3, journal_dir=journal)
        first = run_sharded(journalling_task, [{}] * 2, options=options)
        second = run_sharded(journalling_task, [{}] * 2, options=options)
        assert [o.value for o in second] == [o.value for o in first]
        assert not any(o.resumed for o in second)

    def test_journal_of_different_sweep_rejected(self, tmp_path):
        journal = tmp_path / "sweep"
        options = SweepOptions(seed=3, journal_dir=journal)
        run_sharded(journalling_task, [{}] * 2, options=options)
        with pytest.raises(ShardError, match="different sweep"):
            run_sharded(journalling_task, [{"other": 1}] * 2,
                        options=options)

    def test_resume_without_manifest_rejected(self, tmp_path):
        with pytest.raises(ShardError, match="nothing to resume"):
            run_sharded(
                journalling_task, [{}],
                options=SweepOptions(journal_dir=tmp_path / "missing",
                                     resume=True),
            )

    def test_metrics_merged_in_shard_index_order(self, tmp_path):
        journal = tmp_path / "sweep"
        run_sharded(
            metrics_task, [{}] * 4,
            options=SweepOptions(journal_dir=journal, metrics=True),
        )
        lines = (journal / "metrics.jsonl").read_text().splitlines()
        assert [json.loads(line)["shard"] for line in lines] == [0, 1, 2, 3]

    def test_task_exception_propagates_serially(self):
        with pytest.raises(ValueError, match="shard 1 is broken"):
            run_sharded(raising_task, [{}, {"boom": True}])


# ----------------------------------------------------------------------
# Worker pool: bit-identity and fault injection
# ----------------------------------------------------------------------
def pool_options(tmp_path=None, **overrides):
    kwargs = {
        "parallel": 2,
        "seed": CHAOS_SEED + 29,
        "shard_timeout": 60.0,
        "heartbeat_every": 0.1,
        "backoff_base": 0.01,
    }
    if tmp_path is not None:
        kwargs["journal_dir"] = tmp_path / "sweep"
    kwargs.update(overrides)
    return SweepOptions(**kwargs)


@pytest.fixture
def main_pid_env(monkeypatch):
    """Let fault tasks distinguish worker processes from this one."""
    monkeypatch.setenv("REPRO_TEST_SWEEP_MAIN_PID", str(os.getpid()))


class TestWorkerPool:
    def test_parallel_matches_serial_bit_identical(self):
        payloads = [{"scale": 3.0}] * 5
        serial = run_sharded(draw_task, payloads,
                             options=SweepOptions(seed=CHAOS_SEED + 29))
        parallel = run_sharded(draw_task, payloads,
                               options=pool_options(parallel=3))
        assert [o.value for o in parallel] == [o.value for o in serial]
        assert [o.index for o in parallel] == [0, 1, 2, 3, 4]
        assert all(o.worker.startswith("worker-") for o in parallel)

    def test_task_exception_is_shard_error_not_retried(self):
        with use_registry(make_registry()) as registry:
            with pytest.raises(ShardError) as err:
                run_sharded(raising_task, [{}, {"boom": True}, {}],
                            options=pool_options())
            assert registry.counter_value("shards.retried") == 0
        assert "ValueError" in str(err.value)
        assert "worker traceback" in str(err.value)
        assert "shard 1 is broken" in str(err.value)


@pytest.mark.chaos
class TestChaos:
    def test_sigkilled_worker_is_retried_bit_identical(self, main_pid_env):
        payloads = [{"victim": 1}] * 3
        with use_registry(make_registry()) as registry:
            outcomes = run_sharded(crash_once_task, payloads,
                                   options=pool_options())
            assert registry.counter_value("shards.retried") == 1
            assert registry.counter_value("shards.degraded") == 0
        draws = expected_draws(CHAOS_SEED + 29, 3)
        assert [o.value["draw"] for o in outcomes] == draws
        victim = outcomes[1]
        assert victim.attempts == 2
        assert victim.value["attempt"] == 1

    def test_frozen_worker_is_reaped_and_retried(self, main_pid_env):
        # The timeout must comfortably exceed spawn start-up on a loaded
        # machine, or healthy-but-slow workers get reaped too; the frozen
        # one is guaranteed to trip it because SIGSTOP silences its beats
        # forever.  Under heavy contention spurious reaps may add extra
        # attempts or degrade to serial — either way the draws must hold.
        payloads = [{"victim": 0}] * 3
        outcomes = run_sharded(
            freeze_once_task, payloads,
            options=pool_options(shard_timeout=4.0),
        )
        draws = expected_draws(CHAOS_SEED + 29, 3)
        assert [o.value["draw"] for o in outcomes] == draws
        assert outcomes[0].attempts >= 2

    def test_always_crashing_workers_degrade_to_serial(self, main_pid_env):
        payloads = [{}] * 3
        with use_registry(make_registry()) as registry:
            outcomes = run_sharded(
                crash_always_task, payloads,
                options=pool_options(shard_retries=1),
            )
            assert registry.counter_value("shards.degraded") >= 1
        draws = expected_draws(CHAOS_SEED + 29, 3)
        assert [o.value["draw"] for o in outcomes] == draws
        assert any(o.worker == "degraded" for o in outcomes)

    def test_sigkilled_sweep_resumes_bit_identical(self, tmp_path):
        """Kill the whole sweep process mid-flight; resume must converge."""
        n = 8
        journal = tmp_path / "sweep"
        driver = tmp_path / "driver.py"
        driver.write_text(
            "import json, sys\n"
            f"sys.path.insert(0, {str(SRC)!r})\n"
            f"sys.path.insert(0, {str(TESTS)!r})\n"
            "from test_harness_parallel import slow_draw_task\n"
            "from repro.harness.parallel import SweepOptions, run_sharded\n"
            f"payloads = [{{'sleep': 0.5}}] * {n}\n"
            "options = SweepOptions(parallel=2, seed=17, shard_timeout=60.0,\n"
            f"                       journal_dir={str(journal)!r},\n"
            "                       resume=sys.argv[1] == 'resume')\n"
            "outcomes = run_sharded(slow_draw_task, payloads, options=options)\n"
            "print(json.dumps({'draws': [o.value['draw'] for o in outcomes],\n"
            "                  'resumed': [o.resumed for o in outcomes]}))\n"
        )

        def n_results():
            return len(list(journal.glob("shard-*/result.json")))

        sweep = subprocess.Popen(
            [sys.executable, str(driver), "fresh"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            start_new_session=True,
        )
        try:
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if sweep.poll() is not None or n_results() >= 1:
                    break
                time.sleep(0.05)
            assert sweep.poll() is None, (
                f"sweep exited before the kill: {sweep.stderr.read()!r}"
            )
            os.killpg(sweep.pid, signal.SIGKILL)
            sweep.wait(timeout=30.0)
        finally:
            if sweep.poll() is None:
                os.killpg(sweep.pid, signal.SIGKILL)
        killed_with = n_results()
        assert 1 <= killed_with < n, f"kill not mid-flight: {killed_with}/{n}"

        resumed = subprocess.run(
            [sys.executable, str(driver), "resume"],
            capture_output=True, text=True, timeout=300.0,
        )
        assert resumed.returncode == 0, resumed.stderr
        payload = json.loads(resumed.stdout.splitlines()[-1])
        assert payload["draws"] == expected_draws(17, n)
        assert sum(payload["resumed"]) >= killed_with
