"""Per-phase perf-ratchet machinery: minima, baseline I/O, comparison, CLI."""

import json

import pytest

from repro.exceptions import ReproError
from repro.obs.__main__ import main as obs_main
from repro.obs.baseline import (
    FLOOR_S,
    PHASE_BASELINE_MAP,
    compare_to_baseline,
    load_baseline,
    merge_minima,
    phase_minima,
    write_baseline,
)


def write_events(path, events):
    with open(path, "w", encoding="utf-8") as fh:
        for event in events:
            fh.write(json.dumps(event) + "\n")


def phase_event(name, elapsed_s):
    return {"kind": "phase", "name": name, "elapsed_s": elapsed_s}


@pytest.fixture
def metrics_path(tmp_path):
    path = tmp_path / "metrics.jsonl"
    write_events(path, [
        phase_event("featurize", 2e-3),
        phase_event("featurize", 1e-3),
        phase_event("infer.e_step", 5e-3),
        phase_event("infer.refit", 9e-3),       # not a ratcheted phase
        {"kind": "counter", "name": "budget.collect", "value": 1},
    ])
    return path


class TestPhaseMinima:
    def test_min_over_calls_and_jsonl_name_mapping(self, metrics_path):
        minima = phase_minima(metrics_path)
        assert minima["featurize"] == {"min_s": 1e-3, "calls": 2}
        # infer.e_step in the JSONL surfaces under the ratchet name e_step.
        assert minima["e_step"] == {"min_s": 5e-3, "calls": 1}
        assert "infer.refit" not in minima and "refit" not in minima

    def test_merge_takes_min_across_runs(self):
        merged = merge_minima([
            {"featurize": {"min_s": 2e-3, "calls": 3}},
            {"featurize": {"min_s": 1e-3, "calls": 4},
             "select": {"min_s": 7e-3, "calls": 1}},
        ])
        assert merged["featurize"] == {"min_s": 1e-3, "calls": 7}
        assert merged["select"]["calls"] == 1


class TestBaselineRoundtrip:
    def test_write_then_load(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, {"featurize": {"min_s": 1e-3, "calls": 2}},
                       calibration_s=1e-4, note="test")
        doc = load_baseline(path)
        assert doc["calibration_s"] == 1e-4
        assert doc["phases"]["featurize"]["min_s"] == 1e-3

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"machine_info": {}}')
        with pytest.raises(ReproError):
            load_baseline(path)


def make_baseline(tmp_path, min_s=1e-3, calibration_s=1e-4):
    path = tmp_path / "baseline.json"
    write_baseline(path, {"featurize": {"min_s": min_s, "calls": 2}},
                   calibration_s=calibration_s)
    return load_baseline(path)


class TestComparison:
    def test_same_normalised_time_passes(self, tmp_path):
        baseline = make_baseline(tmp_path)
        # Twice as slow in wall time, but on a machine whose calibration
        # is twice as slow too: the normalised ratio is 1.0.
        (res,) = compare_to_baseline(
            {"featurize": {"min_s": 2e-3, "calls": 2}}, 2e-4, baseline
        )
        assert res.ratio == pytest.approx(1.0)
        assert not res.regressed

    def test_regression_beyond_tolerance_fails(self, tmp_path):
        baseline = make_baseline(tmp_path)
        (res,) = compare_to_baseline(
            {"featurize": {"min_s": 1.5e-3, "calls": 2}}, 1e-4, baseline
        )
        assert res.regressed and res.ratio == pytest.approx(1.5)

    def test_floor_absorbs_noise_under_it(self, tmp_path):
        # Both sides below FLOOR_S: clamped equal, never a regression.
        baseline = make_baseline(tmp_path, min_s=FLOOR_S / 10)
        (res,) = compare_to_baseline(
            {"featurize": {"min_s": FLOOR_S / 2, "calls": 2}}, 1e-4, baseline
        )
        assert res.ratio == pytest.approx(1.0) and not res.regressed

    def test_missing_phase_is_a_failure(self, tmp_path):
        baseline = make_baseline(tmp_path)
        (res,) = compare_to_baseline({}, 1e-4, baseline)
        assert res.missing and res.regressed

    def test_bad_tolerance_rejected(self, tmp_path):
        baseline = make_baseline(tmp_path)
        with pytest.raises(ReproError):
            compare_to_baseline({}, 1e-4, baseline, tolerance=1.0)

    def test_map_covers_the_eight_hot_phases(self):
        assert sorted(PHASE_BASELINE_MAP) == [
            "collect", "dqn_train", "e_step", "enrich",
            "featurize", "m_step", "q_forward", "select",
        ]


class TestCli:
    def test_write_then_compare_roundtrip(self, tmp_path, metrics_path,
                                          capsys):
        baseline = tmp_path / "baseline.json"
        assert obs_main([
            "report", str(metrics_path),
            "--baseline", str(baseline), "--write-baseline",
        ]) == 0
        # Same log ratchets clean against the baseline it just wrote
        # (identical minima; calibration drift is far inside tolerance).
        assert obs_main([
            "report", str(metrics_path), "--baseline", str(baseline),
        ]) == 0
        out = capsys.readouterr().out
        assert "perf ratchet ok" in out

    def test_regression_exits_nonzero(self, tmp_path, metrics_path):
        baseline = tmp_path / "baseline.json"
        assert obs_main([
            "report", str(metrics_path),
            "--baseline", str(baseline), "--write-baseline",
        ]) == 0
        slow = tmp_path / "slow.jsonl"
        write_events(slow, [
            phase_event("featurize", 10e-3),
            phase_event("infer.e_step", 50e-3),
        ])
        assert obs_main([
            "report", str(slow), "--baseline", str(baseline),
        ]) == 1

    def test_missing_baseline_file_is_an_error(self, metrics_path, tmp_path):
        assert obs_main([
            "report", str(metrics_path),
            "--baseline", str(tmp_path / "nope.json"),
        ]) == 2

    def test_plain_report_still_works(self, metrics_path, capsys):
        assert obs_main(["report", str(metrics_path)]) == 0
        assert "featurize" in capsys.readouterr().out
