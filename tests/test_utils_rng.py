"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import as_rng, spawn_rng_at, spawn_rngs


class TestAsRng:
    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        a = as_rng(123).random(5)
        b = as_rng(123).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.allclose(as_rng(1).random(5), as_rng(2).random(5))

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 4)) == 4

    def test_zero(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_independent(self):
        a, b = spawn_rngs(9, 2)
        assert not np.allclose(a.random(10), b.random(10))

    def test_deterministic_across_calls(self):
        a1, _ = spawn_rngs(9, 2)
        a2, _ = spawn_rngs(9, 2)
        np.testing.assert_array_equal(a1.random(5), a2.random(5))


class TestSpawnRngAt:
    def test_matches_spawn_rngs_child(self):
        children = spawn_rngs(9, 3)
        for index, child in enumerate(children):
            np.testing.assert_array_equal(
                spawn_rng_at(9, index).random(5), child.random(5)
            )

    def test_no_sibling_construction_needed(self):
        # Rebuilding child 2 alone equals rebuilding it among siblings:
        # this is what lets a worker process derive its shard's stream
        # without knowing the sweep width.
        np.testing.assert_array_equal(
            spawn_rng_at(9, 2).random(5), spawn_rng_at(9, 2).random(5)
        )

    def test_negative_index_raises(self):
        with pytest.raises(ValueError):
            spawn_rng_at(9, -1)
