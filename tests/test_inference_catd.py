"""Tests for CATD confidence-aware inference."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.inference.catd import CATDInference

from test_inference_em import label_accuracy, simulate_answers


class TestCATD:
    def test_accurate_on_standard_pool(self):
        answers, truths, n_ann = simulate_answers()
        result = CATDInference().infer(answers, 2, n_ann)
        assert label_accuracy(result.labels, truths) > 0.8

    def test_sparse_annotator_weight_shrunk(self):
        """An annotator with 3 perfect answers must not outweigh one with
        300 nearly perfect answers — the confidence bound handles it."""
        rng = np.random.default_rng(0)
        truths = rng.integers(0, 2, size=300)
        answers = {}
        for i, truth in enumerate(truths):
            votes = {}
            # Annotator 0: dense and excellent (97%).
            votes[0] = int(truth) if rng.random() < 0.97 else 1 - int(truth)
            # Annotator 1: dense, decent (75%).
            votes[1] = int(truth) if rng.random() < 0.75 else 1 - int(truth)
            # Annotator 2: only the first 3 objects, perfect there.
            if i < 3:
                votes[2] = int(truth)
            answers[i] = votes
        algo = CATDInference()
        algo.infer(answers, 2, 3)
        assert algo.weights[0] > algo.weights[2]

    def test_posteriors_are_distributions(self):
        answers, _t, n_ann = simulate_answers(n_objects=30)
        result = CATDInference().infer(answers, 2, n_ann)
        for post in result.posteriors.values():
            assert post.sum() == pytest.approx(1.0)
            assert (post >= 0).all()

    def test_zero_confidence_reduces_to_pm_style(self):
        answers, truths, n_ann = simulate_answers(n_objects=100, seed=5)
        catd = CATDInference(confidence_z=0.0).infer(answers, 2, n_ann)
        from repro.inference.pm import PMInference

        pm = PMInference().infer(answers, 2, n_ann)
        agreement = np.mean([
            catd.labels[i] == pm.labels[i] for i in catd.labels
        ])
        assert agreement > 0.9

    def test_empty_answers(self):
        assert CATDInference().infer({}, 2, 3).labels == {}

    def test_invalid_params_raise(self):
        with pytest.raises(ConfigurationError):
            CATDInference(max_iter=0)
        with pytest.raises(ConfigurationError):
            CATDInference(confidence_z=-1)
        with pytest.raises(ConfigurationError):
            CATDInference(regulariser=0.6)
