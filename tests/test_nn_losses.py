"""Tests for repro.nn.losses."""

import numpy as np
import pytest

from repro.nn.losses import HuberLoss, MeanSquaredError, SoftmaxCrossEntropy


def numeric_grad(f, x, eps=1e-6):
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        plus = f()
        x[idx] = orig - eps
        minus = f()
        x[idx] = orig
        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


class TestMSE:
    def test_zero_on_match(self):
        x = np.ones((3, 2))
        assert MeanSquaredError().value(x, x) == 0.0

    def test_known_value(self):
        pred = np.array([[1.0, 0.0]])
        target = np.array([[0.0, 0.0]])
        assert MeanSquaredError().value(pred, target) == pytest.approx(0.5)

    def test_grad_matches_numeric(self):
        rng = np.random.default_rng(0)
        pred = rng.normal(size=(4, 3))
        target = rng.normal(size=(4, 3))
        loss = MeanSquaredError()
        numeric = numeric_grad(lambda: loss.value(pred, target), pred)
        np.testing.assert_allclose(loss.grad(pred, target), numeric, atol=1e-5)

    def test_sample_weights_change_value(self):
        pred = np.array([[1.0], [0.0]])
        target = np.array([[0.0], [0.0]])
        loss = MeanSquaredError()
        uniform = loss.value(pred, target)
        weighted = loss.value(pred, target, np.array([1.0, 0.0]))
        assert weighted > uniform  # all mass on the erroneous sample

    def test_bad_weight_shape_raises(self):
        with pytest.raises(ValueError):
            MeanSquaredError().value(np.ones((2, 1)), np.ones((2, 1)),
                                     np.ones(3))


class TestHuber:
    def test_quadratic_inside_delta(self):
        loss = HuberLoss(delta=1.0)
        pred, target = np.array([[0.5]]), np.array([[0.0]])
        assert loss.value(pred, target) == pytest.approx(0.125)

    def test_linear_outside_delta(self):
        loss = HuberLoss(delta=1.0)
        pred, target = np.array([[3.0]]), np.array([[0.0]])
        assert loss.value(pred, target) == pytest.approx(2.5)

    def test_grad_clipped(self):
        loss = HuberLoss(delta=1.0)
        grad = loss.grad(np.array([[10.0]]), np.array([[0.0]]))
        assert grad[0, 0] == pytest.approx(1.0)  # clipped to delta, n=1

    def test_grad_matches_numeric(self):
        rng = np.random.default_rng(1)
        pred = rng.normal(scale=2.0, size=(5, 2))
        target = rng.normal(size=(5, 2))
        loss = HuberLoss(delta=1.0)
        numeric = numeric_grad(lambda: loss.value(pred, target), pred)
        np.testing.assert_allclose(loss.grad(pred, target), numeric, atol=1e-4)

    def test_invalid_delta_raises(self):
        with pytest.raises(ValueError):
            HuberLoss(delta=0)


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_near_zero(self):
        logits = np.array([[20.0, -20.0]])
        assert SoftmaxCrossEntropy().value(logits, np.array([0])) < 1e-6

    def test_uniform_logits_log_c(self):
        logits = np.zeros((1, 4))
        assert SoftmaxCrossEntropy().value(logits, np.array([2])) == (
            pytest.approx(np.log(4))
        )

    def test_accepts_hard_and_soft_targets(self):
        logits = np.array([[1.0, 2.0], [0.5, 0.5]])
        loss = SoftmaxCrossEntropy()
        hard = loss.value(logits, np.array([1, 0]))
        soft = loss.value(logits, np.array([[0.0, 1.0], [1.0, 0.0]]))
        assert hard == pytest.approx(soft)

    def test_grad_is_softmax_minus_target(self):
        logits = np.array([[0.0, 0.0]])
        grad = SoftmaxCrossEntropy().grad(logits, np.array([0]))
        np.testing.assert_allclose(grad, [[-0.5, 0.5]])

    def test_grad_matches_numeric(self):
        rng = np.random.default_rng(2)
        logits = rng.normal(size=(4, 3))
        target = rng.dirichlet(np.ones(3), size=4)
        loss = SoftmaxCrossEntropy()
        numeric = numeric_grad(lambda: loss.value(logits, target), logits)
        np.testing.assert_allclose(loss.grad(logits, target), numeric,
                                   atol=1e-5)

    def test_stable_for_extreme_logits(self):
        logits = np.array([[1e4, -1e4]])
        value = SoftmaxCrossEntropy().value(logits, np.array([0]))
        assert np.isfinite(value)
