"""Weighted-loss behaviour shared across loss functions."""

import numpy as np
import pytest

from repro.nn.losses import HuberLoss, MeanSquaredError, SoftmaxCrossEntropy


@pytest.mark.parametrize("loss,pred,target", [
    (MeanSquaredError(), np.array([[1.0], [0.0]]), np.array([[0.0], [0.0]])),
    (HuberLoss(), np.array([[3.0], [0.0]]), np.array([[0.0], [0.0]])),
    (SoftmaxCrossEntropy(), np.array([[2.0, -2.0], [0.0, 0.0]]),
     np.array([1, 0])),
], ids=["mse", "huber", "xent"])
class TestWeightedLosses:
    def test_weights_normalised(self, loss, pred, target):
        """Scaling all weights by a constant must not change the loss."""
        w = np.array([1.0, 3.0])
        a = loss.value(pred, target, w)
        b = loss.value(pred, target, 10 * w)
        assert a == pytest.approx(b)

    def test_zero_weight_sample_ignored(self, loss, pred, target):
        w = np.array([1.0, 0.0])
        full = loss.value(pred, target, w)
        # Identical to evaluating only the first sample.
        solo = loss.value(pred[:1], target[:1])
        assert full == pytest.approx(solo)

    def test_grad_rows_scale_with_weights(self, loss, pred, target):
        w = np.array([1.0, 0.0])
        grad = loss.grad(pred, target, w)
        np.testing.assert_allclose(grad[1], 0.0, atol=1e-12)

    def test_all_zero_weights_raise(self, loss, pred, target):
        with pytest.raises(ValueError):
            loss.value(pred, target, np.zeros(2))
