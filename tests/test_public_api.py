"""Quality gates on the public API: exports resolve, docstrings exist.

These tests enforce the documentation contract: every module under
``repro`` has a module docstring, every name in an ``__all__`` resolves
and carries a docstring, and the top-level convenience surface stays
intact.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name for _, name, _ in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    )
]


def test_modules_discovered():
    assert len(MODULES) > 30


@pytest.mark.parametrize("module_name", MODULES)
def test_module_importable_and_documented(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("module_name", [
    "repro", "repro.nn", "repro.rl", "repro.core", "repro.crowd",
    "repro.inference", "repro.classifiers", "repro.datasets",
    "repro.metrics", "repro.active", "repro.baselines", "repro.harness",
    "repro.utils",
])
def test_all_exports_resolve_and_are_documented(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", [])
    assert exported, f"{module_name} exports nothing"
    for name in exported:
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert inspect.getdoc(obj), f"{module_name}.{name} undocumented"


def test_public_classes_have_documented_public_methods():
    from repro.core.framework import CrowdRL, LabellingFramework
    from repro.crowd.platform import CrowdPlatform
    from repro.inference.base import TruthInference

    for cls in (CrowdRL, LabellingFramework, CrowdPlatform, TruthInference):
        for name, member in inspect.getmembers(cls, inspect.isfunction):
            if name.startswith("_"):
                continue
            assert inspect.getdoc(member), f"{cls.__name__}.{name} undocumented"


def test_top_level_surface():
    expected = {
        "CrowdRL", "CrowdRLConfig", "LabellingFramework", "LabellingOutcome",
        "LabelSource", "CrowdPlatform", "AnnotatorPool", "BudgetManager",
        "CostModel", "LabelledDataset", "load_dataset", "DATASET_NAMES",
        "ClassificationReport", "evaluate_labels", "make_platform",
    }
    assert expected <= set(repro.__all__)


def test_version_string():
    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(p.isdigit() for p in parts)
