"""StateFeaturizer: public API, dirty-set caching, invalidation soundness.

The cache's correctness contract is that after *any* interleaving of
state mutations — answers recorded, answers amended (fault corruption),
quality estimates refreshed, classifier probabilities installed,
labelled sets updated, budget spent — the cached tensor equals a
from-scratch featurization of the same state.  The property test below
drives random interleavings through the real mutation entry points and
pins exactly that.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro import make_platform
from repro.core.featurizer import N_PAIR_FEATURES, StateFeaturizer
from repro.core.state import LabellingState
from repro.crowd.history import UNANSWERED
from repro.datasets.registry import load_dataset


def build_state(seed: int = 0) -> LabellingState:
    dataset = load_dataset("S12CP", scale=0.01, rng=seed)
    platform = make_platform(
        dataset, n_workers=3, n_experts=2, budget=1e9, rng=seed + 1
    )
    state = LabellingState(
        platform.history, platform.pool, platform.budget, mask_enriched=False
    )
    state.platform = platform  # for tests that drive mutations
    return state


def fresh_tensor(state: LabellingState) -> np.ndarray:
    """From-scratch featurization: a brand-new featurizer over the state."""
    return StateFeaturizer(state).features().copy()


class TestPublicApi:
    def test_exported_from_package_root(self):
        assert repro.StateFeaturizer is StateFeaturizer
        assert "StateFeaturizer" in dir(repro)

    def test_features_is_readonly_view(self):
        state = build_state()
        view = state.featurizer.features()
        assert view.shape == (
            state.history.n_objects, len(state.pool), N_PAIR_FEATURES
        )
        assert not view.flags.writeable
        with pytest.raises(ValueError):
            view[0, 0, 0] = 1.0

    def test_block_accessors_return_copies(self):
        state = build_state()
        obj = state.featurizer.object_features()
        obj[:] = -1.0  # snapshot: mutating it must not corrupt the cache
        assert not np.array_equal(
            state.featurizer.object_features(), obj
        )

    def test_mark_dirty_refreshes_touched_rows(self):
        state = build_state()
        before = state.featurizer.features().copy()
        state.platform.ask(0, 0)
        after = state.featurizer.features()
        assert not np.array_equal(after[0], before[0])
        assert np.array_equal(after, fresh_tensor(state))

    def test_invalidate_recomputes_everything(self):
        state = build_state()
        first = state.featurizer.features().copy()
        state.featurizer.invalidate()
        assert np.array_equal(state.featurizer.features(), first)

    def test_amend_invalidates_object_row(self):
        state = build_state()
        state.platform.ask(1, 2)
        state.featurizer.features()
        old_answer = int(state.history.matrix[1, 2])
        state.history.amend(1, 2, (old_answer + 1) % state.history.n_classes)
        assert np.array_equal(
            state.featurizer.features(), fresh_tensor(state)
        )

    def test_classifier_update_refreshes_clf_columns(self):
        state = build_state()
        state.featurizer.features()
        proba = np.full(
            (state.history.n_objects, state.history.n_classes),
            1.0 / state.history.n_classes,
        )
        proba[:, 0] = 0.9
        proba /= proba.sum(axis=1, keepdims=True)
        state.set_classifier_proba(proba)
        assert np.array_equal(
            state.featurizer.features(), fresh_tensor(state)
        )

    def test_annotator_loads_track_history(self):
        state = build_state()
        state.platform.ask(0, 1)
        state.platform.ask(2, 1)
        loads = state.featurizer.annotator_loads()
        assert loads[1] == 2
        assert not loads.flags.writeable


# ---------------------------------------------------------------------------
# Cache-invalidation property: random interleavings of real mutations.
# ---------------------------------------------------------------------------

#: (op_code, payload) pairs; payloads are reduced modulo whatever the op
#: needs, so every draw is valid against any state.
operations = st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 10 ** 6)),
    min_size=0,
    max_size=25,
)


def _apply(state: LabellingState, op: int, payload: int) -> None:
    history = state.history
    n, w = history.n_objects, len(state.pool)
    if op == 0:  # record a new answer (the common step mutation)
        obj, ann = (payload // w) % n, payload % w
        if not history.has_answered(obj, ann):
            state.platform.ask(obj, ann)
    elif op == 1:  # amend an existing answer (fault corruption path)
        answered = np.argwhere(history.matrix != UNANSWERED)
        if answered.size:
            obj, ann = answered[payload % len(answered)]
            history.amend(
                int(obj), int(ann), payload % history.n_classes
            )
    elif op == 2:  # refresh quality estimates from current truths
        truths = {i: payload % history.n_classes for i in range(n)}
        state.pool.update_estimates(history, truths)
    elif op == 3:  # install / replace classifier probabilities
        raw = 1.0 + ((payload + np.arange(n * history.n_classes))
                     % 7).astype(float).reshape(n, history.n_classes)
        state.set_classifier_proba(raw / raw.sum(axis=1, keepdims=True))
    elif op == 4:  # move objects into the labelled sets
        ids = np.arange(n)[: payload % (n + 1)]
        state.set_labelled(ids[::2], ids[1::2])
    elif op == 5:  # spend budget (global block must track it)
        state.budget.charge(float(payload % 5))


@given(ops=operations, seed=st.integers(0, 3))
@settings(max_examples=60, deadline=None)
def test_cached_tensor_equals_from_scratch_after_any_interleaving(ops, seed):
    state = build_state(seed)
    for op, payload in ops:
        _apply(state, op, payload)
        # Read between some mutations too: a cache that is only correct
        # when refreshed once at the end would pass a weaker test.
        if op % 2 == 0:
            state.featurizer.features()
    assert np.array_equal(state.featurizer.features(), fresh_tensor(state))
    expected_loads = (state.history.matrix != UNANSWERED).sum(axis=0)
    assert np.array_equal(state.featurizer.annotator_loads(), expected_loads)
