"""Tests for repro.inference.majority."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.inference.majority import MajorityVote, WeightedMajorityVote


class TestMajorityVote:
    def test_paper_example_1(self):
        """Example 1: answers {positive, negative, positive} -> positive."""
        answers = {0: {0: 1, 2: 0, 3: 1}}  # 1 = positive
        result = MajorityVote().infer(answers, 2, 4)
        assert result.labels[0] == 1

    def test_posterior_is_vote_share(self):
        answers = {0: {0: 1, 1: 1, 2: 0}}
        result = MajorityVote().infer(answers, 2, 3)
        np.testing.assert_allclose(result.posteriors[0], [1 / 3, 2 / 3])

    def test_tie_break_lowest(self):
        answers = {0: {0: 0, 1: 1}}
        assert MajorityVote(tie_break="lowest").infer(answers, 2, 2).labels[0] == 0

    def test_tie_break_random_is_seeded(self):
        answers = {0: {0: 0, 1: 1}}
        a = MajorityVote(tie_break="random", rng=0).infer(answers, 2, 2)
        b = MajorityVote(tie_break="random", rng=0).infer(answers, 2, 2)
        assert a.labels[0] == b.labels[0]

    def test_invalid_tie_break_raises(self):
        with pytest.raises(ConfigurationError):
            MajorityVote(tie_break="coin")

    def test_empty_answer_set_raises(self):
        with pytest.raises(ConfigurationError):
            MajorityVote().infer({0: {}}, 2, 1)

    def test_answer_out_of_range_raises(self):
        with pytest.raises(ConfigurationError):
            MajorityVote().infer({0: {0: 5}}, 2, 1)

    def test_multiclass(self):
        answers = {0: {0: 2, 1: 2, 2: 0}}
        assert MajorityVote().infer(answers, 3, 3).labels[0] == 2


class TestWeightedMajorityVote:
    def test_weights_override_count(self):
        answers = {0: {0: 0, 1: 1, 2: 1}}
        wmv = WeightedMajorityVote([5.0, 1.0, 1.0])
        assert wmv.infer(answers, 2, 3).labels[0] == 0

    def test_zero_weight_annotators_ignored(self):
        answers = {0: {0: 0, 1: 1}}
        wmv = WeightedMajorityVote([0.0, 1.0])
        assert wmv.infer(answers, 2, 2).labels[0] == 1

    def test_all_zero_weights_uniform_posterior(self):
        answers = {0: {0: 0}}
        wmv = WeightedMajorityVote([0.0])
        np.testing.assert_allclose(
            wmv.infer(answers, 2, 1).posteriors[0], [0.5, 0.5]
        )

    def test_weight_count_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            WeightedMajorityVote([1.0]).infer({0: {0: 0}}, 2, 2)

    def test_negative_weights_raise(self):
        with pytest.raises(ConfigurationError):
            WeightedMajorityVote([-1.0, 1.0])

    def test_confidence_accessor(self):
        answers = {0: {0: 1, 1: 1, 2: 0}}
        result = MajorityVote().infer(answers, 2, 3)
        assert result.confidence(0) == pytest.approx(2 / 3)
