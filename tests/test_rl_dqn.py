"""Tests for repro.rl.qnetwork and repro.rl.dqn."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.rl.dqn import DQNAgent, DQNConfig
from repro.rl.qnetwork import QNetwork


class TestQNetwork:
    def test_predict_shape(self):
        qnet = QNetwork(4, rng=0)
        assert qnet.predict(np.ones((6, 4))).shape == (6,)

    def test_predict_single_row(self):
        qnet = QNetwork(4, rng=0)
        assert qnet.predict(np.ones(4)).shape == (1,)

    def test_target_starts_synced(self):
        qnet = QNetwork(4, rng=0)
        x = np.random.default_rng(0).normal(size=(5, 4))
        np.testing.assert_allclose(qnet.predict(x), qnet.predict_target(x))

    def test_target_lags_until_sync(self):
        qnet = QNetwork(3, rng=0)
        x = np.random.default_rng(0).normal(size=(8, 3))
        for _ in range(20):
            qnet.train_on_targets(x, np.ones(8))
        assert not np.allclose(qnet.predict(x), qnet.predict_target(x))
        qnet.sync_target()
        np.testing.assert_allclose(qnet.predict(x), qnet.predict_target(x))

    def test_train_regresses_toward_targets(self):
        qnet = QNetwork(2, learning_rate=0.01, rng=0)
        x = np.array([[1.0, 0.0], [0.0, 1.0]])
        targets = np.array([2.0, -1.0])
        for _ in range(500):
            qnet.train_on_targets(x, targets)
        np.testing.assert_allclose(qnet.predict(x), targets, atol=0.2)

    def test_shape_mismatch_raises(self):
        qnet = QNetwork(2, rng=0)
        with pytest.raises(ConfigurationError):
            qnet.train_on_targets(np.ones((3, 2)), np.ones(2))

    def test_weight_roundtrip(self):
        a = QNetwork(3, rng=0)
        b = QNetwork(3, rng=1)
        x = np.random.default_rng(2).normal(size=(4, 3))
        b.set_weights(a.get_weights())
        np.testing.assert_allclose(a.predict(x), b.predict(x))


class TestDQNConfig:
    def test_defaults_valid(self):
        DQNConfig(n_features=5)

    def test_invalid_gamma(self):
        with pytest.raises(ConfigurationError):
            DQNConfig(n_features=5, gamma=0.0)

    def test_invalid_features(self):
        with pytest.raises(ConfigurationError):
            DQNConfig(n_features=0)

    def test_invalid_sync(self):
        with pytest.raises(ConfigurationError):
            DQNConfig(n_features=3, target_sync_every=0)


class TestDQNAgent:
    def make_agent(self, **kwargs):
        defaults = dict(n_features=3, hidden=(8,), batch_size=8,
                        min_buffer_for_training=8)
        defaults.update(kwargs)
        return DQNAgent(DQNConfig(**defaults), rng=0)

    def test_no_training_below_min_buffer(self):
        agent = self.make_agent()
        agent.remember(np.ones(3), 1.0, None, True)
        assert agent.train_step() is None

    def test_trains_once_buffer_filled(self):
        agent = self.make_agent()
        for i in range(10):
            agent.remember(np.full(3, i / 10), 1.0, None, True)
        assert agent.train_step() is not None
        assert agent.train_steps == 1

    def test_learns_to_rank_rewarding_actions(self):
        """Terminal bandit: feature [1,...] pays 1, feature [0,...] pays 0."""
        agent = self.make_agent()
        rng = np.random.default_rng(0)
        for _ in range(200):
            good = rng.random() < 0.5
            feats = np.array([1.0, 0.0, 0.0]) if good else np.zeros(3)
            agent.remember(feats, 1.0 if good else 0.0, None, True)
        agent.train(300)
        q = agent.q_values(np.array([[1.0, 0.0, 0.0], [0.0, 0.0, 0.0]]))
        assert q[0] > q[1] + 0.3

    def test_bootstrap_uses_next_features(self):
        """Non-terminal transitions add the discounted next max to targets."""
        agent = self.make_agent(gamma=1.0, min_buffer_for_training=4,
                                batch_size=8, learning_rate=0.01,
                                target_sync_every=10)
        nxt = np.array([[0.0, 1.0, 0.0]])
        # Make the next-state action genuinely valuable first.
        for _ in range(50):
            agent.remember(nxt[0], 2.0, None, True)
        agent.train(400)
        next_value = float(agent.qnet.predict_target(nxt)[0])
        assert next_value > 1.0
        # A non-terminal transition into that state should now target
        # reward + next_value, i.e. noticeably above its raw reward.
        start = np.array([1.0, 1.0, 1.0])
        for _ in range(50):
            agent.remember(start, 0.0, nxt, False)
        agent.train(600)
        assert float(agent.q_values(start[None, :])[0]) > 0.5

    def test_feature_width_validated(self):
        agent = self.make_agent()
        with pytest.raises(ConfigurationError):
            agent.remember(np.ones(4), 1.0, None, True)
        with pytest.raises(ConfigurationError):
            agent.remember(np.ones(3), 1.0, np.ones((2, 4)), False)

    def test_weight_transfer_between_agents(self):
        a = self.make_agent()
        b = self.make_agent()
        x = np.random.default_rng(1).normal(size=(4, 3))
        b.set_weights(a.get_weights())
        np.testing.assert_allclose(a.q_values(x), b.q_values(x))

    def test_prioritized_variant_trains(self):
        agent = DQNAgent(
            DQNConfig(n_features=3, hidden=(8,), batch_size=8,
                      min_buffer_for_training=8, prioritized=True),
            rng=0,
        )
        for i in range(20):
            agent.remember(np.full(3, i / 20), float(i % 2), None, True)
        assert agent.train_step() is not None
