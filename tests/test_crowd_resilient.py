"""Tests for the resilient collection layer (repro.crowd.resilient)."""

import logging

import numpy as np
import pytest

from repro.core.state import LabellingState
from repro.crowd.compose import wrap
from repro.crowd.cost import BudgetManager
from repro.crowd.faults import FaultModel
from repro.crowd.platform import CrowdPlatform
from repro.crowd.resilient import (
    CollectorStats,
    ResiliencePolicy,
    ResilientCollector,
)
from repro.datasets.synthetic import make_blobs
from repro.exceptions import CollectionFailedError, ConfigurationError
from repro.harness.experiment import (
    FRAMEWORK_NAMES,
    ExperimentSetting,
    ExperimentSpec,
    run_experiment,
)

from conftest import build_pool


def make_stack(budget=500.0, seed=7, policy=None, collector_rng=0,
               **fault_kwargs):
    """dataset -> platform -> UnreliablePlatform -> ResilientCollector."""
    dataset = make_blobs(40, 6, separation=3.0, name="t", rng=seed)
    pool = build_pool(seed=seed)
    platform = CrowdPlatform(dataset.labels, pool, BudgetManager(budget))
    collector = wrap(
        platform,
        faults=FaultModel(len(pool), **fault_kwargs),
        resilient=True,
        policy=policy,
        resilience_seed=collector_rng,
    )
    return collector, platform


class TestDeprecatedConstruction:
    def test_direct_construction_warns(self):
        dataset = make_blobs(20, 6, separation=3.0, name="t", rng=0)
        pool = build_pool(seed=0)
        platform = CrowdPlatform(dataset.labels, pool, BudgetManager(100.0))
        with pytest.warns(DeprecationWarning, match="repro.crowd.wrap"):
            ResilientCollector(platform, rng=2)

    def test_wrap_constructs_without_warning(self, recwarn):
        collector, _ = make_stack()
        assert isinstance(collector, ResilientCollector)
        deprecations = [w for w in recwarn.list
                        if issubclass(w.category, DeprecationWarning)]
        assert deprecations == []


class TestPolicyValidation:
    @pytest.mark.parametrize("kwargs", [
        {"max_retries": -1},
        {"backoff_factor": 0.5},
        {"backoff_jitter": 2.0},
        {"failure_threshold": 0.0},
        {"min_attempts": 0},
    ])
    def test_bad_policy_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ResiliencePolicy(**kwargs)


class TestRetry:
    def test_timeouts_are_retried_then_succeed(self):
        # Annotator 0 times out sometimes; retries should still land most
        # answers on annotator 0 rather than reassigning.
        collector, platform = make_stack(timeout=[0.4, 0.0, 0.0, 0.0])
        records = collector.ask_batch([(i, [0]) for i in range(20)])
        assert collector.stats.retries > 0
        assert any(r.annotator_id == 0 for r in records)

    def test_backoff_accumulates_simulated_wait(self):
        collector, _ = make_stack(timeout=[0.6, 0.0, 0.0, 0.0])
        collector.ask_batch([(i, [0]) for i in range(20)])
        assert collector.stats.simulated_wait > 0.0

    def test_deterministic_given_seeds(self):
        a, _ = make_stack(timeout=0.3)
        b, _ = make_stack(timeout=0.3)
        ra = a.ask_batch([(i, [0, 1, 2, 3]) for i in range(15)])
        rb = b.ask_batch([(i, [0, 1, 2, 3]) for i in range(15)])
        assert ra == rb
        assert a.stats == b.stats


class TestReassignment:
    def test_unavailable_annotator_reassigned(self):
        collector, _ = make_stack(
            abandon=[1.0, 0.0, 0.0, 0.0],
            policy=ResiliencePolicy(quarantine_enabled=False),
        )
        records = collector.ask_batch([(i, [0]) for i in range(10)])
        assert len(records) == 10
        assert all(r.annotator_id != 0 for r in records)
        assert collector.stats.reassignments >= 10

    def test_collection_failure_when_everyone_faults(self):
        collector, _ = make_stack(abandon=1.0)
        with pytest.raises(CollectionFailedError):
            collector.ask(0, 0)
        assert collector.stats.gave_up == 1

    def test_batch_never_raises_on_faults(self):
        collector, _ = make_stack(abandon=1.0)
        records = collector.ask_batch([(i, [0, 1, 2, 3]) for i in range(5)])
        assert records == []
        assert collector.stats.gave_up > 0

    def test_ask_batch_mixed_fault_outcomes(self):
        """One batch, three fault kinds: retry, silent corrupt, reassign.

        Annotator 0 times out (retried on the spot), annotator 1 corrupts
        silently (the bad answer is recorded as a normal one), annotator 2
        is in a permanent outage (every request reassigned away);
        annotator 3 is honest.  The batch must absorb all three at once.
        """
        collector, platform = make_stack(
            timeout=[0.5, 0.0, 0.0, 0.0],
            corrupt=[0.0, 1.0, 0.0, 0.0],
            offline=[0.0, 0.0, 1.0, 0.0],
            policy=ResiliencePolicy(quarantine_enabled=False),
        )
        assignments = [(i, [0, 1, 2, 3]) for i in range(8)]
        records = collector.ask_batch(assignments)
        # Timeouts on annotator 0 were retried rather than dropped.
        assert collector.stats.retries > 0
        assert collector.stats.faults["timeout"] > 0
        # The offline annotator never produced an answer; its requests
        # were reassigned to someone who did (the collector buckets
        # offline outages under the 'unavailable' fault category).
        assert collector.stats.faults["unavailable"] > 0
        assert collector.stats.reassignments > 0
        assert all(r.annotator_id != 2 for r in records)
        # Corrupt answers are indistinguishable from honest ones to the
        # collector: they land on the books like any record.
        corrupt_records = [r for r in records if r.annotator_id == 1]
        assert corrupt_records
        for record in corrupt_records:
            assert platform.history.matrix[record.object_id, 1] == \
                record.answer
        # Every object still got answers despite the mixed outcomes.
        answered_objects = {r.object_id for r in records}
        assert answered_objects == set(range(8))


class TestQuarantine:
    def quarantining_collector(self):
        return make_stack(
            abandon=[1.0, 0.0, 0.0, 0.0],
            policy=ResiliencePolicy(min_attempts=3, failure_threshold=0.5),
        )

    def test_failure_rate_triggers_quarantine(self, caplog):
        collector, _ = self.quarantining_collector()
        with caplog.at_level(logging.WARNING, "repro.crowd.resilient"):
            collector.ask_batch([(i, [0]) for i in range(10)])
        assert 0 in collector.quarantined_annotators()
        assert collector.stats.quarantine_events
        assert any("quarantined annotator 0" in r.message
                   for r in caplog.records)

    def test_quarantined_annotator_not_routed_to(self):
        collector, platform = self.quarantining_collector()
        collector.ask_batch([(i, [0]) for i in range(20)])
        # After quarantine no further *attempts* hit annotator 0: the
        # failure count stops growing once the breaker opens.
        events = collector.stats.quarantine_events
        assert len(events) == 1
        _, _, attempts_at_quarantine = events[0]
        assert collector._attempts[0] == attempts_at_quarantine

    def test_state_masks_quarantined_columns(self):
        collector, platform = self.quarantining_collector()
        collector.ask_batch([(i, [0]) for i in range(10)])
        state = LabellingState(
            platform.history, platform.pool, platform.budget,
            unavailable=collector.quarantined_annotators,
        )
        mask = state.action_mask()
        assert not mask[:, 0].any()
        assert mask[:, 1].any()

    def test_stats_state_round_trip(self):
        collector, _ = self.quarantining_collector()
        collector.ask_batch([(i, [0, 1]) for i in range(10)])
        state = collector.state_dict()
        fresh, _ = self.quarantining_collector()
        fresh.load_state_dict(state)
        assert fresh.quarantined_annotators() == collector.quarantined_annotators()
        assert fresh.stats == collector.stats
        assert CollectorStats.from_dict(
            collector.stats.as_dict()) == collector.stats


class TestRateZeroEquivalence:
    """Acceptance: rate-0 faults + collector reproduce the seed run exactly."""

    def test_batch_collection_identical(self):
        collector, _ = make_stack(seed=11)
        _, bare = make_stack(seed=11)
        assignments = [(i, [3, 0, 1, 2]) for i in range(12)]
        assert collector.ask_batch(assignments) == bare.ask_batch(assignments)

    @pytest.mark.parametrize("name", FRAMEWORK_NAMES)
    def test_frameworks_reproduce_seed_metrics(self, name):
        setting = ExperimentSetting("S12CP", scale=0.02, seed=3)
        plain = run_experiment(name, setting, pretrain=False)
        guarded = run_experiment(
            name, setting, ExperimentSpec(
                faults=FaultModel(
                    setting.n_workers + setting.n_experts, rng=0),
                resilient=True,
            ), pretrain=False,
        )
        assert guarded.report == plain.report
        assert np.array_equal(guarded.outcome.final_labels,
                              plain.outcome.final_labels)
        assert guarded.outcome.spent == plain.outcome.spent

    def test_crowdrl_with_pretraining_reproduces(self):
        from repro.harness.experiment import clear_pretrained_policies

        setting = ExperimentSetting("S12CP", scale=0.02, seed=5)
        clear_pretrained_policies()
        plain = run_experiment("CrowdRL", setting)
        clear_pretrained_policies()
        guarded = run_experiment("CrowdRL", setting,
                                 ExperimentSpec(faults=0.0, resilient=True))
        assert guarded.report == plain.report
