"""Tests for repro.core.environment."""

import numpy as np
import pytest

from repro.core.config import CrowdRLConfig
from repro.core.environment import Environment
from repro.crowd.cost import BudgetManager
from repro.crowd.platform import CrowdPlatform
from repro.datasets.synthetic import make_blobs
from repro.exceptions import ConfigurationError

from conftest import build_pool


def make_env(n_objects=60, separation=3.0, seed=0, **config_kwargs):
    dataset = make_blobs(n_objects, 6, separation=separation, rng=seed)
    pool = build_pool(worker_accs=(0.75, 0.7, 0.65), expert_accs=(0.97,),
                      seed=seed)
    platform = CrowdPlatform(dataset.labels, pool, BudgetManager(10_000.0))
    config = CrowdRLConfig(**config_kwargs)
    env = Environment(platform, dataset.features, config,
                      rng=np.random.default_rng(seed))
    return env, dataset, platform


class TestInferTruths:
    def test_empty_history_empty_result(self):
        env, _, _ = make_env()
        result = env.infer_truths()
        assert result.labels == {}
        assert env.truths == {}

    def test_small_sample_falls_back_to_mv(self):
        env, _, platform = make_env()
        platform.ask_batch([(0, [0, 1, 2])])
        env.infer_truths()
        assert 0 in env.truths
        assert env.classifier is None  # below min_labels_for_classifier

    def test_joint_inference_with_enough_labels(self):
        env, dataset, platform = make_env()
        platform.ask_batch((i, [0, 1, 2]) for i in range(30))
        env.infer_truths()
        assert len(env.truths) == 30
        assert env.classifier is not None
        truth_acc = np.mean([
            env.truths[i] == dataset.labels[i] for i in range(30)
        ])
        assert truth_acc > 0.7

    def test_pm_mode_skips_classifier(self):
        env, _, platform = make_env(inference_method="pm")
        platform.ask_batch((i, [0, 1, 2]) for i in range(30))
        env.infer_truths()
        assert len(env.truths) == 30
        assert env.classifier is None

    def test_quality_estimates_updated(self):
        env, _, platform = make_env()
        before = platform.pool.estimated_qualities().copy()
        platform.ask_batch((i, [0, 1, 2, 3]) for i in range(40))
        env.infer_truths()
        after = platform.pool.estimated_qualities()
        assert not np.allclose(before, after)
        # The expert should be estimated as the best annotator.
        assert after.argmax() == 3


class TestEnrichment:
    def test_no_enrichment_below_truth_threshold(self):
        env, _, platform = make_env(min_truths_for_enrichment=20)
        platform.ask_batch((i, [0, 1, 2]) for i in range(10))
        env.infer_truths()
        assert env.train_and_enrich() == []

    def test_enriches_confident_objects(self):
        env, dataset, platform = make_env(min_truths_for_enrichment=20)
        platform.ask_batch((i, [0, 1, 2, 3]) for i in range(30))
        env.infer_truths()
        newly = env.train_and_enrich()
        assert newly  # separable data: classifier confident on the rest
        for object_id in newly:
            assert object_id not in env.truths
        enriched_acc = np.mean([
            env.enriched[i] == dataset.labels[i] for i in newly
        ])
        assert enriched_acc > 0.8

    def test_nonsticky_recomputes(self):
        env, _, platform = make_env(min_truths_for_enrichment=20,
                                    sticky_enrichment=False)
        platform.ask_batch((i, [0, 1, 2, 3]) for i in range(30))
        env.infer_truths()
        env.train_and_enrich()
        env.enriched[999] = 1  # plant a stale entry (fake id is fine)
        env.train_and_enrich()
        assert 999 not in env.enriched

    def test_sticky_keeps_previous(self):
        env, _, platform = make_env(min_truths_for_enrichment=20,
                                    sticky_enrichment=True)
        platform.ask_batch((i, [0, 1, 2, 3]) for i in range(30))
        env.infer_truths()
        first = set(env.train_and_enrich())
        again = set(env.train_and_enrich())
        assert first.isdisjoint(again)
        assert first <= set(env.enriched)

    def test_single_class_truths_skip_enrichment(self):
        env, _, platform = make_env()
        platform.ask_batch((i, [3]) for i in range(25))  # expert answers
        env.infer_truths()
        env.truths = {i: 0 for i in range(25)}  # force single class
        assert env.train_and_enrich() == []

    def test_hard_margin_blocks_enrichment(self):
        env, _, platform = make_env(separation=0.1,
                                    min_truths_for_enrichment=20,
                                    enrichment_margin=0.95)
        platform.ask_batch((i, [0, 1, 2]) for i in range(30))
        env.infer_truths()
        assert env.train_and_enrich() == []


class TestViews:
    def test_classifier_proba_none_before_training(self):
        env, _, _ = make_env()
        assert env.classifier_proba() is None

    def test_current_labels_truths_override_enriched(self):
        env, _, _ = make_env()
        env.enriched = {0: 1}
        env.truths = {0: 0}
        assert env.current_labels()[0] == 0

    def test_feature_count_mismatch_raises(self):
        dataset = make_blobs(10, 4, rng=0)
        pool = build_pool()
        platform = CrowdPlatform(dataset.labels, pool, BudgetManager(10.0))
        with pytest.raises(ConfigurationError):
            Environment(platform, dataset.features[:5], CrowdRLConfig())
