"""Tests for the serve-safety analyzer (REPRO019-024).

Covers the six rules' hit/silent fixture pairs, the clean-tree
acceptance run over ``src/repro``, baseline round-tripping with line
shifts, ``noqa`` and keyed ``blocking[...]`` exemption suppression, the
lint/flow shared ``--select`` range parser, and the ``--stats``
summary mode.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.cli import main as analysis_main
from repro.analysis.flow import FLOW_RULES, analyze_paths
from repro.analysis.lint.engine import expand_rule_ranges
from repro.exceptions import ConfigurationError

FIXTURES = Path(__file__).parent / "analysis_fixtures" / "flow"
SRC = Path(__file__).parents[1] / "src"


def rule_ids(findings):
    """The multiset of rule ids in ``findings`` as a sorted list."""
    return sorted(f.rule_id for f in findings)


# ----------------------------------------------------------------------
# Per-rule fixtures: hits fire, clean forms stay silent
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "fixture, rule_id, n_hits",
    [
        ("serve_future_leak.py", "REPRO019", 2),
        ("serve_blocking.py", "REPRO020", 2),
        ("serve_tenant_state.py", "REPRO021", 2),
        ("serve_scheduling.py", "REPRO022", 3),
        ("serve_generator.py", "REPRO023", 3),
        ("serve_delivery_alias.py", "REPRO024", 2),
    ],
)
def test_rule_fires_only_on_hits(fixture, rule_id, n_hits):
    """Every serve rule reports its hits and nothing from clean code.

    The analysis runs with *all* flow rules enabled, so this also pins
    that no serve fixture trips an unrelated rule (and vice versa).
    """
    findings = analyze_paths([str(FIXTURES / fixture)])
    assert rule_ids(findings) == [rule_id] * n_hits
    source = (FIXTURES / fixture).read_text()
    hit_lines = {f.line for f in findings}
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "(silent)" in line:
            assert not hit_lines & {lineno, lineno + 1, lineno + 2}


# ----------------------------------------------------------------------
# The shipped tree: the ISSUE acceptance command
# ----------------------------------------------------------------------
def test_shipped_tree_is_serve_clean():
    """Zero unbaselined REPRO019-024 findings against the empty baseline."""
    assert analysis_main(["flow", str(SRC / "repro"),
                          "--select", "REPRO019-REPRO024",
                          "--fail-on-new"]) == 0


def test_shipped_baseline_is_empty():
    """Genuine serve findings were fixed, not baselined."""
    baseline = Path(__file__).parents[1] / ".repro-flow-baseline.json"
    assert json.loads(baseline.read_text())["findings"] == []


# ----------------------------------------------------------------------
# Suppression: noqa and the keyed blocking exemption
# ----------------------------------------------------------------------
_LEAKY_OWNER = (
    '"""Doc."""\n\n\n'
    "def episode(dataset):\n"
    '    """Doc."""\n'
    "    records = yield dataset\n"
    "    return records\n\n\n"
    "class Owner:\n"
    '    """Doc."""\n\n'
    "    def start(self, dataset):\n"
    '        """Doc."""\n'
    "        self._episode = episode(dataset){annotation}\n"
)

_SLEEPY_LOOP = (
    '"""Doc."""\n\n'
    "import time\n\n\n"
    "def pause(delay):\n"
    '    """Doc."""\n'
    "{annotation}"
    "    time.sleep(delay)\n"
)


def test_unclosed_generator_fires(tmp_path):
    module = tmp_path / "serve_owner.py"
    module.write_text(_LEAKY_OWNER.format(annotation=""))
    findings = analyze_paths([str(module)], select=["REPRO023"])
    assert rule_ids(findings) == ["REPRO023"]
    assert findings[0].line == 15  # anchored at the parking assignment


def test_noqa_suppresses_repro023(tmp_path):
    module = tmp_path / "serve_owner.py"
    module.write_text(_LEAKY_OWNER.format(
        annotation="  # repro: noqa REPRO023"))
    assert analyze_paths([str(module)], select=["REPRO023"]) == []


def test_unannotated_sleep_fires(tmp_path):
    module = tmp_path / "serve_pause.py"
    module.write_text(_SLEEPY_LOOP.format(annotation=""))
    findings = analyze_paths([str(module)], select=["REPRO020"])
    assert rule_ids(findings) == ["REPRO020"]
    assert "time.sleep" in findings[0].message


def test_keyed_blocking_annotation_waives_repro020(tmp_path):
    module = tmp_path / "serve_pause.py"
    module.write_text(_SLEEPY_LOOP.format(
        annotation="    # repro: blocking[time.sleep] — demo pacing\n"))
    assert analyze_paths([str(module)], select=["REPRO020"]) == []


def test_mismatched_blocking_key_does_not_waive(tmp_path):
    """An annotation for a different call never excuses this one."""
    module = tmp_path / "serve_pause.py"
    module.write_text(_SLEEPY_LOOP.format(
        annotation="    # repro: blocking[open] — wrong key\n"))
    findings = analyze_paths([str(module)], select=["REPRO020"])
    assert rule_ids(findings) == ["REPRO020"]


# ----------------------------------------------------------------------
# Baseline ratchet over the new rules
# ----------------------------------------------------------------------
def test_serve_baseline_round_trip_survives_line_shifts(tmp_path, capsys):
    """Accepted REPRO023 findings stay waived as the file moves around."""
    module = tmp_path / "serve_owner.py"
    module.write_text(_LEAKY_OWNER.format(annotation=""))
    baseline = tmp_path / ".repro-flow-baseline.json"
    assert analysis_main(["flow", str(module), "--write-baseline",
                          str(baseline)]) == 0
    capsys.readouterr()

    assert analysis_main(["flow", str(module), "--fail-on-new"]) == 0
    assert "1 baselined" in capsys.readouterr().out

    # Shift the class down: the line-free key still matches.
    module.write_text(
        '"""Doc."""\n\n\n'
        "def helper():\n"
        '    """Doc."""\n'
        "    return 1\n\n\n"
        + _LEAKY_OWNER.format(annotation="").split("\n", 3)[3]
    )
    assert analysis_main(["flow", str(module), "--fail-on-new"]) == 0
    capsys.readouterr()

    # A genuinely new serve hazard still fails the ratchet.
    module.write_text(
        module.read_text()
        + "\n\ndef starve(dataset, handle):\n"
        '    """Doc."""\n'
        "    run = episode(dataset)\n"
        "    for request in run:\n"
        "        handle(request)\n"
    )
    assert analysis_main(["flow", str(module), "--fail-on-new",
                          "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == 1
    assert "advanced by iteration" in payload["findings"][0]["message"]
    assert payload["baselined_count"] == 1


# ----------------------------------------------------------------------
# The shared --select range parser: lint/flow parity
# ----------------------------------------------------------------------
def test_expand_rule_ranges_short_form():
    known = [f"REPRO{i:03d}" for i in range(19, 25)]
    assert expand_rule_ranges(["REPRO019-024"], known) == known
    with pytest.raises(ConfigurationError):
        expand_rule_ranges(["REPRO024-REPRO019"], known)


def test_lint_select_accepts_ranges():
    """The lint CLI shares the flow CLI's range syntax."""
    assert analysis_main(["lint", str(SRC / "repro"),
                          "--select", "REPRO001-REPRO006"]) == 0


def test_lint_select_range_usage_errors_exit_2(capsys):
    target = str(SRC / "repro" / "serve" / "clock.py")
    assert analysis_main(["lint", target,
                          "--select", "REPRO006-REPRO001"]) == 2
    assert "empty rule range" in capsys.readouterr().err
    assert analysis_main(["lint", target,
                          "--select", "REPRO001-REPRO099"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_flow_serve_range_selects_exactly_the_new_rules():
    findings = analyze_paths([str(FIXTURES)], select=["REPRO019-REPRO024"])
    assert set(rule_ids(findings)) == {
        f"REPRO{i:03d}" for i in range(19, 25)
    }


# ----------------------------------------------------------------------
# --stats: the per-rule hit-count summary mode
# ----------------------------------------------------------------------
def test_stats_text_includes_zero_rows(capsys):
    code = analysis_main(["flow", str(FIXTURES / "serve_blocking.py"),
                          "--no-baseline", "--stats",
                          "--select", "REPRO019-REPRO024"])
    assert code == 1
    out = capsys.readouterr().out
    assert "REPRO020: 2" in out
    assert "REPRO019: 0" in out  # zero rows show which rules ran


def test_stats_json_payload(capsys):
    code = analysis_main(["flow", str(FIXTURES / "serve_scheduling.py"),
                          "--no-baseline", "--stats", "--format", "json",
                          "--select", "REPRO019-REPRO024"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["stats"]["REPRO022"] == 3
    assert payload["stats"]["REPRO021"] == 0
    assert sorted(payload["stats"]) == [
        f"REPRO{i:03d}" for i in range(19, 25)
    ]


def test_flow_rules_table_lists_serve_rules():
    """The registry covers REPRO007 through REPRO024."""
    assert {f"REPRO{i:03d}" for i in range(19, 25)} <= set(FLOW_RULES)
