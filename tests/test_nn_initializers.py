"""Tests for repro.nn.initializers."""

import numpy as np
import pytest

from repro.nn.initializers import he_init, xavier_init, zeros_init


class TestXavier:
    def test_shape(self):
        assert xavier_init(5, 3, rng=0).shape == (5, 3)

    def test_within_glorot_limit(self):
        w = xavier_init(40, 60, rng=0)
        limit = np.sqrt(6.0 / (40 + 60))
        assert np.abs(w).max() <= limit

    def test_roughly_zero_mean(self):
        w = xavier_init(100, 100, rng=0)
        assert abs(w.mean()) < 0.01

    def test_deterministic(self):
        np.testing.assert_array_equal(
            xavier_init(4, 4, rng=3), xavier_init(4, 4, rng=3)
        )


class TestHe:
    def test_shape(self):
        assert he_init(5, 3, rng=0).shape == (5, 3)

    def test_std_matches_he_formula(self):
        w = he_init(200, 300, rng=0)
        assert w.std() == pytest.approx(np.sqrt(2.0 / 200), rel=0.05)

    def test_deterministic(self):
        np.testing.assert_array_equal(
            he_init(4, 4, rng=3), he_init(4, 4, rng=3)
        )


class TestZeros:
    def test_all_zero(self):
        assert not zeros_init(3, 2).any()
        assert zeros_init(3, 2).shape == (3, 2)
