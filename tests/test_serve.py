"""Tests for the online labelling service (repro.serve).

Three layers of guarantees, in the order the module docstrings promise
them:

* **Units** — the virtual event clock, the seeded latency model, and the
  FIFO annotator lease table behave deterministically on their own.
* **Bit-identity** — an async single-project run is *bit-identical* to
  the synchronous reference (the oracle), across a seed matrix and with
  faults in the chain, because the inner ``ask`` executes at submission
  and latency only delays visibility.
* **Multi-tenancy** — the engine drives 8+ concurrent projects on one
  shared pool, deterministically, with per-session budget attribution
  that reconciles exactly in the per-session metrics streams.
"""

import numpy as np
import pytest

import inspect

from repro.core.config import CrowdRLConfig
from repro.core.framework import CollectRequest, CrowdRL
from repro.crowd.cost import BudgetManager
from repro.crowd.platform import CrowdPlatform
from repro.crowd.pool import AnnotatorPool
from repro.datasets.registry import load_dataset
from repro.datasets.synthetic import make_blobs
from repro.exceptions import ConfigurationError
from repro.harness.experiment import (
    ExperimentSetting,
    ExperimentSpec,
    clear_pretrained_policies,
    run_experiment,
)
from repro.obs import load_summary
from repro.obs.report import budget_by_phase
from repro.serve import (
    AnnotatorLeases,
    AsyncPlatform,
    EventLoopCollector,
    LatencyModel,
    ServeEngine,
    VirtualClock,
)

from conftest import build_pool


# ----------------------------------------------------------------------
# Units: clock, latency, leases
# ----------------------------------------------------------------------
class TestVirtualClock:
    def test_pop_orders_by_due_then_submission(self):
        clock = VirtualClock()
        clock.push(2.0, "late")
        clock.push(1.0, "early-first")
        clock.push(1.0, "early-second")
        assert [clock.pop()[2] for _ in range(3)] == [
            "early-first", "early-second", "late",
        ]

    def test_pop_advances_now(self):
        clock = VirtualClock()
        clock.push(1.5, "a")
        assert clock.now == 0.0
        clock.pop()
        assert clock.now == 1.5

    def test_past_due_rejected(self):
        clock = VirtualClock()
        clock.push(1.0, "a")
        clock.pop()
        with pytest.raises(ConfigurationError):
            clock.push(0.5, "time travel")

    def test_pop_idle_rejected(self):
        with pytest.raises(ConfigurationError):
            VirtualClock().pop()

    def test_negative_start_rejected(self):
        with pytest.raises(ConfigurationError):
            VirtualClock(start=-1.0)


class TestLatencyModel:
    def test_deterministic_given_seed(self):
        a = LatencyModel(4, mean=2.0, jitter=0.5, rng=3)
        b = LatencyModel(4, mean=2.0, jitter=0.5, rng=3)
        assert [a.draw(j % 4) for j in range(40)] == \
            [b.draw(j % 4) for j in range(40)]

    def test_draws_stay_within_jitter_band(self):
        model = LatencyModel(2, mean=4.0, jitter=0.25, rng=0)
        draws = [model.draw(0) for _ in range(200)]
        assert all(3.0 <= d <= 5.0 for d in draws)

    def test_for_pool_gives_experts_longer_service(self):
        pool = build_pool()  # 3 workers at cost 1, 1 expert at cost 10
        model = LatencyModel.for_pool(pool, worker_latency=1.0, rng=0)
        means = model.means()
        assert list(means[:3]) == [1.0, 1.0, 1.0]
        assert means[3] == 3.0

    def test_state_round_trip(self):
        model = LatencyModel(3, rng=1)
        for j in range(10):
            model.draw(j % 3)
        clone = LatencyModel(3, rng=1)
        clone.load_state_dict(model.state_dict())
        assert [model.draw(j % 3) for j in range(10)] == \
            [clone.draw(j % 3) for j in range(10)]

    def test_bad_annotator_rejected(self):
        with pytest.raises(ConfigurationError):
            LatencyModel(2).draw(2)


class TestAnnotatorLeases:
    def test_fifo_queueing_on_one_annotator(self):
        leases = AnnotatorLeases(2)
        start1, due1 = leases.acquire(0, 2.0, now=0.0)
        start2, due2 = leases.acquire(0, 3.0, now=0.0)
        assert (start1, due1) == (0.0, 2.0)
        assert (start2, due2) == (2.0, 5.0)  # queued behind the first
        assert leases.total_wait == 2.0

    def test_parallel_annotators_do_not_queue(self):
        leases = AnnotatorLeases(2)
        _, due1 = leases.acquire(0, 2.0, now=0.0)
        start2, _ = leases.acquire(1, 2.0, now=0.0)
        assert start2 == 0.0
        assert leases.total_wait == 0.0
        assert due1 == 2.0

    def test_grant_counts_per_session(self):
        leases = AnnotatorLeases(3)
        leases.acquire(0, 1.0, now=0.0, session="a")
        leases.acquire(1, 1.0, now=0.0, session="a")
        leases.acquire(0, 1.0, now=0.0, session="b")
        assert leases.grant_counts() == {"a": 2, "b": 1}

    def test_bad_annotator_rejected(self):
        with pytest.raises(ConfigurationError):
            AnnotatorLeases(2).acquire(2, 1.0, now=0.0)


# ----------------------------------------------------------------------
# Async adapter mechanics: overlap, delivery, guards
# ----------------------------------------------------------------------
def make_async(budget=500.0, seed=7, **kwargs):
    dataset = make_blobs(40, 6, separation=3.0, name="t", rng=seed)
    pool = build_pool(seed=seed)
    platform = CrowdPlatform(dataset.labels, pool, BudgetManager(budget))
    clock = VirtualClock()
    adapter = AsyncPlatform(
        platform,
        # Jitter-free so service times are exact: workers 1s, expert 3s.
        latency=LatencyModel.for_pool(pool, worker_latency=1.0, jitter=0.0,
                                      rng=seed),
        clock=clock,
        **kwargs,
    )
    return adapter, platform, clock


class TestAsyncPlatform:
    def test_in_flight_answers_overlap_across_annotators(self):
        adapter, _, clock = make_async()
        first = adapter.ask_async(0, 0)
        second = adapter.ask_async(1, 1)
        assert adapter.in_flight == 2
        # Both annotators work concurrently: neither waits for the other,
        # so the batch finishes before the serial sum of service times.
        assert first.start == second.start == 0.0
        assert max(first.due, second.due) < first.service + second.service

    def test_same_annotator_queues_fifo(self):
        adapter, _, _ = make_async()
        first = adapter.ask_async(0, 0)
        second = adapter.ask_async(1, 0)
        assert second.start == first.due
        assert second.due == second.start + second.service

    def test_submission_time_charging(self):
        adapter, platform, _ = make_async()
        adapter.ask_async(0, 0)
        # The budget is charged and the answer recorded at submission,
        # before any event-loop delivery happens.
        assert platform.budget.spent == platform.pool[0].cost
        assert platform.history.has_answered(0, 0)

    def test_drain_returns_submission_order(self):
        adapter, _, _ = make_async()
        # Annotator 3 (expert) is slower than annotator 0, so delivery
        # order differs from submission order; drain() must restore it.
        slow = adapter.ask_async(0, 3)
        fast = adapter.ask_async(1, 0)
        assert fast.due < slow.due
        records = adapter.drain([slow, fast])
        assert records == [slow.record, fast.record]
        assert adapter.completed == 2

    def test_double_delivery_rejected(self):
        adapter, _, clock = make_async()
        pending = adapter.ask_async(0, 0)
        clock.pop()
        adapter.mark_delivered(pending)
        assert adapter.is_delivered(pending)
        with pytest.raises(ConfigurationError):
            adapter.mark_delivered(pending)

    def test_latency_size_mismatch_rejected(self):
        dataset = make_blobs(10, 6, separation=3.0, name="t", rng=0)
        pool = build_pool()
        platform = CrowdPlatform(
            dataset.labels, pool, BudgetManager(100.0))
        with pytest.raises(ConfigurationError):
            AsyncPlatform(platform, latency=LatencyModel(99),
                          clock=VirtualClock())

    def test_collector_requires_async_platform(self):
        dataset = make_blobs(10, 6, separation=3.0, name="t", rng=0)
        pool = build_pool()
        platform = CrowdPlatform(
            dataset.labels, pool, BudgetManager(100.0))
        with pytest.raises(ConfigurationError):
            EventLoopCollector(
                CrowdRL(CrowdRLConfig(), rng=0), dataset, platform)


# ----------------------------------------------------------------------
# Generator lifecycle: no dangling episode frames after faults
# ----------------------------------------------------------------------
class FaultyFramework:
    """Episode raises after its first batch lands, mid-protocol.

    ``episode()`` records every generator it hands out so tests can
    assert the frame was released after the abort.
    """

    name = "faulty"

    def __init__(self):
        self.frames = []

    def episode(self, dataset, platform):
        frame = self._episode(dataset, platform)
        self.frames.append(frame)
        return frame

    def _episode(self, dataset, platform):
        yield CollectRequest(assignments=((0, [0]),), phase="initial_sample")
        raise ValueError("annotation backend exploded")


class TestGeneratorLifecycle:
    """Fault-abort and shutdown paths must close the episode generator."""

    def test_faulted_collector_closes_episode_frame(self):
        adapter, _, clock = make_async()
        dataset = make_blobs(10, 6, separation=3.0, name="t", rng=0)
        framework = FaultyFramework()
        collector = EventLoopCollector(framework, dataset, adapter)
        collector.start()
        assert not collector.done
        assert inspect.getgeneratorstate(framework.frames[0]) == \
            inspect.GEN_SUSPENDED
        with pytest.raises(ValueError):
            _due, _seq, pending = clock.pop()
            adapter.mark_delivered(pending)
            collector.on_complete(pending)
        assert inspect.getgeneratorstate(framework.frames[0]) == \
            inspect.GEN_CLOSED

    def test_faulted_run_episode_async_closes_frame(self):
        from repro.serve.collector import run_episode_async

        adapter, _, _ = make_async()
        dataset = make_blobs(10, 6, separation=3.0, name="t", rng=0)
        framework = FaultyFramework()
        with pytest.raises(ValueError):
            run_episode_async(framework, dataset, adapter)
        assert inspect.getgeneratorstate(framework.frames[0]) == \
            inspect.GEN_CLOSED

    def test_engine_shutdown_closes_unfinished_sessions(self):
        pool = build_pool()
        engine = ServeEngine(
            pool,
            latency=LatencyModel.for_pool(pool, worker_latency=1.0,
                                          jitter=0.0, rng=0),
            max_active=1,
        )
        dataset = make_blobs(12, 6, separation=3.0, name="t", rng=0)
        faulty = FaultyFramework()
        queued = FaultyFramework()
        engine.add_project("p0", dataset, faulty, budget=200.0)
        engine.add_project("p1", dataset, queued, budget=200.0)
        with pytest.raises(ValueError):
            engine.run()
        # The faulted session's frame closed on its own abort path...
        assert inspect.getgeneratorstate(faulty.frames[0]) == \
            inspect.GEN_CLOSED
        # ...and the never-admitted session's frame closed at shutdown.
        assert inspect.getgeneratorstate(queued.frames[0]) == \
            inspect.GEN_CLOSED


# ----------------------------------------------------------------------
# Bit-identity: async single-project == sync oracle
# ----------------------------------------------------------------------
class TestAsyncSyncIdentity:
    """The acceptance matrix: served runs reproduce sync runs exactly."""

    @pytest.mark.parametrize("dataset", ["S12CP", "S3CP"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_served_run_is_bit_identical(self, dataset, seed):
        setting = ExperimentSetting(dataset, scale=0.02, seed=seed)
        clear_pretrained_policies()
        sync = run_experiment("CrowdRL", setting, pretrain=False)
        clear_pretrained_policies()
        served = run_experiment(
            "CrowdRL", setting, ExperimentSpec(serve=True), pretrain=False)
        assert served.report == sync.report
        assert served.outcome.spent == sync.outcome.spent
        assert served.outcome.iterations == sync.outcome.iterations
        assert np.array_equal(served.outcome.final_labels,
                              sync.outcome.final_labels)

    def test_served_run_with_faults_is_bit_identical(self):
        setting = ExperimentSetting("S12CP", scale=0.02, seed=4)
        sync = run_experiment(
            "CrowdRL", setting, ExperimentSpec(faults=0.1), pretrain=False)
        served = run_experiment(
            "CrowdRL", setting, ExperimentSpec(faults=0.1, serve=True),
            pretrain=False)
        assert served.report == sync.report
        assert served.outcome.spent == sync.outcome.spent
        assert np.array_equal(served.outcome.final_labels,
                              sync.outcome.final_labels)
        assert served.outcome.extras["collector"] == \
            sync.outcome.extras["collector"]

    def test_served_run_with_pretraining_is_bit_identical(self):
        setting = ExperimentSetting("S12CP", scale=0.02, seed=7)
        clear_pretrained_policies()
        sync = run_experiment("CrowdRL", setting)
        clear_pretrained_policies()
        served = run_experiment("CrowdRL", setting,
                                ExperimentSpec(serve=True))
        assert served.report == sync.report
        assert np.array_equal(served.outcome.final_labels,
                              sync.outcome.final_labels)

    def test_served_run_overlaps_collection(self):
        setting = ExperimentSetting("S12CP", scale=0.02, seed=0)
        served = run_experiment(
            "CrowdRL", setting, ExperimentSpec(serve=True, metrics=True),
            pretrain=False)
        extras = served.outcome.extras["serve"]
        assert extras["completed"] > 0
        # Overlap is the point of the event loop: the virtual makespan
        # must beat serial collection (the sum of all service times).
        serial = served.metrics["histograms"]["serve.service_s"]["sum"]
        assert extras["makespan"] < serial
        assert served.metrics["counters"]["serve.completed"] == \
            extras["completed"]

    def test_latency_knob_implies_serve(self):
        setting = ExperimentSetting("S12CP", scale=0.02, seed=0)
        spec = ExperimentSpec(latency=2.0)
        assert spec.serve is True
        result = run_experiment("CrowdRL", setting, spec, pretrain=False)
        assert "serve" in result.outcome.extras

    def test_serve_with_checkpoint_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentSpec(serve=True, checkpoint_path="x.ckpt")

    def test_framework_without_episode_protocol_rejected(self):
        setting = ExperimentSetting("S12CP", scale=0.02, seed=0)
        with pytest.raises(NotImplementedError):
            run_experiment("DLTA", setting, ExperimentSpec(serve=True),
                           pretrain=False)


# ----------------------------------------------------------------------
# Multi-tenancy: the serve engine
# ----------------------------------------------------------------------
def build_engine(n_projects, metrics_dir=None, max_active=None,
                 budget=80.0):
    datasets = [
        load_dataset("S12CP", scale=0.02, rng=100 + i)
        for i in range(n_projects)
    ]
    pool = AnnotatorPool.build(datasets[0].n_classes, 3, 2, rng=7)
    engine = ServeEngine(pool, max_active=max_active,
                         metrics_dir=metrics_dir)
    for i, dataset in enumerate(datasets):
        engine.add_project(
            f"proj{i}", dataset, CrowdRL(CrowdRLConfig(), rng=200 + i),
            budget=budget, seed=i,
        )
    return engine


class TestServeEngine:
    def test_eight_sessions_share_one_pool(self, tmp_path):
        """The acceptance criterion: 8 concurrent projects, exact books."""
        engine = build_engine(8, metrics_dir=tmp_path, max_active=3)
        report = engine.run()
        assert len(report.results) == 8
        assert report.peak_active == 3
        assert report.makespan > 0.0
        # Lease grants account for every submitted answer, per session.
        for result in report.results:
            assert report.grant_counts[result.name] > 0
        for i, result in enumerate(report.results):
            assert result.name == f"proj{i}"
            # Per-session metrics stream: budget attribution reconciles
            # EXACTLY against the spent gauge — no cross-session leakage.
            summary = load_summary(tmp_path / f"proj{i}.jsonl")
            attributed = sum(budget_by_phase(summary["counters"]).values())
            assert attributed == summary["gauges"]["budget.spent"]
            assert summary["gauges"]["budget.spent"] == result.outcome.spent
            assert summary["gauges"]["iterations"] == \
                result.outcome.iterations
            assert summary["counters"]["serve.completed"] == \
                summary["counters"]["serve.submitted"]

    def test_engine_runs_are_deterministic(self):
        first = build_engine(3, max_active=2).run()
        second = build_engine(3, max_active=2).run()
        assert first.makespan == second.makespan
        assert first.grant_counts == second.grant_counts
        for a, b in zip(first.results, second.results):
            assert a.report == b.report
            assert a.outcome.spent == b.outcome.spent
            assert a.finished_at == b.finished_at
            assert np.array_equal(a.outcome.final_labels,
                                  b.outcome.final_labels)

    def test_admission_cap_respected(self):
        report = build_engine(5, max_active=2).run()
        assert report.peak_active == 2
        assert len(report.results) == 5

    def test_engine_report_renders(self):
        report = build_engine(2).run()
        text = report.render()
        assert "proj0" in text and "proj1" in text
        assert "virtual makespan" in text

    def test_guards(self, tmp_path):
        with pytest.raises(ConfigurationError):
            build_engine(2, max_active=0)
        engine = build_engine(2)
        with pytest.raises(ConfigurationError):  # duplicate name
            dataset = load_dataset("S12CP", scale=0.02, rng=100)
            engine.add_project("proj0", dataset,
                               CrowdRL(CrowdRLConfig(), rng=0), budget=10.0)
        engine.run()
        with pytest.raises(ConfigurationError):  # run() is once-only
            engine.run()
        with pytest.raises(ConfigurationError):  # no adding after run
            dataset = load_dataset("S12CP", scale=0.02, rng=100)
            engine.add_project("late", dataset,
                               CrowdRL(CrowdRLConfig(), rng=0), budget=10.0)
        with pytest.raises(ConfigurationError):  # nothing to run
            ServeEngine(build_pool()).run()
