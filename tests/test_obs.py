"""Observability layer: registry, phase timers, event log, report CLI."""

import json

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.harness.experiment import (
    ExperimentSetting,
    ExperimentSpec,
    clear_pretrained_policies,
    run_experiment,
)
from repro.obs import (
    NULL_REGISTRY,
    CountingClock,
    Histogram,
    JsonlEventLog,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    load_summary,
    phase_timer,
    read_events,
    render_report,
    set_registry,
    summarize_snapshot,
    use_registry,
)
from repro.obs.__main__ import main as obs_main


@pytest.fixture(autouse=True)
def _isolate_registry():
    """Every test starts and ends with the disabled registry active."""
    previous = set_registry(None)
    yield
    set_registry(previous)


class TestRegistryBasics:
    def test_counters_gauges(self):
        reg = MetricsRegistry()
        reg.inc("answers")
        reg.inc("answers", 2.5)
        reg.set_gauge("budget.spent", 7.0)
        reg.set_gauge("budget.spent", 9.0)
        assert reg.counter_value("answers") == 3.5
        assert reg.counter_value("never_touched") == 0.0
        assert reg.snapshot()["gauges"] == {"budget.spent": 9.0}

    def test_counters_reject_negative_increments(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            reg.inc("x", -1.0)

    def test_histogram_bucketing(self):
        h = Histogram(edges=(1.0, 10.0))
        for v in (0.5, 1.0, 5.0, 100.0):
            h.observe(v)
        d = h.to_dict()
        assert d["counts"] == [2, 1, 1]  # <=1, <=10, overflow
        assert d["total"] == 4
        assert d["min"] == 0.5 and d["max"] == 100.0

    def test_histogram_rejects_bad_edges(self):
        with pytest.raises(ConfigurationError):
            Histogram(edges=())
        with pytest.raises(ConfigurationError):
            Histogram(edges=(2.0, 1.0))

    def test_snapshot_keys_sorted(self):
        reg = MetricsRegistry()
        for name in ("zeta", "alpha", "mid"):
            reg.inc(name)
        assert list(reg.snapshot()["counters"]) == ["alpha", "mid", "zeta"]


class TestPhaseTimer:
    def test_counting_clock_makes_timings_deterministic(self):
        def record(reg):
            with use_registry(reg):
                for _ in range(3):
                    with phase_timer("work"):
                        pass
            return reg.snapshot()

        a = record(MetricsRegistry(clock=CountingClock(step=0.01)))
        b = record(MetricsRegistry(clock=CountingClock(step=0.01)))
        assert a == b
        assert a["phases"]["work"]["calls"] == 3
        assert a["phases"]["work"]["total_s"] == pytest.approx(0.03)

    def test_decorator_form_resolves_registry_per_call(self):
        @phase_timer("fn")
        def fn():
            return 42

        assert fn() == 42  # under NULL_REGISTRY: no recording
        reg = MetricsRegistry(clock=CountingClock())
        with use_registry(reg):
            assert fn() == 42
        assert reg.snapshot()["phases"]["fn"]["calls"] == 1

    def test_exception_still_counts_the_call(self):
        reg = MetricsRegistry(clock=CountingClock())
        with use_registry(reg):
            with pytest.raises(ValueError):
                with phase_timer("boom"):
                    raise ValueError("x")
        assert reg.snapshot()["phases"]["boom"]["calls"] == 1

    def test_null_registry_never_reads_the_clock(self):
        class ExplodingClock:
            def __call__(self):
                raise AssertionError("clock read under NULL_REGISTRY")

        assert get_registry() is NULL_REGISTRY
        with phase_timer("free"):
            pass  # would explode if the timer touched any clock
        # NullRegistry discards everything.
        NULL_REGISTRY.inc("x", 5)
        NULL_REGISTRY.record_phase("x", 1.0)
        assert NULL_REGISTRY.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}, "phases": {},
        }

    def test_use_registry_restores_previous(self):
        reg = MetricsRegistry()
        with use_registry(reg):
            assert get_registry() is reg
        assert isinstance(get_registry(), NullRegistry)


class TestEventLog:
    def test_emit_flush_read_roundtrip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = JsonlEventLog(path, flush_every=0)
        log.emit("phase", name="infer", elapsed_s=np.float64(0.5))
        log.emit("snapshot", metrics={"counters": {"n": np.int64(3)}})
        log.close()
        events = read_events(path)
        assert [e["kind"] for e in events] == ["phase", "snapshot"]
        assert [e["seq"] for e in events] == [0, 1]
        # numpy scalars were converted eagerly to JSON natives.
        assert events[0]["elapsed_s"] == 0.5
        assert events[1]["metrics"]["counters"]["n"] == 3
        assert read_events(path, kind="phase") == [events[0]]

    def test_auto_flush_threshold(self, tmp_path):
        path = tmp_path / "auto.jsonl"
        log = JsonlEventLog(path, flush_every=2)
        log.emit("a")
        assert not path.exists()
        log.emit("b")
        assert len(read_events(path)) == 2

    def test_flush_leaves_no_temp_file(self, tmp_path):
        path = tmp_path / "atomic.jsonl"
        log = JsonlEventLog(path)
        log.emit("only")
        log.flush()
        assert list(tmp_path.iterdir()) == [path]

    def test_reader_errors(self, tmp_path):
        with pytest.raises(ConfigurationError):
            read_events(tmp_path / "missing.jsonl")
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind": "ok"}\n{torn line\n')
        with pytest.raises(ConfigurationError):
            read_events(bad)


class TestRunIntegration:
    SETTING = ExperimentSetting("S12CP", scale=0.02, seed=0)

    def test_same_seed_runs_produce_identical_snapshots(self):
        def snap():
            reg = MetricsRegistry(clock=CountingClock(step=0.001))
            run_experiment("CrowdRL", self.SETTING,
                           ExperimentSpec(metrics=reg), pretrain=False)
            return reg.snapshot()

        assert snap() == snap()

    def test_metrics_on_matches_metrics_off_bitwise(self):
        plain = run_experiment("CrowdRL", self.SETTING, pretrain=False)
        metered = run_experiment("CrowdRL", self.SETTING,
                                 ExperimentSpec(metrics=True), pretrain=False)
        assert plain.metrics is None
        assert metered.metrics is not None
        assert metered.report == plain.report
        assert np.array_equal(metered.outcome.final_labels,
                              plain.outcome.final_labels)
        assert metered.outcome.spent == plain.outcome.spent

    def test_budget_attribution_covers_all_spend(self):
        result = run_experiment("CrowdRL", self.SETTING,
                                ExperimentSpec(metrics=True), pretrain=False)
        counters = result.metrics["counters"]
        attributed = sum(v for k, v in counters.items()
                         if k.startswith("budget."))
        assert attributed == pytest.approx(result.outcome.spent)
        assert result.metrics["gauges"]["budget.spent"] == result.outcome.spent

    def test_pretrain_spend_split_from_evaluation_books(self):
        # Offline cross-training (paper §VI-A4) collects on its own
        # training platforms but lands in the same budget.* counters;
        # the budget.pretrain gauge must reconcile the books exactly.
        clear_pretrained_policies()
        result = run_experiment("CrowdRL", self.SETTING,
                                ExperimentSpec(metrics=True))
        counters = result.metrics["counters"]
        gauges = result.metrics["gauges"]
        attributed = sum(v for k, v in counters.items()
                         if k.startswith("budget."))
        assert gauges["budget.pretrain"] > 0.0
        assert (attributed - gauges["budget.pretrain"]
                == pytest.approx(result.outcome.spent))
        text = render_report(summarize_snapshot(result.metrics))
        assert "offline pretraining" in text

    def test_instrumented_phases_present(self):
        result = run_experiment("CrowdRL", self.SETTING,
                                ExperimentSpec(metrics=True), pretrain=False)
        phases = set(result.metrics["phases"])
        assert {"featurize", "q_forward", "select", "collect", "infer",
                "enrich", "initial_sample", "dqn_train"} <= phases

    def test_metrics_out_report_cli(self, tmp_path, capsys):
        path = tmp_path / "metrics.jsonl"
        run_experiment("CrowdRL", self.SETTING,
                       ExperimentSpec(metrics_out=path), pretrain=False)
        assert obs_main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "phase" in out and "infer" in out and "budget:" in out
        assert obs_main(["report", str(path), "--format", "json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary == {k: load_summary(path)[k] for k in summary}

    def test_report_cli_missing_file(self, tmp_path, capsys):
        assert obs_main(["report", str(tmp_path / "nope.jsonl")]) == 2
        assert "error" in capsys.readouterr().err

    def test_render_report_from_snapshot(self):
        result = run_experiment("CrowdRL", self.SETTING,
                                ExperimentSpec(metrics=True), pretrain=False)
        text = render_report(summarize_snapshot(result.metrics))
        assert "collect" in text and "budget:" in text

    def test_repro_metrics_env_switches_collection_on(self, monkeypatch):
        monkeypatch.setenv("REPRO_METRICS", "1")
        result = run_experiment("DLTA", self.SETTING, pretrain=False)
        assert result.metrics is not None
        monkeypatch.setenv("REPRO_METRICS", "0")
        result = run_experiment("DLTA", self.SETTING, pretrain=False)
        assert result.metrics is None
