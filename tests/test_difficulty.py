"""Tests for per-object difficulty: generation, validation, simulation."""

import numpy as np
import pytest

from repro import BudgetManager, make_platform
from repro.crowd.annotator import Annotator, AnnotatorKind
from repro.crowd.confusion import ConfusionMatrix
from repro.crowd.platform import CrowdPlatform
from repro.datasets.base import LabelledDataset
from repro.datasets.synthetic import bayes_difficulty, make_blobs
from repro.exceptions import ConfigurationError, DatasetError

from conftest import build_pool


class TestBayesDifficulty:
    def test_boundary_objects_harder(self):
        means = np.array([[-2.0], [2.0]])
        prior = np.array([0.5, 0.5])
        features = np.array([[-2.0], [0.0], [2.0]])
        difficulty = bayes_difficulty(features, means, 1.0, prior)
        assert difficulty[1] > difficulty[0]
        assert difficulty[1] > difficulty[2]
        assert difficulty[1] == pytest.approx(1.0)  # dead centre

    def test_range(self):
        ds = make_blobs(200, 5, separation=2.0, with_difficulty=True, rng=0)
        assert ds.difficulty is not None
        assert ds.difficulty.min() >= 0.0
        assert ds.difficulty.max() <= 1.0

    def test_separation_lowers_mean_difficulty(self):
        easy = make_blobs(300, 4, separation=5.0, with_difficulty=True, rng=0)
        hard = make_blobs(300, 4, separation=0.5, with_difficulty=True, rng=0)
        assert easy.difficulty.mean() < hard.difficulty.mean()

    def test_off_by_default(self):
        assert make_blobs(10, 3, rng=0).difficulty is None


class TestAnnotatorDifficulty:
    def make_annotator(self, accuracy=0.9):
        return Annotator(0, AnnotatorKind.WORKER,
                         ConfusionMatrix.from_accuracy(2, accuracy), 1.0,
                         _rng=np.random.default_rng(0))

    def test_difficulty_one_is_coin_flip(self):
        annotator = self.make_annotator(accuracy=1.0)
        answers = [annotator.answer(0, difficulty=1.0) for _ in range(2000)]
        assert np.mean(answers) == pytest.approx(0.5, abs=0.05)

    def test_difficulty_zero_is_normal_expertise(self):
        annotator = self.make_annotator(accuracy=1.0)
        assert all(annotator.answer(1, difficulty=0.0) == 1
                   for _ in range(20))

    def test_intermediate_difficulty_interpolates(self):
        annotator = self.make_annotator(accuracy=0.9)
        answers = [annotator.answer(0, difficulty=0.5) for _ in range(3000)]
        # Effective accuracy = 0.5*0.9 + 0.5*0.5 = 0.70.
        assert np.mean(np.array(answers) == 0) == pytest.approx(0.70, abs=0.04)

    def test_invalid_difficulty_raises(self):
        with pytest.raises(ConfigurationError):
            self.make_annotator().answer(0, difficulty=1.5)


class TestPlatformDifficulty:
    def test_platform_applies_difficulty(self):
        pool = build_pool(worker_accs=(1.0,), expert_accs=())
        labels = np.zeros(400, dtype=int)
        difficulty = np.concatenate([np.zeros(200), np.ones(200)])
        platform = CrowdPlatform(labels, pool, BudgetManager(10.0 ** 6),
                                 difficulty=difficulty)
        records = platform.ask_batch((i, [0]) for i in range(400))
        easy_correct = np.mean([r.answer == 0 for r in records[:200]])
        hard_correct = np.mean([r.answer == 0 for r in records[200:]])
        assert easy_correct == 1.0
        assert hard_correct == pytest.approx(0.5, abs=0.1)

    def test_difficulty_shape_validated(self):
        pool = build_pool()
        with pytest.raises(ConfigurationError):
            CrowdPlatform(np.array([0, 1]), pool, BudgetManager(10.0),
                          difficulty=np.array([0.5]))

    def test_difficulty_range_validated(self):
        pool = build_pool()
        with pytest.raises(ConfigurationError):
            CrowdPlatform(np.array([0, 1]), pool, BudgetManager(10.0),
                          difficulty=np.array([0.5, 1.5]))

    def test_make_platform_forwards_difficulty(self):
        ds = make_blobs(30, 4, with_difficulty=True, rng=0)
        platform = make_platform(ds, n_workers=2, n_experts=1,
                                 budget=100.0, rng=1)
        assert platform._difficulty is not None


class TestDatasetDifficultyField:
    def test_validation(self):
        with pytest.raises(DatasetError):
            LabelledDataset("x", np.zeros((2, 2)), np.array([0, 1]), 2,
                            difficulty=np.array([0.5]))
        with pytest.raises(DatasetError):
            LabelledDataset("x", np.zeros((2, 2)), np.array([0, 1]), 2,
                            difficulty=np.array([0.5, 2.0]))

    def test_subsample_slices_difficulty(self):
        ds = make_blobs(100, 4, with_difficulty=True, rng=0)
        sub = ds.subsample(0.3, rng=1)
        assert sub.difficulty is not None
        assert sub.difficulty.shape == sub.labels.shape

    def test_end_to_end_with_difficulty(self):
        from repro import CrowdRL, CrowdRLConfig

        ds = make_blobs(40, 5, separation=2.5, with_difficulty=True, rng=0)
        platform = make_platform(ds, n_workers=3, n_experts=1,
                                 budget=150.0, rng=1)
        config = CrowdRLConfig(alpha=0.1, batch_size=4,
                               min_truths_for_enrichment=10,
                               train_steps_per_iteration=1)
        outcome = CrowdRL(config, rng=2).run(ds, platform)
        assert outcome.final_labels.shape == (40,)


class TestDifficultyShapesOutcomes:
    def test_hard_objects_collect_more_disagreement(self):
        """With difficulty on, answer sets on hard objects disagree more."""
        pool = build_pool(worker_accs=(0.9, 0.9, 0.9), expert_accs=())
        labels = np.zeros(300, dtype=int)
        difficulty = np.concatenate([np.zeros(150), np.full(150, 0.9)])
        platform = CrowdPlatform(labels, pool, BudgetManager(10.0 ** 6),
                                 difficulty=difficulty)
        platform.ask_batch((i, [0, 1, 2]) for i in range(300))

        def mean_disagreement(ids):
            vals = []
            for i in ids:
                counts = platform.history.answer_counts(i)
                vals.append(1.0 - counts.max() / counts.sum())
            return float(np.mean(vals))

        assert mean_disagreement(range(150, 300)) > (
            mean_disagreement(range(150)) + 0.1
        )
