"""Tests for repro.core.config and repro.core.reward."""

import pytest

from repro.core.config import CrowdRLConfig, default_classifier_factory
from repro.core.reward import RewardWeights, iteration_reward
from repro.exceptions import ConfigurationError


class TestCrowdRLConfig:
    def test_defaults_valid(self):
        config = CrowdRLConfig()
        assert config.alpha == 0.05
        assert config.k_per_object == 3

    @pytest.mark.parametrize("field,value", [
        ("alpha", 0.0), ("alpha", 1.0),
        ("k_per_object", 0),
        ("batch_size", 0),
        ("enrichment_margin", 0.0), ("enrichment_margin", 1.0),
        ("expert_floor", 1.0),
        ("classifier_weight", -0.1),
        ("max_iterations", 0),
        ("train_steps_per_iteration", -1),
        ("next_state_sample", 0),
        ("ts_mode", "greedy"),
        ("ta_mode", "best"),
        ("inference_method", "mv"),
        ("info_gain_weight", -1.0),
    ])
    def test_invalid_values_raise(self, field, value):
        with pytest.raises(ConfigurationError):
            CrowdRLConfig(**{field: value})

    def test_default_classifier_factory(self):
        clf = default_classifier_factory(4, 2)
        assert clf.n_classes == 2
        assert clf.n_features == 4


class TestRewardWeights:
    def test_defaults(self):
        weights = RewardWeights()
        assert weights.gamma == 0.95

    def test_negative_weight_raises(self):
        with pytest.raises(ConfigurationError):
            RewardWeights(enrichment_weight=-1)

    def test_invalid_gamma_raises(self):
        with pytest.raises(ConfigurationError):
            RewardWeights(gamma=0.0)
        with pytest.raises(ConfigurationError):
            RewardWeights(gamma=1.1)


class TestIterationReward:
    def test_enrichment_component(self):
        weights = RewardWeights(enrichment_weight=1.0, cost_weight=0.0)
        reward = iteration_reward(
            weights, n_enriched=5, n_unlabelled_before=10,
            iteration_cost=0.0, worst_case_cost=10.0,
        )
        assert reward == pytest.approx(0.5)

    def test_cost_component_negative(self):
        weights = RewardWeights(enrichment_weight=0.0, cost_weight=1.0)
        reward = iteration_reward(
            weights, n_enriched=0, n_unlabelled_before=10,
            iteration_cost=5.0, worst_case_cost=10.0,
        )
        assert reward == pytest.approx(-0.5)

    def test_combined(self):
        weights = RewardWeights(enrichment_weight=1.0, cost_weight=0.5)
        reward = iteration_reward(
            weights, n_enriched=10, n_unlabelled_before=10,
            iteration_cost=10.0, worst_case_cost=10.0,
        )
        assert reward == pytest.approx(1.0 - 0.5)

    def test_zero_unlabelled_no_division_error(self):
        reward = iteration_reward(
            RewardWeights(), n_enriched=0, n_unlabelled_before=0,
            iteration_cost=1.0, worst_case_cost=10.0,
        )
        assert reward < 0

    def test_invalid_inputs_raise(self):
        with pytest.raises(ConfigurationError):
            iteration_reward(RewardWeights(), n_enriched=-1,
                             n_unlabelled_before=1, iteration_cost=0,
                             worst_case_cost=1)
        with pytest.raises(ConfigurationError):
            iteration_reward(RewardWeights(), n_enriched=0,
                             n_unlabelled_before=1, iteration_cost=0,
                             worst_case_cost=0)
