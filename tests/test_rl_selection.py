"""Tests for repro.rl.selection (greedy / epsilon-greedy / Eq. 6 UCB)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.rl.schedule import ConstantSchedule, LinearSchedule
from repro.rl.selection import (
    ActionStatistics,
    epsilon_greedy_action,
    greedy_action,
    ucb_action,
)


class TestGreedy:
    def test_argmax(self):
        assert greedy_action(np.array([1.0, 3.0, 2.0])) == 1

    def test_all_masked_raises(self):
        with pytest.raises(ConfigurationError):
            greedy_action(np.array([-np.inf, -np.inf]))

    def test_masked_entries_skipped(self):
        assert greedy_action(np.array([-np.inf, 0.5])) == 1


class TestEpsilonGreedy:
    def test_epsilon_zero_is_greedy(self):
        q = np.array([0.1, 0.9])
        assert epsilon_greedy_action(q, 0.0, rng=0) == 1

    def test_epsilon_one_explores_uniformly(self):
        q = np.array([0.1, 0.9, 0.5])
        rng = np.random.default_rng(0)
        picks = {epsilon_greedy_action(q, 1.0, rng=rng) for _ in range(100)}
        assert picks == {0, 1, 2}

    def test_never_picks_masked(self):
        q = np.array([-np.inf, 0.5, -np.inf])
        rng = np.random.default_rng(0)
        assert all(
            epsilon_greedy_action(q, 1.0, rng=rng) == 1 for _ in range(50)
        )

    def test_invalid_epsilon_raises(self):
        with pytest.raises(ConfigurationError):
            epsilon_greedy_action(np.array([1.0]), 1.5)


class TestActionStatistics:
    def test_record_and_counts(self):
        stats = ActionStatistics(3)
        stats.record(1)
        stats.record(1)
        stats.record(2)
        np.testing.assert_array_equal(stats.counts, [0, 2, 1])
        assert stats.total == 3

    def test_bonus_formula(self):
        stats = ActionStatistics(2)
        stats.record(0)
        stats.record(0)
        bonus = stats.bonus()
        assert bonus[0] == pytest.approx(np.sqrt(2 * np.log(2) / 2))
        assert bonus[1] == np.inf  # untried arm

    def test_bonus_zero_with_no_history(self):
        np.testing.assert_array_equal(ActionStatistics(3).bonus(), 0.0)

    def test_out_of_range_record_raises(self):
        with pytest.raises(ConfigurationError):
            ActionStatistics(2).record(2)

    def test_invalid_size_raises(self):
        with pytest.raises(ConfigurationError):
            ActionStatistics(0)


class TestUCB:
    def test_untried_action_preferred(self):
        stats = ActionStatistics(2)
        stats.record(0)
        q = np.array([10.0, 0.0])
        assert ucb_action(q, stats) == 1  # infinite bonus wins

    def test_overplayed_action_decays(self):
        """Eq. 6's property: repeatedly selecting an action shrinks its
        bonus until another action overtakes it."""
        stats = ActionStatistics(2)
        q = np.array([1.0, 0.9])
        picks = []
        for _ in range(20):
            a = ucb_action(q, stats)
            stats.record(a)
            picks.append(a)
        assert set(picks) == {0, 1}

    def test_masked_never_selected_even_untried(self):
        stats = ActionStatistics(2)
        stats.record(1)
        q = np.array([-np.inf, 1.0])
        assert ucb_action(q, stats) == 1

    def test_all_masked_raises(self):
        stats = ActionStatistics(2)
        with pytest.raises(ConfigurationError):
            ucb_action(np.array([-np.inf, -np.inf]), stats)

    def test_size_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            ucb_action(np.array([1.0]), ActionStatistics(2))


class TestSchedules:
    def test_constant(self):
        sched = ConstantSchedule(0.3)
        assert sched(0) == sched(100) == 0.3

    def test_linear_endpoints(self):
        sched = LinearSchedule(1.0, 0.1, 10)
        assert sched(0) == 1.0
        assert sched(10) == pytest.approx(0.1)
        assert sched(100) == pytest.approx(0.1)

    def test_linear_midpoint(self):
        sched = LinearSchedule(1.0, 0.0, 10)
        assert sched(5) == pytest.approx(0.5)

    def test_invalid_duration_raises(self):
        with pytest.raises(ConfigurationError):
            LinearSchedule(1.0, 0.0, 0)
