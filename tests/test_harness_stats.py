"""Tests for seed-level statistics helpers."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.harness.stats import (
    MetricSummary,
    bootstrap_mean_difference,
    paired_win_rate,
    summarize,
)


class TestSummarize:
    def test_mean_and_std(self):
        s = summarize([0.8, 0.9, 1.0])
        assert s.mean == pytest.approx(0.9)
        assert s.std == pytest.approx(0.1)
        assert s.n == 3

    def test_ci_contains_mean(self):
        s = summarize(np.random.default_rng(0).normal(0.7, 0.05, 30))
        assert s.ci_low <= s.mean <= s.ci_high

    def test_ci_narrows_with_more_data(self):
        rng = np.random.default_rng(1)
        small = summarize(rng.normal(0.7, 0.1, 5), rng=0)
        large = summarize(rng.normal(0.7, 0.1, 200), rng=0)
        assert (large.ci_high - large.ci_low) < (small.ci_high - small.ci_low)

    def test_single_value_degenerate(self):
        s = summarize([0.5])
        assert s.mean == s.ci_low == s.ci_high == 0.5
        assert s.std == 0.0

    def test_deterministic_given_rng(self):
        vals = [0.1, 0.5, 0.9, 0.3]
        assert summarize(vals, rng=7) == summarize(vals, rng=7)

    def test_str_format(self):
        text = str(summarize([0.8, 0.9]))
        assert "±" in text and "n=2" in text

    def test_invalid_inputs_raise(self):
        with pytest.raises(ConfigurationError):
            summarize([])
        with pytest.raises(ConfigurationError):
            summarize([0.5], confidence=1.0)
        with pytest.raises(ConfigurationError):
            summarize([0.5], n_bootstrap=0)


class TestPairedWinRate:
    def test_all_wins(self):
        assert paired_win_rate([0.9, 0.8], [0.5, 0.5]) == 1.0

    def test_ties_count_half(self):
        assert paired_win_rate([0.5, 0.9], [0.5, 0.5]) == 0.75

    def test_all_losses(self):
        assert paired_win_rate([0.1], [0.9]) == 0.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            paired_win_rate([0.5], [0.5, 0.6])


class TestBootstrapMeanDifference:
    def test_clear_gap_excludes_zero(self):
        rng = np.random.default_rng(2)
        a = rng.normal(0.9, 0.02, 20)
        b = rng.normal(0.7, 0.02, 20)
        diff, lo, hi = bootstrap_mean_difference(a, b, rng=0)
        assert diff == pytest.approx(0.2, abs=0.03)
        assert lo > 0

    def test_no_gap_includes_zero(self):
        rng = np.random.default_rng(3)
        a = rng.normal(0.8, 0.05, 20)
        b = rng.normal(0.8, 0.05, 20)
        _diff, lo, hi = bootstrap_mean_difference(a, b, rng=0)
        assert lo <= 0 <= hi

    def test_shape_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            bootstrap_mean_difference([0.5], [0.5, 0.6])
