"""Integration tests: full labelling runs across the module boundaries."""

import numpy as np
import pytest

from repro import CrowdRL, CrowdRLConfig, make_platform
from repro.baselines import DLTA, OBA, Hybrid
from repro.datasets.registry import load_dataset
from repro.datasets.synthetic import make_blobs
from repro.harness.experiment import ExperimentSetting, run_experiment


def quick_config(**kwargs):
    defaults = dict(alpha=0.1, batch_size=4, k_per_object=2,
                    min_truths_for_enrichment=10,
                    train_steps_per_iteration=2)
    defaults.update(kwargs)
    return CrowdRLConfig(**defaults)


class TestCrowdRLOnPaperDatasets:
    @pytest.mark.parametrize("name", ["S12CP", "Fashion"])
    def test_full_run_on_scaled_paper_dataset(self, name):
        dataset = load_dataset(name, scale=0.02 if name != "Fashion"
                               else 0.005, rng=0)
        platform = make_platform(dataset, n_workers=3, n_experts=2,
                                 budget=4.0 * dataset.n_objects, rng=1)
        outcome = CrowdRL(quick_config(), rng=2).run(dataset, platform)
        report = outcome.evaluate(platform.evaluation_labels())
        assert report.accuracy > 0.6
        assert outcome.spent <= platform.budget.total + 1e-9

    def test_crowdrl_beats_oba_on_noisy_workers(self):
        """The paper's headline ordering: OBA (trusting noisy answers)
        loses to CrowdRL on a moderately hard task."""
        dataset = make_blobs(120, 8, separation=2.0, rng=3)

        def run(framework_cls, seed, **kwargs):
            platform = make_platform(dataset, n_workers=3, n_experts=2,
                                     budget=500.0, rng=4)
            framework = framework_cls(rng=np.random.default_rng(seed),
                                      **kwargs)
            outcome = framework.run(dataset, platform)
            return outcome.evaluate(platform.evaluation_labels()).accuracy

        crowdrl_accs = []
        oba_accs = []
        for seed in range(2):
            platform = make_platform(dataset, n_workers=3, n_experts=2,
                                     budget=500.0, rng=4)
            outcome = CrowdRL(quick_config(), rng=seed).run(dataset, platform)
            crowdrl_accs.append(
                outcome.evaluate(platform.evaluation_labels()).accuracy
            )
            oba_accs.append(run(OBA, seed))
        assert np.mean(crowdrl_accs) > np.mean(oba_accs)


class TestBudgetFairness:
    def test_identical_pools_across_frameworks(self):
        """run_experiment must face every framework with the same pool."""
        setting = ExperimentSetting("S12C", scale=0.02, seed=7)
        r1 = run_experiment("DLTA", setting)
        r2 = run_experiment("OBA", setting)
        assert r1.report.n_evaluated == r2.report.n_evaluated

    def test_no_framework_overspends(self):
        setting = ExperimentSetting("S12C", scale=0.02, seed=8)
        for name in ("DLTA", "OBA", "IDLE", "DALC", "Hybrid"):
            result = run_experiment(name, setting)
            assert result.outcome.spent <= setting.resolve_budget() + 1e-9, name


class TestCrossTraining:
    def test_policy_improves_or_holds_with_pretraining(self):
        """Cross-training must at least not break the pipeline; the policy
        weights must be carried over."""
        dataset = make_blobs(60, 6, separation=2.5, rng=5)
        framework = CrowdRL(quick_config(), rng=6)
        pre = make_blobs(40, 6, separation=2.0, rng=7)
        pre_platform = make_platform(pre, n_workers=3, n_experts=1,
                                     budget=120.0, rng=8)
        framework.pretrain(pre, pre_platform)
        weights_after_pretrain = framework._pretrained_weights
        assert weights_after_pretrain is not None
        platform = make_platform(dataset, n_workers=3, n_experts=1,
                                 budget=180.0, rng=9)
        outcome = framework.run(dataset, platform)
        assert outcome.final_labels.shape == (60,)


class TestAnswerProvenance:
    def test_every_charge_has_an_answer(self):
        dataset = make_blobs(40, 5, separation=3.0, rng=10)
        platform = make_platform(dataset, n_workers=2, n_experts=1,
                                 budget=100.0, rng=11)
        Hybrid(rng=np.random.default_rng(12)).run(dataset, platform)
        assert len(platform.answer_log) == platform.budget.ledger_length
        total = sum(r.cost for r in platform.answer_log)
        assert total == pytest.approx(platform.budget.spent)

    def test_history_matches_answer_log(self):
        dataset = make_blobs(40, 5, separation=3.0, rng=13)
        platform = make_platform(dataset, n_workers=2, n_experts=1,
                                 budget=100.0, rng=14)
        DLTA(rng=np.random.default_rng(15)).run(dataset, platform)
        for record in platform.answer_log:
            assert platform.history.matrix[
                record.object_id, record.annotator_id
            ] == record.answer
