"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.utils.validation import (
    check_fraction,
    check_positive,
    check_probability_matrix,
    check_probability_vector,
)


class TestCheckPositive:
    def test_positive_ok(self):
        assert check_positive(1.5, "x") == 1.5

    def test_zero_strict_raises(self):
        with pytest.raises(ConfigurationError, match="x"):
            check_positive(0, "x")

    def test_zero_nonstrict_ok(self):
        assert check_positive(0, "x", strict=False) == 0

    def test_negative_nonstrict_raises(self):
        with pytest.raises(ConfigurationError):
            check_positive(-1, "x", strict=False)


class TestCheckFraction:
    def test_half_ok(self):
        assert check_fraction(0.5, "f") == 0.5

    def test_one_inclusive(self):
        assert check_fraction(1.0, "f") == 1.0

    def test_zero_exclusive_raises(self):
        with pytest.raises(ConfigurationError):
            check_fraction(0.0, "f")

    def test_zero_inclusive_ok(self):
        assert check_fraction(0.0, "f", inclusive_low=True) == 0.0

    def test_above_one_raises(self):
        with pytest.raises(ConfigurationError):
            check_fraction(1.1, "f")

    def test_one_exclusive_raises(self):
        with pytest.raises(ConfigurationError):
            check_fraction(1.0, "f", inclusive_high=False)


class TestProbabilityVector:
    def test_valid(self):
        v = check_probability_vector(np.array([0.2, 0.8]), "p")
        assert v.sum() == pytest.approx(1.0)

    def test_not_summing_raises(self):
        with pytest.raises(ConfigurationError):
            check_probability_vector(np.array([0.5, 0.6]), "p")

    def test_negative_raises(self):
        with pytest.raises(ConfigurationError):
            check_probability_vector(np.array([-0.1, 1.1]), "p")

    def test_2d_raises(self):
        with pytest.raises(ConfigurationError):
            check_probability_vector(np.eye(2), "p")


class TestProbabilityMatrix:
    def test_identity_ok(self):
        m = check_probability_matrix(np.eye(3), "m")
        assert m.shape == (3, 3)

    def test_rows_not_stochastic_raises(self):
        with pytest.raises(ConfigurationError):
            check_probability_matrix(np.array([[0.5, 0.4], [0.5, 0.5]]), "m")

    def test_non_square_raises(self):
        with pytest.raises(ConfigurationError):
            check_probability_matrix(np.ones((2, 3)) / 3, "m")

    def test_negative_entry_raises(self):
        with pytest.raises(ConfigurationError):
            check_probability_matrix(np.array([[1.2, -0.2], [0.5, 0.5]]), "m")
