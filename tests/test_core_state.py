"""Tests for repro.core.state (featurization and masking)."""

import numpy as np
import pytest

from repro.core.state import (
    N_ANNOTATOR_FEATURES,
    N_GLOBAL_FEATURES,
    N_OBJECT_FEATURES,
    N_PAIR_FEATURES,
    LabellingState,
)
from repro.crowd.cost import BudgetManager
from repro.crowd.history import LabellingHistory
from repro.exceptions import ConfigurationError

from conftest import build_pool


@pytest.fixture
def state():
    history = LabellingHistory(6, 4, 2)
    pool = build_pool()  # 3 workers + 1 expert
    budget = BudgetManager(100.0)
    return LabellingState(history, pool, budget)


class TestFeatureBlocks:
    def test_shapes(self, state):
        assert state.object_features().shape == (6, N_OBJECT_FEATURES)
        assert state.annotator_features().shape == (4, N_ANNOTATOR_FEATURES)
        assert state.global_features().shape == (N_GLOBAL_FEATURES,)
        assert state.feature_tensor().shape == (6, 4, N_PAIR_FEATURES)

    def test_pair_features_match_tensor(self, state):
        state.history.record(2, 1, 1)
        tensor = state.feature_tensor()
        np.testing.assert_allclose(state.pair_features(2, 1), tensor[2, 1])

    def test_object_features_reflect_answers(self, state):
        state.history.record(0, 0, 1)
        state.history.record(0, 1, 0)
        feats = state.object_features()
        assert feats[0, 0] > 0          # answer count
        assert feats[0, 1] == pytest.approx(0.5)  # disagreement 1 - 1/2
        assert feats[1, 0] == 0.0       # untouched object

    def test_annotator_features_costs_and_quality(self, state):
        feats = state.annotator_features()
        np.testing.assert_allclose(feats[:, 0], [0.1, 0.1, 0.1, 1.0])
        assert feats[3, 2] == 1.0  # expert flag
        assert feats[0, 2] == 0.0

    def test_global_budget_fraction(self, state):
        state.budget.charge(25.0)
        assert state.global_features()[0] == pytest.approx(0.75)

    def test_classifier_proba_features(self, state):
        proba = np.tile([0.9, 0.1], (6, 1))
        state.set_classifier_proba(proba)
        feats = state.object_features()
        np.testing.assert_allclose(feats[:, 3], 0.8)   # margin
        np.testing.assert_allclose(feats[:, 4], 0.9)   # max proba

    def test_no_classifier_defaults(self, state):
        feats = state.object_features()
        np.testing.assert_allclose(feats[:, 5], 1.0)   # max entropy

    def test_wrong_proba_shape_raises(self, state):
        with pytest.raises(ConfigurationError):
            state.set_classifier_proba(np.ones((3, 2)))


class TestMask:
    def test_initially_all_valid(self, state):
        assert state.action_mask().all()

    def test_answered_pair_masked(self, state):
        state.history.record(1, 2, 0)
        mask = state.action_mask()
        assert not mask[1, 2]
        assert mask[1, 0]

    def test_labelled_object_masked(self, state):
        state.set_labelled(human=[3], enriched=[])
        assert not state.action_mask()[3].any()

    def test_enriched_masked_by_default(self, state):
        state.set_labelled(human=[], enriched=[2])
        assert not state.action_mask()[2].any()

    def test_enriched_unmasked_in_nonsticky_mode(self):
        history = LabellingHistory(4, 4, 2)
        st = LabellingState(history, build_pool(), BudgetManager(50.0),
                            mask_enriched=False)
        st.set_labelled(human=[0], enriched=[2])
        mask = st.action_mask()
        assert not mask[0].any()
        assert mask[2].any()

    def test_unaffordable_annotator_masked(self, state):
        state.budget.charge(95.0)  # 5 left: workers (1) ok, expert (10) not
        mask = state.action_mask()
        assert mask[:, 0].all()
        assert not mask[:, 3].any()


class TestQueries:
    def test_unlabelled_objects(self, state):
        state.set_labelled(human=[0, 2], enriched=[4])
        np.testing.assert_array_equal(state.unlabelled_objects(), [1, 3, 5])

    def test_all_labelled(self, state):
        assert not state.all_labelled()
        state.set_labelled(human=range(6), enriched=[])
        assert state.all_labelled()

    def test_invalid_answer_norm_raises(self, state):
        with pytest.raises(ConfigurationError):
            LabellingState(state.history, state.pool, state.budget,
                           answer_norm=0)
