"""Reproductions of the paper's worked examples (Tables II-V, Examples 1-3).

These tests pin the library's semantics to the concrete numbers printed in
the paper, which is the strongest available ground truth for a reproduction.
"""

import numpy as np
import pytest

from repro.core.reward import RewardWeights, iteration_reward
from repro.crowd.annotator import Annotator, AnnotatorKind
from repro.crowd.confusion import ConfusionMatrix
from repro.crowd.cost import BudgetManager, CostModel
from repro.inference.majority import MajorityVote
from repro.utils.topk import select_objects_by_topk_q

#: Table IV — confusion matrix of worker w1.
PI_W1 = np.array([[0.60, 0.40], [0.30, 0.70]])
#: Table V — confusion matrix of expert w4.
PI_W4 = np.array([[0.98, 0.02], [0.01, 0.99]])
# Class convention: index 0 = 'positive' (first row of the tables),
# index 1 = 'negative'.
POS, NEG = 0, 1


class TestTableIVandV:
    def test_w1_quality_matches_table_ii(self):
        """Table II lists w1's quality as 0.65 = tr(Pi)/|C|."""
        assert ConfusionMatrix(PI_W1).quality() == pytest.approx(0.65)

    def test_w4_quality_matches_table_ii(self):
        """Table II lists w4's quality as 0.985; the paper's running text
        computes it as (0.98 + 0.99) / 2 from Table V."""
        assert ConfusionMatrix(PI_W4).quality() == pytest.approx(0.985)

    def test_pi_w4_negative_entry(self):
        """'The element pi_22 = 0.99 denotes w4 has probability 0.99 to
        label a negative object as negative.'"""
        cm = ConfusionMatrix(PI_W4)
        assert cm.likelihood(NEG, NEG) == pytest.approx(0.99)


class TestExample1:
    def test_mv_infers_o1_positive(self):
        """w1, w3 answer positive; w2(?) negative... per Example 1 the
        answer set is {positive, negative, positive} plus the expert's
        positive — MV infers positive."""
        answers = {0: {0: POS, 2: NEG, 1: POS, 3: POS}}
        result = MajorityVote().infer(answers, 2, 4)
        assert result.labels[0] == POS

    def test_costs_match_example(self):
        """Worker costs 1, expert costs 5 in Example 1's budget of 30."""
        model = CostModel(worker_cost=1.0, expert_cost=5.0)
        worker = Annotator(0, AnnotatorKind.WORKER,
                           ConfusionMatrix(PI_W1), model.worker_cost)
        expert = Annotator(1, AnnotatorKind.EXPERT,
                           ConfusionMatrix(PI_W4), model.expert_cost)
        budget = BudgetManager(30.0)
        # Example 2: employing w1 + w3 (workers) + w5 (expert) costs
        # 1 + 1 + 5 = 7.
        budget.charge(worker.cost)
        budget.charge(worker.cost)
        budget.charge(expert.cost)
        assert budget.spent == pytest.approx(7.0)
        assert budget.remaining == pytest.approx(23.0)


class TestExample2:
    def test_reward_of_second_iteration(self):
        """Example 2: one object enriched by phi, r_phi(2) = 1/|unlabelled|.

        After the first iteration 3 of 8 objects are labelled, so 5 are
        unlabelled and the enrichment of o2 gives r_phi = 1/5."""
        weights = RewardWeights(enrichment_weight=1.0, cost_weight=0.0)
        reward = iteration_reward(
            weights, n_enriched=1, n_unlabelled_before=5,
            iteration_cost=7.0, worst_case_cost=21.0,
        )
        assert reward == pytest.approx(1 / 5)

    def test_cost_of_assignment(self):
        """r_cost(2) = 1 + 1 + 5 = 7 for w1, w3, w5 on o8."""
        model = CostModel(worker_cost=1.0, expert_cost=5.0)
        cost = 2 * model.worker_cost + model.expert_cost
        assert cost == pytest.approx(7.0)


class TestExample3:
    """Table III: the Q(S(2), A(2)) matrix over objects o1..o8 (rows) and
    annotators w1..w5 (columns); 'x' entries are -inf masks for the
    already-labelled o1, o4, o5."""

    Q = np.array([
        [-np.inf] * 5,            # o1 labelled
        [3, 1, 1, 2, 2],          # o2
        [1, 1, 1, 2, 4],          # o3
        [-np.inf] * 5,            # o4 labelled
        [-np.inf] * 5,            # o5 labelled
        [1, 2, 1, 1, 2],          # o6
        [3, 2, 0, 1, 1],          # o7
        [4, 1, 3, 0, 2],          # o8
    ], dtype=float)

    def test_o8_selected_with_w1_w3_w5(self):
        """'The summation of the Top-3 Q values of o8 is 9, which is the
        biggest. Thus we select o8 and assign it to w1, w3 and w5.'"""
        (object_id, annotators), = select_objects_by_topk_q(self.Q, 3, 1)
        assert object_id == 7
        assert sorted(annotators) == [0, 2, 4]

    def test_labelled_objects_never_reselected(self):
        selected = select_objects_by_topk_q(self.Q, 3, 8)
        chosen = {obj for obj, _ in selected}
        assert chosen.isdisjoint({0, 3, 4})

    def test_top3_sum_of_o8_is_9(self):
        from repro.utils.topk import top_k_sum

        assert top_k_sum(self.Q[7], 3) == pytest.approx(9.0)
