"""Tests for repro.crowd.history (the State's answer matrix)."""

import numpy as np
import pytest

from repro.crowd.history import UNANSWERED, LabellingHistory
from repro.exceptions import ConfigurationError


@pytest.fixture
def history():
    return LabellingHistory(n_objects=5, n_annotators=3, n_classes=2)


class TestRecording:
    def test_starts_unanswered(self, history):
        assert (history.matrix == UNANSWERED).all()

    def test_record_and_query(self, history):
        history.record(0, 1, 1)
        assert history.has_answered(0, 1)
        assert not history.has_answered(0, 0)
        assert history.answers_for(0) == {1: 1}

    def test_duplicate_rejected(self, history):
        history.record(0, 1, 1)
        with pytest.raises(ConfigurationError):
            history.record(0, 1, 0)

    def test_answer_out_of_range(self, history):
        with pytest.raises(ConfigurationError):
            history.record(0, 0, 2)

    def test_ids_out_of_range(self, history):
        with pytest.raises(ConfigurationError):
            history.record(5, 0, 0)
        with pytest.raises(ConfigurationError):
            history.record(0, 3, 0)


class TestQueries:
    def test_answer_counts(self, history):
        history.record(2, 0, 1)
        history.record(2, 1, 1)
        history.record(2, 2, 0)
        np.testing.assert_array_equal(history.answer_counts(2), [1, 2])

    def test_n_answers(self, history):
        assert history.n_answers(1) == 0
        history.record(1, 0, 0)
        assert history.n_answers(1) == 1

    def test_answered_objects(self, history):
        history.record(1, 0, 0)
        history.record(4, 2, 1)
        np.testing.assert_array_equal(history.answered_objects(), [1, 4])

    def test_annotator_load(self, history):
        history.record(0, 1, 0)
        history.record(3, 1, 1)
        assert history.annotator_load(1) == 2
        assert history.annotator_load(0) == 0

    def test_confusion_counts_against_truths(self, history):
        history.record(0, 0, 1)   # truth 0, answered 1 -> counts[0,1]
        history.record(1, 0, 1)   # truth 1, answered 1 -> counts[1,1]
        history.record(2, 0, 0)   # truth not inferred -> skipped
        counts = history.confusion_counts(0, {0: 0, 1: 1})
        np.testing.assert_array_equal(counts, [[0, 1], [0, 1]])

    def test_copy_is_independent(self, history):
        history.record(0, 0, 1)
        clone = history.copy()
        clone.record(1, 1, 0)
        assert not history.has_answered(1, 1)
        assert clone.has_answered(0, 0)


class TestConstruction:
    def test_invalid_sizes_raise(self):
        with pytest.raises(ConfigurationError):
            LabellingHistory(0, 3, 2)
        with pytest.raises(ConfigurationError):
            LabellingHistory(3, 0, 2)
        with pytest.raises(ConfigurationError):
            LabellingHistory(3, 3, 1)
