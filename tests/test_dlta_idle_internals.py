"""Behavioural tests for DLTA's acquisition and IDLE's escalation logic."""

import numpy as np
import pytest

from repro import make_platform
from repro.baselines.dlta import DLTA
from repro.baselines.idle import IDLE
from repro.datasets.synthetic import make_blobs


@pytest.fixture(scope="module")
def dataset():
    return make_blobs(40, 5, separation=3.0, rng=6)


class TestDLTABehaviour:
    def test_acquisition_covers_or_settles(self, dataset):
        """DLTA either keeps acquiring until coverage/budget, or stops once
        every posterior is confident — never crashes in between."""
        platform = make_platform(dataset, n_workers=3, n_experts=1,
                                 budget=200.0, rng=7)
        outcome = DLTA(alpha=0.2, k_per_object=2,
                       rng=np.random.default_rng(8)).run(dataset, platform)
        covered = platform.history.answered_objects().size
        settled_early = outcome.spent < 200.0
        assert covered == dataset.n_objects or settled_early
        assert outcome.extras["n_truths"] > 0

    def test_stops_when_everything_settled(self, dataset):
        """With a huge budget DLTA terminates by confidence, not budget."""
        platform = make_platform(dataset, n_workers=3, n_experts=1,
                                 budget=100_000.0, rng=7)
        outcome = DLTA(rng=np.random.default_rng(8)).run(dataset, platform)
        assert outcome.spent < 100_000.0


class TestIDLEBehaviour:
    def test_unsolvable_objects_tracked(self, dataset):
        """With experts exhausted fast, ambiguous objects end 'unsolvable'
        or pending rather than crashing the run."""
        platform = make_platform(dataset, n_workers=3, n_experts=1,
                                 budget=80.0, rng=9)
        outcome = IDLE(escalation_confidence=0.99,
                       rng=np.random.default_rng(10)).run(dataset, platform)
        extras = outcome.extras
        assert (extras["n_unsolvable"] + extras["n_escalated_pending"]
                + extras["n_truths"]) > 0

    def test_random_selection_covers_fresh_objects(self, dataset):
        platform = make_platform(dataset, n_workers=3, n_experts=1,
                                 budget=300.0, rng=11)
        IDLE(rng=np.random.default_rng(12)).run(dataset, platform)
        covered = platform.history.answered_objects()
        assert covered.size > dataset.n_objects * 0.5

    def test_expert_only_pool_does_not_crash(self, dataset):
        platform = make_platform(dataset, n_workers=0, n_experts=2,
                                 budget=120.0, rng=13)
        outcome = IDLE(rng=np.random.default_rng(14)).run(dataset, platform)
        assert outcome.final_labels.shape == (dataset.n_objects,)
