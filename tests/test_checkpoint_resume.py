"""Chaos tests: kill-mid-run + resume, and fault-rate survival.

The chaos marker gates these in CI (they run under a seed matrix via
``REPRO_CHAOS_SEED``); the seed defaults to 0 so local runs are
deterministic too.
"""

import logging
import os

import numpy as np
import pytest

from repro.crowd.faults import FaultModel, PlatformWrapper
from repro.exceptions import CheckpointError
from repro.harness.checkpoint import load_checkpoint
from repro.harness.experiment import (
    ExperimentSetting,
    ExperimentSpec,
    run_experiment,
)

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))

pytestmark = pytest.mark.chaos


class KillSwitch(Exception):
    """Simulated process death (not a ReproError: nothing may catch it)."""


class KillAfter(PlatformWrapper):
    """Platform hook that dies once ``n_answers`` answers went through."""

    def __init__(self, inner, n_answers):
        super().__init__(inner)
        self.n_answers = n_answers
        self.count = 0

    def _check(self):
        if self.count >= self.n_answers:
            raise KillSwitch(f"killed after {self.count} answers")

    def ask(self, object_id, annotator_id):
        self._check()
        record = self.inner.ask(object_id, annotator_id)
        self.count += 1
        return record

    def ask_batch(self, assignments):
        self._check()
        records = self.inner.ask_batch(assignments)
        self.count += len(records)
        return records


def setting(**overrides):
    kwargs = {"dataset_name": "S12CP", "scale": 0.02, "seed": CHAOS_SEED}
    kwargs.update(overrides)
    return ExperimentSetting(**kwargs)


def assert_same_run(resumed, baseline):
    assert resumed.report == baseline.report
    assert np.array_equal(resumed.outcome.final_labels,
                          baseline.outcome.final_labels)
    assert resumed.outcome.spent == baseline.outcome.spent
    assert resumed.outcome.iterations == baseline.outcome.iterations


class TestKillResume:
    @pytest.mark.parametrize("framework", ["DLTA", "CrowdRL"])
    @pytest.mark.parametrize("fraction", [0.25, 0.75])
    def test_killed_run_resumes_bitwise_identical(
            self, framework, fraction, tmp_path):
        path = tmp_path / "run.ckpt"
        counter = []
        baseline = run_experiment(
            framework, setting(), ExperimentSpec(
                platform_hook=lambda p: counter.append(
                    KillAfter(p, float("inf"))) or counter[0],
            ), pretrain=False,
        )
        # Kill partway through however many answers this seed collects.
        kill_after = max(1, int(counter[0].count * fraction))
        with pytest.raises(KillSwitch):
            run_experiment(
                framework, setting(), ExperimentSpec(
                    checkpoint_path=path, checkpoint_every=10,
                    platform_hook=lambda p: KillAfter(p, kill_after),
                ), pretrain=False,
            )
        checkpoint = load_checkpoint(path)
        # A single batch may overshoot the kill point, so only require a
        # non-empty journalled prefix.
        assert checkpoint.n_answers > 0
        resumed = run_experiment(
            framework, setting(), ExperimentSpec(
                checkpoint_path=path, checkpoint_every=10, resume=True,
            ), pretrain=False,
        )
        assert_same_run(resumed, baseline)

    def test_kill_resume_with_faults_restores_all_streams(self, tmp_path):
        """Fault clock/outages and breaker counters survive the kill."""
        path = tmp_path / "faulty.ckpt"
        baseline = run_experiment(
            "DLTA", setting(seed=CHAOS_SEED + 7), ExperimentSpec(faults=0.1),
            pretrain=False,
        )
        with pytest.raises(KillSwitch):
            run_experiment(
                "DLTA", setting(seed=CHAOS_SEED + 7), ExperimentSpec(
                    faults=0.1, checkpoint_path=path, checkpoint_every=10,
                    platform_hook=lambda p: KillAfter(p, 40),
                ), pretrain=False,
            )
        resumed = run_experiment(
            "DLTA", setting(seed=CHAOS_SEED + 7), ExperimentSpec(
                faults=0.1, checkpoint_path=path, checkpoint_every=10,
                resume=True,
            ), pretrain=False,
        )
        assert_same_run(resumed, baseline)
        assert resumed.outcome.extras["collector"] == \
            baseline.outcome.extras["collector"]

    def test_breaker_state_survives_kill_resume(self, tmp_path):
        """A circuit breaker opened before the kill stays open after resume.

        Annotator 0 abandons nearly every request, so the resilient
        collector quarantines it early in the run.  The kill lands after
        the quarantine decision; the resumed run must carry the open
        breaker (and its attempt/failure counters) across the journal
        replay rather than re-learning the annotator from scratch.
        """
        path = tmp_path / "breaker.ckpt"

        def faulty_model():
            # Fresh model per run: fault draws are stateful streams.
            return FaultModel(
                5, abandon=[0.9, 0.0, 0.0, 0.0, 0.0], rng=CHAOS_SEED
            )

        baseline = run_experiment(
            "DLTA", setting(seed=CHAOS_SEED + 13),
            ExperimentSpec(faults=faulty_model()), pretrain=False,
        )
        assert baseline.outcome.extras["quarantined"] == [0]
        with pytest.raises(KillSwitch):
            run_experiment(
                "DLTA", setting(seed=CHAOS_SEED + 13), ExperimentSpec(
                    faults=faulty_model(), checkpoint_path=path,
                    checkpoint_every=10,
                    platform_hook=lambda p: KillAfter(p, 40),
                ), pretrain=False,
            )
        checkpoint = load_checkpoint(path)
        assert checkpoint.collector_state is not None
        resumed = run_experiment(
            "DLTA", setting(seed=CHAOS_SEED + 13), ExperimentSpec(
                faults=faulty_model(), checkpoint_path=path,
                checkpoint_every=10, resume=True,
            ), pretrain=False,
        )
        assert_same_run(resumed, baseline)
        assert resumed.outcome.extras["quarantined"] == [0]
        assert resumed.outcome.extras["collector"] == \
            baseline.outcome.extras["collector"]

    def test_completed_run_resumes_from_full_journal(self, tmp_path):
        """Resuming a finished run replays the whole journal, same result."""
        path = tmp_path / "done.ckpt"
        first = run_experiment(
            "OBA", setting(), ExperimentSpec(
                checkpoint_path=path, checkpoint_every=10,
            ), pretrain=False,
        )
        resumed = run_experiment(
            "OBA", setting(), ExperimentSpec(
                checkpoint_path=path, checkpoint_every=10, resume=True,
            ), pretrain=False,
        )
        assert_same_run(resumed, first)


class TestFaultSurvival:
    @pytest.mark.parametrize("rate", [0.05, 0.2])
    def test_fault_rates_complete_without_unhandled_exceptions(self, rate):
        result = run_experiment(
            "DLTA", setting(seed=CHAOS_SEED + 11), ExperimentSpec(faults=rate),
            pretrain=False,
        )
        assert result.report.n_evaluated > 0
        stats = result.outcome.extras["collector"]
        if rate >= 0.2:
            assert sum(stats["faults"].values()) > 0

    def test_flaky_annotator_quarantine_is_logged(self, caplog):
        # One annotator that times out almost always: the breaker must trip
        # and say so.  Pool size = n_workers + n_experts = 5.
        model = FaultModel(5, timeout=[0.95, 0.0, 0.0, 0.0, 0.0],
                           rng=CHAOS_SEED)
        with caplog.at_level(logging.WARNING, "repro.crowd.resilient"):
            result = run_experiment(
                "DLTA", setting(seed=CHAOS_SEED + 13),
                ExperimentSpec(faults=model), pretrain=False,
            )
        assert 0 in result.outcome.extras["quarantined"]
        assert any("quarantined annotator 0" in r.message
                   for r in caplog.records)


class TestResumeErrors:
    def test_resume_without_checkpoint_file(self, tmp_path):
        with pytest.raises(CheckpointError):
            run_experiment("DLTA", setting(), ExperimentSpec(
                checkpoint_path=tmp_path / "missing.ckpt", resume=True,
            ), pretrain=False)

    def test_resume_with_wrong_framework(self, tmp_path):
        path = tmp_path / "dlta.ckpt"
        run_experiment("DLTA", setting(), ExperimentSpec(
            checkpoint_path=path, checkpoint_every=10), pretrain=False)
        with pytest.raises(CheckpointError):
            run_experiment("OBA", setting(), ExperimentSpec(
                checkpoint_path=path, resume=True), pretrain=False)

    def test_resume_with_wrong_setting(self, tmp_path):
        path = tmp_path / "dlta.ckpt"
        run_experiment("DLTA", setting(), ExperimentSpec(
            checkpoint_path=path, checkpoint_every=10), pretrain=False)
        with pytest.raises(CheckpointError):
            run_experiment("DLTA", setting(seed=CHAOS_SEED + 1),
                           ExperimentSpec(checkpoint_path=path, resume=True),
                           pretrain=False)

    def test_malformed_checkpoint(self, tmp_path):
        path = tmp_path / "garbage.ckpt"
        path.write_text("{not json")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)
