"""Tests for the ZenCrowd single-reliability EM."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.inference.zencrowd import ZenCrowd

from test_inference_em import label_accuracy, simulate_answers


class TestZenCrowd:
    def test_accurate_on_standard_pool(self):
        answers, truths, n_ann = simulate_answers()
        result = ZenCrowd().infer(answers, 2, n_ann)
        assert label_accuracy(result.labels, truths) > 0.8

    def test_reliability_ordering_recovered(self):
        answers, _truths, n_ann = simulate_answers(
            n_objects=400, worker_accs=(0.95, 0.75, 0.55, 0.55), seed=7
        )
        algo = ZenCrowd()
        algo.infer(answers, 2, n_ann)
        assert algo.reliabilities[0] > algo.reliabilities[1]
        assert algo.reliabilities[1] > algo.reliabilities[3] - 0.05

    def test_posteriors_are_distributions(self):
        answers, _t, n_ann = simulate_answers(n_objects=25)
        result = ZenCrowd().infer(answers, 2, n_ann)
        for post in result.posteriors.values():
            assert post.sum() == pytest.approx(1.0)
            assert (post >= 0).all()

    def test_multiclass(self):
        rng = np.random.default_rng(0)
        truths = rng.integers(0, 3, size=150)
        answers = {}
        for i, truth in enumerate(truths):
            votes = {}
            for j, acc in enumerate((0.9, 0.7, 0.6)):
                if rng.random() < acc:
                    votes[j] = int(truth)
                else:
                    votes[j] = int((truth + rng.integers(1, 3)) % 3)
            answers[i] = votes
        result = ZenCrowd().infer(answers, 3, 3)
        acc = np.mean([result.labels[i] == truths[i]
                       for i in range(len(truths))])
        # Three annotators of accuracy (0.9, 0.7, 0.6) bound what any
        # aggregator can reach; ~0.81 is near the Bayes rate here.
        assert acc > 0.78

    def test_empty_answers(self):
        assert ZenCrowd().infer({}, 2, 3).labels == {}

    def test_convergence_reported(self):
        answers, _t, n_ann = simulate_answers(n_objects=60)
        result = ZenCrowd(max_iter=200).infer(answers, 2, n_ann)
        assert result.converged

    def test_invalid_params_raise(self):
        with pytest.raises(ConfigurationError):
            ZenCrowd(max_iter=0)
        with pytest.raises(ConfigurationError):
            ZenCrowd(initial_reliability=1.0)
        with pytest.raises(ConfigurationError):
            ZenCrowd(smoothing=-1)
