"""Tests for the runtime array contracts (repro.analysis.contracts)."""

import numpy as np
import pytest

from repro.analysis.contracts import (
    ContractViolation,
    contract_registry,
    contracts_active,
    parse_shape,
    prob_simplex,
    row_stochastic,
    shaped,
)
from repro.exceptions import ConfigurationError, ReproError


# ----------------------------------------------------------------------
# shaped
# ----------------------------------------------------------------------
def test_shaped_accepts_matching_shapes():
    """A call whose arrays satisfy the spec passes through untouched."""

    @shaped(answers="(n_objects, n_workers)", result="(n_objects,)")
    def label(answers):
        return np.zeros(answers.shape[0])

    assert label(np.zeros((4, 3))).shape == (4,)


def test_shaped_rejects_wrong_ndim():
    """A 1-D array where the spec demands 2-D raises ContractViolation."""

    @shaped(answers="(n_objects, n_workers)")
    def label(answers):
        return answers

    with pytest.raises(ContractViolation, match="must be 2-D"):
        label(np.zeros(4))


def test_shaped_rejects_transposed_matrix():
    """Symbolic bindings are shared, so a transposed matrix is caught."""

    @shaped(answers="(n_objects, n_workers)", proba="(n_objects, n_classes)")
    def combine(answers, proba):
        return answers.shape

    answers = np.zeros((5, 3))
    combine(answers, np.zeros((5, 2)))  # consistent n_objects: fine
    with pytest.raises(ContractViolation, match="transposed"):
        combine(answers.T, np.zeros((5, 2)))


def test_shaped_result_shares_bindings_with_arguments():
    """The return value is checked against symbols bound by the inputs."""

    @shaped(answers="(n_objects, n_workers)", result="(n_objects,)")
    def label(answers):
        return np.zeros(answers.shape[1])  # wrong axis on purpose

    with pytest.raises(ContractViolation, match="return value"):
        label(np.zeros((4, 3)))


def test_shaped_integer_and_wildcard_tokens():
    """Integer tokens pin exact sizes; ``_`` matches anything."""

    @shaped(vec="(_, 3)")
    def f(vec):
        return vec

    f(np.zeros((7, 3)))
    with pytest.raises(ContractViolation):
        f(np.zeros((7, 4)))


def test_shaped_skips_none_arguments():
    """Optional (None) arguments are not shape-checked."""

    @shaped(features="(n, f)")
    def f(features=None):
        return features

    assert f() is None


def test_shaped_unknown_parameter_is_configuration_error():
    """Decorating with a spec for a missing parameter fails fast."""
    with pytest.raises(ConfigurationError, match="no parameter"):

        @shaped(nope="(n,)")
        def f(x):
            return x


def test_parse_shape_rejects_bad_tokens():
    """Malformed dimension tokens are a configuration error."""
    assert parse_shape("(n_objects, n_workers)") == ("n_objects", "n_workers")
    with pytest.raises(ConfigurationError):
        parse_shape("(n-objects,)")


# ----------------------------------------------------------------------
# row_stochastic / prob_simplex
# ----------------------------------------------------------------------
def test_row_stochastic_accepts_confusion_matrix():
    """A row-stochastic matrix (Eq. 7-8 invariant) passes."""

    @row_stochastic
    def use(matrix):
        return matrix

    use(np.array([[0.9, 0.1], [0.2, 0.8]]))


def test_row_stochastic_rejects_bad_row_sums():
    """Rows not summing to one violate the contract."""

    @row_stochastic
    def use(matrix):
        return matrix

    with pytest.raises(ContractViolation, match="sum to 1"):
        use(np.array([[0.9, 0.3], [0.2, 0.8]]))


def test_row_stochastic_rejects_negative_entries():
    """Negative entries can still sum to one; they must be caught too."""

    @row_stochastic
    def use(matrix):
        return matrix

    with pytest.raises(ContractViolation, match="negative"):
        use(np.array([[1.2, -0.2], [0.5, 0.5]]))


def test_row_stochastic_result_form():
    """``result=True`` checks the return value instead of an argument."""

    @row_stochastic(result=True)
    def normalise(counts):
        return counts / counts.sum(axis=-1, keepdims=True)

    normalise(np.ones((2, 3)))

    @row_stochastic(result=True)
    def broken(counts):
        return counts

    with pytest.raises(ContractViolation):
        broken(np.ones((2, 3)))


def test_prob_simplex_vector_and_stack():
    """Vectors and stacks of vectors both live on the simplex."""

    @prob_simplex
    def use(vec):
        return vec

    use(np.array([0.25, 0.75]))
    use(np.full((4, 2), 0.5))
    with pytest.raises(ContractViolation):
        use(np.array([0.25, 0.5]))


# ----------------------------------------------------------------------
# Toggling and registry
# ----------------------------------------------------------------------
def test_disabled_contracts_return_original_function(monkeypatch):
    """With REPRO_CONTRACTS=0 the decorators are identity: zero overhead."""
    monkeypatch.setenv("REPRO_CONTRACTS", "0")
    assert not contracts_active()

    def f(matrix):
        return matrix

    assert shaped(matrix="(n, k)")(f) is f
    assert row_stochastic(f) is f
    assert prob_simplex("matrix")(f) is f
    # And the disabled wrapper really skips the check:
    shaped(matrix="(n, k)")(f)(np.zeros(3))


def test_enabled_flag_overrides_environment(monkeypatch):
    """``enabled=`` beats the environment in both directions."""
    monkeypatch.setenv("REPRO_CONTRACTS", "0")

    @shaped(vec="(3,)", enabled=True)
    def f(vec):
        return vec

    with pytest.raises(ContractViolation):
        f(np.zeros(4))

    monkeypatch.delenv("REPRO_CONTRACTS")

    def g(vec):
        return vec

    assert shaped(vec="(3,)", enabled=False)(g) is g


def test_contracts_active_default_and_spellings(monkeypatch):
    """Unset means active; 0/false/off/no (any case) disable."""
    monkeypatch.delenv("REPRO_CONTRACTS", raising=False)
    assert contracts_active()
    for value in ("0", "false", "OFF", "No"):
        monkeypatch.setenv("REPRO_CONTRACTS", value)
        assert not contracts_active()
    monkeypatch.setenv("REPRO_CONTRACTS", "1")
    assert contracts_active()


def test_registry_records_even_when_disabled(monkeypatch):
    """Inactive applications still appear in the contracts report."""
    monkeypatch.setenv("REPRO_CONTRACTS", "0")
    before = len(contract_registry())

    @shaped(vec="(n,)")
    def f(vec):
        return vec

    records = contract_registry()
    assert len(records) == before + 1
    assert records[-1].kind == "shaped"
    assert records[-1].active is False
    assert records[-1].to_dict()["function"].endswith("f")


def test_library_contracts_registered_and_active():
    """The joint-EM and DQN paths carry live contracts by default."""
    import repro.inference.joint  # noqa: F401  (registers on import)
    import repro.rl.dqn  # noqa: F401

    names = {r.qualname for r in contract_registry() if r.active}
    assert "_m_step_confusions" in names
    assert "_e_step_posteriors" in names
    assert any(n.endswith("q_values") for n in names)


def test_violation_is_repro_error():
    """ContractViolation folds into the repo's exception hierarchy."""
    assert issubclass(ContractViolation, ReproError)


def test_contracts_report_cli_json(capsys):
    """``contracts-report --format json`` emits the registry as JSON."""
    import json

    from repro.analysis.cli import main as analysis_main

    assert analysis_main(["contracts-report", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == len(payload["contracts"]) > 0
    kinds = {c["kind"] for c in payload["contracts"]}
    assert {"shaped", "row_stochastic", "prob_simplex"} <= kinds
