"""Tests for repro.baselines.common helpers."""

import numpy as np
import pytest

from repro.baselines.common import (
    initial_random_sample,
    rank_annotators_by_quality,
    rank_annotators_by_value,
    train_final_classifier,
)
from repro.crowd.cost import BudgetManager
from repro.crowd.platform import CrowdPlatform
from repro.datasets.synthetic import make_blobs

from conftest import build_pool


@pytest.fixture
def platform():
    labels = np.random.default_rng(0).integers(0, 2, size=20)
    return CrowdPlatform(labels, build_pool(), BudgetManager(100.0))


class TestRankings:
    def test_value_ranking_prefers_cheap_quality(self, platform):
        order = rank_annotators_by_value(platform)
        # Workers (quality ~0.6 / cost 1) beat the expert (0.9 / cost 10).
        assert order[-1] == 3

    def test_quality_ranking_prefers_expert(self, platform):
        order = rank_annotators_by_quality(platform)
        assert order[0] == 3

    def test_rankings_are_permutations(self, platform):
        assert sorted(rank_annotators_by_value(platform)) == [0, 1, 2, 3]
        assert sorted(rank_annotators_by_quality(platform)) == [0, 1, 2, 3]


class TestInitialRandomSample:
    def test_samples_alpha_fraction(self, platform):
        initial_random_sample(platform, alpha=0.2, k_per_object=2, rng=0)
        answered = platform.history.answered_objects()
        assert len(answered) == 4  # 0.2 * 20

    def test_each_sampled_object_gets_k_answers(self, platform):
        initial_random_sample(platform, alpha=0.1, k_per_object=3, rng=0)
        for object_id in platform.history.answered_objects():
            assert platform.history.n_answers(int(object_id)) == 3

    def test_respects_annotator_order(self, platform):
        initial_random_sample(platform, alpha=0.1, k_per_object=1, rng=0,
                              annotator_order=[3, 0, 1, 2])
        for object_id in platform.history.answered_objects():
            assert platform.history.has_answered(int(object_id), 3)

    def test_at_least_one_object(self, platform):
        initial_random_sample(platform, alpha=0.001, k_per_object=1, rng=0)
        assert len(platform.history.answered_objects()) == 1


class TestTrainFinalClassifier:
    def test_returns_none_below_min_labels(self):
        ds = make_blobs(30, 4, rng=0)
        assert train_final_classifier(ds.features, {0: 1}, 2) is None

    def test_returns_none_for_single_class(self):
        ds = make_blobs(30, 4, rng=0)
        labels = {i: 0 for i in range(15)}
        assert train_final_classifier(ds.features, labels, 2) is None

    def test_fits_usable_classifier(self):
        ds = make_blobs(60, 4, separation=5.0, rng=1)
        labels = {i: int(ds.labels[i]) for i in range(40)}
        clf = train_final_classifier(ds.features, labels, 2, rng=0)
        assert clf is not None
        acc = (clf.predict(ds.features) == ds.labels).mean()
        assert acc > 0.8
