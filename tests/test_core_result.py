"""Tests for repro.core.result."""

import numpy as np
import pytest

from repro.core.result import LabelSource, LabellingOutcome
from repro.exceptions import ConfigurationError


def make_outcome(**kwargs):
    defaults = dict(
        framework="test",
        final_labels=np.array([0, 1, 1, 0]),
        label_sources=np.array([0, 0, 1, 2]),
        spent=10.0,
        budget=20.0,
        iterations=3,
    )
    defaults.update(kwargs)
    return LabellingOutcome(**defaults)


class TestLabellingOutcome:
    def test_source_counts(self):
        outcome = make_outcome()
        assert outcome.source_counts() == {
            "human": 2, "enriched": 1, "predicted": 1
        }

    def test_n_objects(self):
        assert make_outcome().n_objects == 4

    def test_evaluate(self):
        outcome = make_outcome()
        report = outcome.evaluate(np.array([0, 1, 0, 0]))
        assert report.accuracy == pytest.approx(0.75)
        assert report.n_evaluated == 4

    def test_shape_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            make_outcome(label_sources=np.array([0, 0]))

    def test_overspend_raises(self):
        with pytest.raises(ConfigurationError):
            make_outcome(spent=25.0)

    def test_negative_spend_raises(self):
        with pytest.raises(ConfigurationError):
            make_outcome(spent=-1.0)

    def test_label_source_enum_values(self):
        assert LabelSource.HUMAN == 0
        assert LabelSource.ENRICHED == 1
        assert LabelSource.PREDICTED == 2
