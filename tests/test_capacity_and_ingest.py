"""Tests for annotator capacity limits and external answer ingestion."""

import numpy as np
import pytest

from repro import BudgetManager, CrowdRL, CrowdRLConfig
from repro.crowd.annotator import Annotator, AnnotatorKind
from repro.crowd.confusion import ConfusionMatrix
from repro.crowd.platform import CrowdPlatform
from repro.crowd.pool import AnnotatorPool
from repro.datasets.synthetic import make_blobs
from repro.exceptions import ConfigurationError
from repro.inference.ingest import (
    answers_from_matrix,
    answers_from_records,
    answers_to_matrix,
)


def capped_pool(capacities=(2, None, None), n_classes=2):
    annotators = []
    streams = np.random.default_rng(0).spawn(len(capacities))
    for i, capacity in enumerate(capacities):
        annotators.append(Annotator(
            annotator_id=i, kind=AnnotatorKind.WORKER,
            confusion=ConfusionMatrix.from_accuracy(n_classes, 0.8),
            cost=1.0, capacity=capacity, _rng=streams[i],
        ))
    return AnnotatorPool(annotators, n_classes)


class TestCapacity:
    def test_ask_rejects_beyond_capacity(self):
        pool = capped_pool()
        platform = CrowdPlatform(np.array([0, 1, 0]), pool,
                                 BudgetManager(100.0))
        platform.ask(0, 0)
        platform.ask(1, 0)
        assert platform.at_capacity(0)
        with pytest.raises(ConfigurationError):
            platform.ask(2, 0)

    def test_ask_batch_skips_full_annotators(self):
        pool = capped_pool()
        platform = CrowdPlatform(np.array([0, 1, 0]), pool,
                                 BudgetManager(100.0))
        records = platform.ask_batch((i, [0]) for i in range(3))
        assert len(records) == 2  # third request silently skipped

    def test_state_masks_full_annotators(self):
        from repro.core.state import LabellingState

        pool = capped_pool(capacities=(1, None, None))
        platform = CrowdPlatform(np.array([0, 1, 0]), pool,
                                 BudgetManager(100.0))
        platform.ask(0, 0)
        state = LabellingState(platform.history, pool, platform.budget)
        mask = state.action_mask()
        assert not mask[:, 0].any()
        assert mask[1:, 1].all()

    def test_uncapped_annotator_never_at_capacity(self):
        pool = capped_pool(capacities=(None,))
        platform = CrowdPlatform(np.array([0, 1]), pool, BudgetManager(100.0))
        platform.ask(0, 0)
        assert not platform.at_capacity(0)

    def test_invalid_capacity_raises(self):
        with pytest.raises(ConfigurationError):
            Annotator(0, AnnotatorKind.WORKER, ConfusionMatrix.uniform(2),
                      1.0, capacity=0)

    def test_crowdrl_runs_with_capped_pool(self):
        dataset = make_blobs(30, 5, separation=3.0, rng=0)
        pool = capped_pool(capacities=(10, 10, 10))
        platform = CrowdPlatform(dataset.labels, pool, BudgetManager(200.0))
        config = CrowdRLConfig(alpha=0.1, batch_size=3,
                               min_truths_for_enrichment=8,
                               train_steps_per_iteration=1)
        outcome = CrowdRL(config, rng=1).run(dataset, platform)
        assert outcome.final_labels.shape == (30,)
        for j in range(3):
            assert platform.history.annotator_load(j) <= 10


class TestIngest:
    def test_from_matrix(self):
        matrix = np.array([
            [1, -1, 0],
            [-1, -1, -1],
            [0, 0, -1],
        ])
        answers = answers_from_matrix(matrix)
        assert answers == {0: {0: 1, 2: 0}, 2: {0: 0, 1: 0}}

    def test_from_matrix_custom_sentinel(self):
        matrix = np.array([[9, 1], [0, 9]])
        answers = answers_from_matrix(matrix, unanswered=9)
        assert answers == {0: {1: 1}, 1: {0: 0}}

    def test_from_matrix_shape_checked(self):
        with pytest.raises(ConfigurationError):
            answers_from_matrix(np.array([1, 2, 3]))

    def test_from_records(self):
        answers = answers_from_records([(0, 1, 1), (0, 2, 0), (3, 1, 1)])
        assert answers == {0: {1: 1, 2: 0}, 3: {1: 1}}

    def test_from_records_duplicate_raises(self):
        with pytest.raises(ConfigurationError):
            answers_from_records([(0, 1, 1), (0, 1, 0)])

    def test_from_records_negative_raises(self):
        with pytest.raises(ConfigurationError):
            answers_from_records([(0, -1, 1)])

    def test_matrix_roundtrip(self):
        answers = {0: {0: 1, 2: 0}, 2: {1: 1}}
        matrix = answers_to_matrix(answers, 3, 3)
        assert answers_from_matrix(matrix) == answers

    def test_to_matrix_range_checked(self):
        with pytest.raises(ConfigurationError):
            answers_to_matrix({5: {0: 0}}, 3, 3)
        with pytest.raises(ConfigurationError):
            answers_to_matrix({0: {5: 0}}, 3, 3)

    def test_ingested_answers_feed_inference(self):
        from repro.inference.majority import MajorityVote

        matrix = np.array([[1, 1, 0], [0, 0, 1]])
        answers = answers_from_matrix(matrix)
        result = MajorityVote().infer(answers, 2, 3)
        assert result.labels == {0: 1, 1: 0}
