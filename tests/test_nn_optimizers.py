"""Tests for repro.nn.optimizers."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.nn.optimizers import SGD, Adam, RMSProp


def quadratic_descend(optimizer, steps=200, start=5.0):
    """Minimise f(x) = x^2 with the given optimizer; return final |x|."""
    x = np.array([start])
    for _ in range(steps):
        grad = 2 * x
        optimizer.step([(x, grad)])
    return abs(float(x[0]))


class TestSGD:
    def test_descends_quadratic(self):
        assert quadratic_descend(SGD(learning_rate=0.1)) < 1e-3

    def test_momentum_descends(self):
        assert quadratic_descend(SGD(learning_rate=0.05, momentum=0.9)) < 1e-2

    def test_single_step_direction(self):
        x = np.array([1.0])
        SGD(learning_rate=0.5).step([(x, np.array([2.0]))])
        assert x[0] == pytest.approx(0.0)

    def test_weight_decay_shrinks(self):
        x = np.array([1.0])
        SGD(learning_rate=0.1, weight_decay=1.0).step([(x, np.array([0.0]))])
        assert x[0] == pytest.approx(0.9)

    def test_invalid_momentum_raises(self):
        with pytest.raises(ConfigurationError):
            SGD(momentum=1.0)

    def test_invalid_lr_raises(self):
        with pytest.raises(ConfigurationError):
            SGD(learning_rate=0)

    def test_separate_velocity_per_param(self):
        a, b = np.array([1.0]), np.array([1.0])
        opt = SGD(learning_rate=0.1, momentum=0.9)
        opt.step([(a, np.array([1.0])), (b, np.array([-1.0]))])
        assert a[0] < 1.0 < b[0]


class TestRMSProp:
    def test_descends_quadratic(self):
        assert quadratic_descend(RMSProp(learning_rate=0.05), steps=500) < 0.05

    def test_invalid_decay_raises(self):
        with pytest.raises(ConfigurationError):
            RMSProp(decay=1.0)


class TestAdam:
    def test_descends_quadratic(self):
        assert quadratic_descend(Adam(learning_rate=0.1), steps=500) < 1e-3

    def test_first_step_magnitude_near_lr(self):
        # With bias correction, Adam's first step is ~learning_rate.
        x = np.array([1.0])
        Adam(learning_rate=0.1).step([(x, np.array([0.5]))])
        assert x[0] == pytest.approx(0.9, abs=1e-6)

    def test_invalid_betas_raise(self):
        with pytest.raises(ConfigurationError):
            Adam(beta1=1.0)
        with pytest.raises(ConfigurationError):
            Adam(beta2=-0.1)
