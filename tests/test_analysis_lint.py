"""Tests for the repro static-analysis lint engine and its six rules.

Each fixture file under ``tests/analysis_fixtures/`` carries one genuine
violation per rule, one clean counterpart and one ``# repro: noqa``
suppressed violation, so these tests pin down both directions: the rule
fires where it should and stays quiet where it must.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.cli import main as analysis_main
from repro.analysis.lint import all_rules, lint_paths, lint_source
from repro.analysis.lint.engine import suppressed_rules

FIXTURES = Path(__file__).parent / "analysis_fixtures"
SRC = Path(__file__).parents[1] / "src"


def rule_ids(findings):
    """The multiset of rule ids in ``findings`` as a sorted list."""
    return sorted(f.rule_id for f in findings)


# ----------------------------------------------------------------------
# Per-rule fixtures: hit fires, clean passes, noqa suppresses
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "fixture, rule_id, n_hits",
    [
        ("bad_rng.py", "REPRO001", 1),
        ("bad_rng_indirect.py", "REPRO001", 3),
        ("bad_defaults.py", "REPRO002", 1),
        ("inference/unvalidated.py", "REPRO003", 1),
        ("bad_excepts.py", "REPRO004", 1),
        ("bad_mutation.py", "REPRO005", 2),
        ("bad_docstrings.py", "REPRO006", 3),
    ],
)
def test_rule_fires_only_on_unsuppressed_hits(fixture, rule_id, n_hits):
    """Every rule reports its hit(s) and nothing from clean/suppressed code."""
    findings = lint_paths([str(FIXTURES / fixture)])
    assert rule_ids(findings) == [rule_id] * n_hits
    source = (FIXTURES / fixture).read_text()
    flagged_lines = {f.line for f in findings}
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "noqa" in line:
            assert lineno not in flagged_lines


def test_state_py_exempt_from_mutation_rule():
    """A ``core/state.py`` path may mutate its state argument (REPRO005)."""
    findings = lint_paths([str(FIXTURES / "core" / "state.py")])
    assert findings == []


def test_finding_fields_and_format():
    """Findings carry path/line/col/rule/severity and render greppably."""
    findings = lint_paths([str(FIXTURES / "bad_rng.py")])
    (finding,) = findings
    assert finding.rule_id == "REPRO001"
    assert finding.severity == "error"
    assert finding.line > 0 and finding.col > 0
    text = finding.format()
    assert "bad_rng.py" in text and "REPRO001" in text
    payload = finding.to_dict()
    assert payload["rule"] == "REPRO001"
    assert payload["line"] == finding.line


def test_syntax_error_becomes_repro000():
    """Unparsable source yields a REPRO000 finding, not an exception."""
    findings = lint_source("def broken(:\n", "broken.py", all_rules())
    assert rule_ids(findings) == ["REPRO000"]


def test_bare_noqa_suppresses_every_rule():
    """``# repro: noqa`` without codes waives all rules on that line."""
    source = '"""Doc."""\nimport numpy as np\n\n\ndef f():\n    """Doc."""\n    return np.random.rand()  # repro: noqa\n'
    assert lint_source(source, "f.py", all_rules()) == []


def test_coded_noqa_only_suppresses_named_rules():
    """``# repro: noqa REPRO002`` must not waive an unrelated rule."""
    source = '"""Doc."""\nimport numpy as np\n\n\ndef f():\n    """Doc."""\n    return np.random.rand()  # repro: noqa REPRO002\n'
    assert rule_ids(lint_source(source, "f.py", all_rules())) == ["REPRO001"]


def test_suppressed_rules_parses_codes():
    """The suppression map distinguishes bare waivers from coded ones."""
    lines = [
        "x = 1  # repro: noqa",
        "y = 2  # repro: noqa REPRO001, REPRO004",
        "z = 3",
    ]
    mapping = suppressed_rules(lines)
    assert mapping[1] is None  # bare: everything
    assert mapping[2] == {"REPRO001", "REPRO004"}
    assert 3 not in mapping


def test_all_rules_select_filters():
    """``all_rules(select=...)`` restricts the registry to named ids."""
    rules = all_rules(select=["REPRO001"])
    assert [r.rule_id for r in rules] == ["REPRO001"]
    assert len(all_rules()) >= 6


# ----------------------------------------------------------------------
# CLI behaviour
# ----------------------------------------------------------------------
def test_cli_nonzero_exit_on_findings(capsys):
    """``lint`` exits 1 when the fixtures trip rules."""
    code = analysis_main(["lint", str(FIXTURES)])
    assert code == 1
    out = capsys.readouterr().out
    assert "REPRO001" in out


def test_cli_json_output_is_valid(capsys):
    """``--format json`` emits a machine-readable findings payload."""
    code = analysis_main(["lint", str(FIXTURES), "--format", "json"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == len(payload["findings"]) > 0
    assert {f["rule"] for f in payload["findings"]} >= {"REPRO001", "REPRO006"}


def test_cli_select_limits_rules(capsys):
    """``--select`` lints with only the requested rules."""
    code = analysis_main(["lint", str(FIXTURES), "--select", "REPRO005",
                          "--format", "json"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert {f["rule"] for f in payload["findings"]} == {"REPRO005"}


def test_cli_missing_path_exits_2(capsys):
    """A nonexistent path is a usage error (exit 2), not a crash."""
    assert analysis_main(["lint", str(FIXTURES / "nope.py")]) == 2


def test_shipped_tree_lints_clean(capsys):
    """The shipped ``src/`` tree must produce zero findings (exit 0)."""
    assert analysis_main(["lint", str(SRC)]) == 0


def test_harness_cli_lint_passthrough(capsys):
    """``repro.harness.cli lint`` forwards to the analysis linter."""
    from repro.harness.cli import main as harness_main

    assert harness_main(["lint", str(SRC)]) == 0
    assert harness_main(["lint", str(FIXTURES / "bad_rng.py")]) == 1
