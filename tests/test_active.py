"""Tests for repro.active (uncertainty, bootstrap MinExpError, selectors)."""

import numpy as np
import pytest

from repro.active.bootstrap import min_exp_error_scores
from repro.active.selectors import RandomSelector, UncertaintySelector
from repro.active.uncertainty import entropy, least_confidence, margin
from repro.classifiers.logistic import LogisticRegressionClassifier
from repro.datasets.synthetic import make_blobs
from repro.exceptions import ConfigurationError


UNIFORM = np.array([[0.5, 0.5]])
CONFIDENT = np.array([[0.99, 0.01]])


class TestUncertainty:
    def test_entropy_ordering(self):
        assert entropy(UNIFORM)[0] > entropy(CONFIDENT)[0]

    def test_entropy_max_at_uniform(self):
        assert entropy(UNIFORM)[0] == pytest.approx(np.log(2))

    def test_margin_ordering(self):
        assert margin(UNIFORM)[0] > margin(CONFIDENT)[0]

    def test_least_confidence_values(self):
        assert least_confidence(CONFIDENT)[0] == pytest.approx(0.01)
        assert least_confidence(UNIFORM)[0] == pytest.approx(0.5)

    def test_1d_input_raises(self):
        with pytest.raises(ConfigurationError):
            entropy(np.array([0.5, 0.5]))


class TestMinExpError:
    def test_uncertain_boundary_scores_higher(self):
        ds = make_blobs(200, 4, separation=4.0, rng=0)
        # Candidates: one at a class mean (easy), one at the origin (hard).
        class0_mean = ds.features[ds.labels == 0].mean(axis=0)
        candidates = np.vstack([class0_mean, np.zeros(4)])
        scores = min_exp_error_scores(
            lambda: LogisticRegressionClassifier(4, 2),
            ds.features, ds.labels, candidates,
            n_bootstrap=5, rng=1,
        )
        assert scores[1] > scores[0]

    def test_no_labelled_data_gives_uniform_max(self):
        scores = min_exp_error_scores(
            lambda: LogisticRegressionClassifier(3, 2),
            np.empty((0, 3)), np.empty(0, dtype=int), np.ones((4, 3)),
            rng=0,
        )
        np.testing.assert_array_equal(scores, 1.0)

    def test_handles_single_class_resamples(self):
        # Tiny labelled set makes single-class bootstrap draws likely;
        # the top-up logic must keep the classifier fittable.
        x = np.array([[0.0], [1.0], [2.0]])
        y = np.array([0, 0, 1])
        scores = min_exp_error_scores(
            lambda: LogisticRegressionClassifier(1, 2),
            x, y, np.array([[0.5], [1.5]]), n_bootstrap=8, rng=2,
        )
        assert scores.shape == (2,)
        assert np.isfinite(scores).all()

    def test_invalid_bootstrap_count_raises(self):
        with pytest.raises(ConfigurationError):
            min_exp_error_scores(
                lambda: LogisticRegressionClassifier(1, 2),
                np.ones((2, 1)), np.array([0, 1]), np.ones((1, 1)),
                n_bootstrap=0,
            )

    def test_length_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            min_exp_error_scores(
                lambda: LogisticRegressionClassifier(1, 2),
                np.ones((3, 1)), np.array([0, 1]), np.ones((1, 1)),
            )


class TestSelectors:
    def test_random_selector_size_and_membership(self):
        selector = RandomSelector(rng=0)
        chosen = selector.select([10, 20, 30, 40], 2)
        assert len(chosen) == 2
        assert set(chosen) <= {10, 20, 30, 40}

    def test_random_selector_no_duplicates(self):
        chosen = RandomSelector(rng=0).select(list(range(10)), 10)
        assert len(set(chosen)) == 10

    def test_random_selector_caps_at_pool(self):
        assert len(RandomSelector(rng=0).select([1, 2], 5)) == 2

    def test_random_selector_empty(self):
        assert RandomSelector(rng=0).select([], 3) == []

    def test_uncertainty_selector_picks_most_uncertain(self):
        proba = np.array([[0.95, 0.05], [0.55, 0.45], [0.7, 0.3]])
        chosen = UncertaintySelector().select([100, 200, 300], 2, proba)
        assert chosen == [200, 300]

    def test_uncertainty_selector_requires_proba(self):
        with pytest.raises(ConfigurationError):
            UncertaintySelector().select([1, 2], 1)

    def test_uncertainty_selector_length_check(self):
        with pytest.raises(ConfigurationError):
            UncertaintySelector().select([1, 2], 1, np.ones((3, 2)) / 2)

    def test_invalid_batch_size_raises(self):
        with pytest.raises(ConfigurationError):
            RandomSelector(rng=0).select([1], 0)
