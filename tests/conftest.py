"""Shared fixtures: small datasets, pools and platforms for fast tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro import BudgetManager, CostModel, make_platform
from repro.crowd.annotator import Annotator, AnnotatorKind
from repro.crowd.confusion import ConfusionMatrix
from repro.crowd.pool import AnnotatorPool
from repro.datasets.synthetic import make_blobs


@pytest.fixture(autouse=True)
def _fresh_policy_cache():
    """Clear the offline-policy cache around every test.

    A warm cache skips pretraining (and its RNG draws), so leakage across
    tests would make RL-framework results depend on test execution order
    and could mask regressions.
    """
    from repro.harness.experiment import clear_pretrained_policies

    clear_pretrained_policies()
    yield
    clear_pretrained_policies()


@pytest.fixture
def rng():
    return np.random.default_rng(42)


@pytest.fixture
def tiny_dataset():
    """60 objects, 8 features, binary, easily separable."""
    return make_blobs(60, 8, separation=3.0, name="tiny", rng=7)


@pytest.fixture
def hard_dataset():
    """80 objects, 10 features, hard task."""
    return make_blobs(80, 10, separation=1.5, name="hard", rng=11)


def build_pool(n_classes=2, worker_accs=(0.7, 0.65, 0.75), expert_accs=(0.95,),
               worker_cost=1.0, expert_cost=10.0, seed=5):
    """Deterministic pool with symmetric confusion matrices."""
    streams = np.random.default_rng(seed).spawn(len(worker_accs) + len(expert_accs))
    annotators = []
    for i, acc in enumerate(worker_accs):
        annotators.append(Annotator(
            annotator_id=i, kind=AnnotatorKind.WORKER,
            confusion=ConfusionMatrix.from_accuracy(n_classes, acc),
            cost=worker_cost, _rng=streams[i],
        ))
    for j, acc in enumerate(expert_accs):
        i = len(worker_accs) + j
        annotators.append(Annotator(
            annotator_id=i, kind=AnnotatorKind.EXPERT,
            confusion=ConfusionMatrix.from_accuracy(n_classes, acc),
            cost=expert_cost, _rng=streams[i],
        ))
    return AnnotatorPool(annotators, n_classes)


@pytest.fixture
def pool():
    return build_pool()


@pytest.fixture
def platform(tiny_dataset, pool):
    from repro.crowd.platform import CrowdPlatform

    return CrowdPlatform(tiny_dataset.labels, pool, BudgetManager(500.0))


@pytest.fixture
def small_platform(tiny_dataset):
    return make_platform(tiny_dataset, n_workers=3, n_experts=1,
                         budget=400.0, rng=3)
