"""Tests for the CLI and serialization modules."""

import numpy as np
import pytest

from repro.core.result import LabellingOutcome
from repro.exceptions import ConfigurationError
from repro.harness.cli import build_parser, main
from repro.harness.serialization import (
    load_outcome,
    load_policy_weights,
    save_outcome,
    save_policy_weights,
)
from repro.rl.qnetwork import QNetwork


class TestCLI:
    def test_parser_accepts_fig_commands(self):
        parser = build_parser()
        for name in ("fig4", "fig5", "fig6", "fig7", "fig8"):
            args = parser.parse_args([name, "--scale", "0.01"])
            assert args.command == name
            assert args.scale == 0.01

    def test_parser_run_command(self):
        args = build_parser().parse_args(
            ["run", "--framework", "OBA", "--dataset", "S12C"]
        )
        assert args.framework == "OBA"

    def test_run_command_executes(self, capsys):
        code = main([
            "run", "--framework", "OBA", "--dataset", "S12C",
            "--scale", "0.02", "--workers", "2", "--experts", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "precision=" in out
        assert "OBA" in out

    def test_fig8_command_executes(self, capsys):
        code = main(["fig8", "--scale", "0.015"])
        assert code == 0
        out = capsys.readouterr().out
        assert "CrowdRL" in out and "M3" in out

    def test_unknown_framework_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--framework", "GPT", "--dataset", "S12C"]
            )


class TestOutcomeSerialization:
    def make_outcome(self):
        return LabellingOutcome(
            framework="CrowdRL",
            final_labels=np.array([0, 1, 1]),
            label_sources=np.array([0, 1, 2]),
            spent=12.5,
            budget=100.0,
            iterations=4,
            reward_history=[0.1, -0.2],
            extras={"n_truths": np.int64(3), "qualities": np.array([0.5])},
        )

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "outcome.json"
        outcome = self.make_outcome()
        save_outcome(outcome, path)
        loaded = load_outcome(path)
        np.testing.assert_array_equal(loaded.final_labels, outcome.final_labels)
        np.testing.assert_array_equal(loaded.label_sources,
                                      outcome.label_sources)
        assert loaded.spent == outcome.spent
        assert loaded.reward_history == outcome.reward_history
        assert loaded.extras["n_truths"] == 3

    def test_missing_field_raises(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text('{"framework": "x"}')
        with pytest.raises(ConfigurationError):
            load_outcome(path)


class TestPolicySerialization:
    def test_roundtrip_preserves_predictions(self, tmp_path):
        qnet = QNetwork(5, rng=0)
        path = tmp_path / "policy.npz"
        save_policy_weights(qnet.get_weights(), path)
        loaded = load_policy_weights(path)
        other = QNetwork(5, rng=1)
        other.set_weights(loaded)
        x = np.random.default_rng(2).normal(size=(6, 5))
        np.testing.assert_allclose(qnet.predict(x), other.predict(x))

    def test_layer_structure_preserved(self, tmp_path):
        qnet = QNetwork(4, hidden=(8, 4), rng=0)
        path = tmp_path / "policy.npz"
        weights = qnet.get_weights()
        save_policy_weights(weights, path)
        loaded = load_policy_weights(path)
        assert len(loaded) == len(weights)
        for orig, back in zip(weights, loaded):
            assert set(orig) == set(back)
