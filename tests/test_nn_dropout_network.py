"""Integration tests: dropout inside networks, training-loop edge cases."""

import numpy as np
import pytest

from repro.nn.layers import Dense, Dropout, ReLU
from repro.nn.losses import MeanSquaredError
from repro.nn.network import Network
from repro.nn.optimizers import Adam
from repro.nn.train import train_network


def dropout_net(rate=0.3):
    rng = np.random.default_rng(0)
    return Network([
        Dense(4, 16, rng=rng),
        ReLU(),
        Dropout(rate, rng=rng),
        Dense(16, 1, rng=rng),
    ])


class TestDropoutInNetwork:
    def test_inference_deterministic(self):
        net = dropout_net()
        x = np.ones((3, 4))
        np.testing.assert_array_equal(
            net.forward(x, training=False), net.forward(x, training=False)
        )

    def test_training_forward_stochastic(self):
        net = dropout_net(rate=0.5)
        x = np.ones((8, 4))
        a = net.forward(x, training=True)
        b = net.forward(x, training=True)
        assert not np.allclose(a, b)

    def test_trains_through_dropout(self):
        net = dropout_net(rate=0.2)
        rng = np.random.default_rng(1)
        x = rng.normal(size=(64, 4))
        y = x[:, :1] * 2.0
        result = train_network(net, x, y, MeanSquaredError(), Adam(0.01),
                               epochs=60, rng=0)
        assert result.final_loss < result.loss_history[0]


class TestTrainLoopEdges:
    def test_no_shuffle_is_deterministic(self):
        def run():
            net = Network.mlp(3, [4], 1, rng=0)
            x = np.arange(12, dtype=float).reshape(4, 3)
            y = np.ones((4, 1))
            train_network(net, x, y, MeanSquaredError(), Adam(0.01),
                          epochs=3, shuffle=False)
            return net.forward(x)

        np.testing.assert_array_equal(run(), run())

    def test_batch_larger_than_data(self):
        net = Network.mlp(2, [4], 1, rng=0)
        x = np.ones((3, 2))
        y = np.zeros((3, 1))
        result = train_network(net, x, y, MeanSquaredError(), Adam(0.01),
                               epochs=2, batch_size=100, rng=0)
        assert result.epochs_run == 2

    def test_invalid_epochs_and_batch(self):
        from repro.exceptions import ConfigurationError

        net = Network.mlp(2, [4], 1, rng=0)
        with pytest.raises(ConfigurationError):
            train_network(net, np.ones((2, 2)), np.ones((2, 1)),
                          MeanSquaredError(), Adam(0.01), epochs=0)
        with pytest.raises(ConfigurationError):
            train_network(net, np.ones((2, 2)), np.ones((2, 1)),
                          MeanSquaredError(), Adam(0.01), batch_size=0)

    def test_1d_x_rejected(self):
        from repro.exceptions import ConfigurationError

        net = Network.mlp(2, [4], 1, rng=0)
        with pytest.raises(ConfigurationError):
            train_network(net, np.ones(4), np.ones((4, 1)),
                          MeanSquaredError(), Adam(0.01))
