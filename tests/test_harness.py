"""Tests for repro.harness (experiments, figures, reporting)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.harness.experiment import (
    ExperimentSetting,
    make_framework,
    paper_budget,
    run_comparison,
    run_experiment,
)
from repro.harness.figures import FigureResult, _split_pool, fig8
from repro.harness.report import render_figure, render_figures
from repro.utils.rng import as_rng


class TestPaperBudget:
    def test_speech_budget(self):
        assert paper_budget("S12CP", 1.0) == 10_000.0
        assert paper_budget("S3C", 0.1) == 1_000.0

    def test_fashion_budget(self):
        assert paper_budget("Fashion", 1.0) == 160_000.0


class TestExperimentSetting:
    def test_budget_defaults_to_paper(self):
        setting = ExperimentSetting("S12CP", scale=0.1)
        assert setting.resolve_budget() == 1_000.0

    def test_explicit_budget_wins(self):
        setting = ExperimentSetting("S12CP", scale=0.1, budget=42.0)
        assert setting.resolve_budget() == 42.0

    def test_subsample_scales_budget(self):
        setting = ExperimentSetting("S12CP", scale=0.1, subsample=0.5)
        assert setting.resolve_budget() == 500.0


class TestMakeFramework:
    @pytest.mark.parametrize("name", [
        "CrowdRL", "DLTA", "OBA", "IDLE", "DALC", "Hybrid", "M1", "M2", "M3",
    ])
    def test_all_names_instantiate(self, name):
        setting = ExperimentSetting("S12CP", scale=0.02)
        framework = make_framework(name, setting, as_rng(0))
        assert hasattr(framework, "run")

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            make_framework("GPT", ExperimentSetting("S12CP"), as_rng(0))


class TestRunExperiment:
    def test_returns_scored_result(self):
        setting = ExperimentSetting("S12CP", scale=0.02, seed=0)
        result = run_experiment("DLTA", setting)
        assert 0.0 <= result.report.accuracy <= 1.0
        assert result.outcome.spent <= setting.resolve_budget() + 1e-9

    def test_shared_dataset_reused(self):
        from repro.datasets.registry import load_dataset

        setting = ExperimentSetting("S12C", scale=0.02, seed=0)
        dataset = load_dataset("S12C", scale=0.02, rng=0)
        result = run_experiment("OBA", setting, dataset=dataset)
        assert result.report.n_evaluated == dataset.n_objects

    def test_pretrain_flag_off_is_faster_path(self):
        setting = ExperimentSetting("S12C", scale=0.02, seed=0)
        result = run_experiment("CrowdRL", setting, pretrain=False)
        assert result.outcome.final_labels.size > 0

    def test_subsample_applied(self):
        setting = ExperimentSetting("S12C", scale=0.04, subsample=0.5, seed=0)
        full = ExperimentSetting("S12C", scale=0.04, seed=0)
        sub_result = run_experiment("OBA", setting)
        full_result = run_experiment("OBA", full)
        assert sub_result.report.n_evaluated < full_result.report.n_evaluated


class TestRunComparison:
    def test_same_pool_for_all_frameworks(self):
        setting = ExperimentSetting("S12C", scale=0.02, seed=3)
        reports = run_comparison(("OBA", "DLTA"), setting)
        assert set(reports) == {"OBA", "DLTA"}

    def test_invalid_seed_count_raises(self):
        with pytest.raises(ConfigurationError):
            run_comparison(("OBA",), ExperimentSetting("S12C"), n_seeds=0)

    def test_n_evaluated_comes_from_shared_dataset(self):
        from repro.datasets.registry import load_dataset

        setting = ExperimentSetting("S12C", scale=0.02, seed=3)
        reports = run_comparison(("OBA", "DLTA"), setting)
        expected = load_dataset("S12C", scale=0.02, rng=3).n_objects
        assert all(r.n_evaluated == expected for r in reports.values())

    def test_n_evaluated_respects_subsample(self):
        setting = ExperimentSetting("S12C", scale=0.04, subsample=0.5, seed=0)
        full = ExperimentSetting("S12C", scale=0.04, seed=0)
        sub = run_comparison(("OBA",), setting)["OBA"]
        whole = run_comparison(("OBA",), full)["OBA"]
        assert 0 < sub.n_evaluated < whole.n_evaluated


class TestFigures:
    def test_split_pool(self):
        # Growing pools add workers; experts stay scarce (1, then 2).
        assert _split_pool(3) == (2, 1)
        assert _split_pool(5) == (4, 1)
        assert _split_pool(7) == (5, 2)

    def test_split_pool_invalid(self):
        with pytest.raises(ConfigurationError):
            _split_pool(0)

    def test_fig8_structure(self):
        result = fig8(scale=0.015, datasets=("S12C",))
        assert result.metric == "accuracy"
        assert set(result.series) == {"M1", "M2", "M3", "CrowdRL"}
        for values in result.series.values():
            assert len(values) == 1
            assert 0.0 <= values[0] <= 1.0


class TestReport:
    def test_render_figure(self):
        result = FigureResult("figX", "dataset", ["A", "B"])
        result.add("CrowdRL", 0.9)
        result.add("CrowdRL", 0.95)
        result.add("DLTA", 0.7)
        result.add("DLTA", 0.75)
        text = render_figure(result)
        assert "CrowdRL" in text and "0.900" in text and "0.750" in text

    def test_render_figures_joins(self):
        a = FigureResult("f1", "x", [1])
        a.add("s", 0.5)
        b = FigureResult("f2", "x", [1])
        b.add("s", 0.6)
        text = render_figures([a, b])
        assert "f1" in text and "f2" in text
