"""ExperimentSpec consolidation: the spec is the only run-options entry point."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.harness.experiment import (
    ExperimentSetting,
    ExperimentSpec,
    run_experiment,
)

SETTING = ExperimentSetting("S12CP", scale=0.02, seed=3)


class TestSpecValidation:
    def test_defaults(self):
        spec = ExperimentSpec()
        assert spec.faults is None
        assert spec.resilient is None
        assert spec.checkpoint_path is None
        assert spec.checkpoint_every == 50
        assert spec.resume is False
        assert spec.metrics is None
        assert spec.metrics_out is None

    def test_checkpoint_every_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            ExperimentSpec(checkpoint_every=0)

    def test_resume_requires_checkpoint_path(self):
        with pytest.raises(ConfigurationError):
            ExperimentSpec(resume=True)


class TestLegacyKwargsRemoved:
    """The pre-spec per-option kwargs warned for one release, then left."""

    @pytest.mark.parametrize("kwarg", [
        {"faults": 0.0},
        {"resilient": True},
        {"checkpoint_path": "run.ckpt"},
        {"checkpoint_every": 10},
        {"resume": True},
        {"platform_hook": lambda p: p},
        {"metrics": True},
        {"metrics_out": "run.jsonl"},
    ])
    def test_legacy_kwargs_are_rejected(self, kwarg):
        with pytest.raises(TypeError, match="unexpected keyword argument"):
            run_experiment("DLTA", SETTING, pretrain=False, **kwarg)

    def test_spec_runs_are_deterministic(self):
        first = run_experiment("DLTA", SETTING,
                               ExperimentSpec(faults=0.0, resilient=True),
                               pretrain=False)
        again = run_experiment("DLTA", SETTING,
                               ExperimentSpec(faults=0.0, resilient=True),
                               pretrain=False)
        assert first.report == again.report
        assert np.array_equal(first.outcome.final_labels,
                              again.outcome.final_labels)
        assert first.outcome.spent == again.outcome.spent

    def test_spec_checkpoint_roundtrip(self, tmp_path):
        path = tmp_path / "run.ckpt"
        first = run_experiment(
            "DLTA", SETTING,
            ExperimentSpec(checkpoint_path=path, checkpoint_every=10),
            pretrain=False,
        )
        resumed = run_experiment(
            "DLTA", SETTING,
            ExperimentSpec(checkpoint_path=path, resume=True),
            pretrain=False,
        )
        assert resumed.report == first.report

    def test_plain_call_does_not_warn(self, recwarn):
        run_experiment("DLTA", SETTING, pretrain=False)
        assert not [w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]
