"""ExperimentSpec consolidation and the deprecated-kwarg compatibility path."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.harness.experiment import (
    ExperimentSetting,
    ExperimentSpec,
    run_experiment,
)

SETTING = ExperimentSetting("S12CP", scale=0.02, seed=3)


class TestSpecValidation:
    def test_defaults(self):
        spec = ExperimentSpec()
        assert spec.faults is None
        assert spec.resilient is None
        assert spec.checkpoint_path is None
        assert spec.checkpoint_every == 50
        assert spec.resume is False
        assert spec.metrics is None
        assert spec.metrics_out is None

    def test_checkpoint_every_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            ExperimentSpec(checkpoint_every=0)

    def test_resume_requires_checkpoint_path(self):
        with pytest.raises(ConfigurationError):
            ExperimentSpec(resume=True)


class TestLegacyKwargs:
    def test_legacy_kwargs_warn(self):
        with pytest.warns(DeprecationWarning, match="deprecated"):
            run_experiment("DLTA", SETTING, pretrain=False, faults=0.0)

    def test_legacy_equals_spec(self):
        with pytest.warns(DeprecationWarning):
            legacy = run_experiment("DLTA", SETTING, pretrain=False,
                                    faults=0.0, resilient=True)
        spec = run_experiment("DLTA", SETTING,
                              ExperimentSpec(faults=0.0, resilient=True),
                              pretrain=False)
        assert legacy.report == spec.report
        assert np.array_equal(legacy.outcome.final_labels,
                              spec.outcome.final_labels)
        assert legacy.outcome.spent == spec.outcome.spent

    def test_spec_plus_legacy_kwargs_is_an_error(self):
        with pytest.raises(ConfigurationError, match="not both"):
            run_experiment("DLTA", SETTING, ExperimentSpec(), faults=0.1)

    def test_legacy_checkpoint_kwargs_roundtrip(self, tmp_path):
        path = tmp_path / "run.ckpt"
        with pytest.warns(DeprecationWarning):
            first = run_experiment("DLTA", SETTING, pretrain=False,
                                   checkpoint_path=path, checkpoint_every=10)
        resumed = run_experiment(
            "DLTA", SETTING,
            ExperimentSpec(checkpoint_path=path, resume=True),
            pretrain=False,
        )
        assert resumed.report == first.report

    def test_plain_call_does_not_warn(self, recwarn):
        run_experiment("DLTA", SETTING, pretrain=False)
        assert not [w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]
