"""REPRO005 fixture: in-place writes to protected args, clean, waiver."""


def hit(state):
    """Subscript write through a protected argument (flagged)."""
    state["labels"] = []
    return state


def hit_method(history):
    """Mutating method call on a protected argument (flagged)."""
    history.append(1)
    return history


def clean(state):
    """Copy before writing (allowed)."""
    fresh = dict(state)
    fresh["labels"] = []
    return fresh


def suppressed(answers):
    """In-place update with an inline waiver (suppressed)."""
    answers.update({0: {}})  # repro: noqa REPRO005
    return answers
