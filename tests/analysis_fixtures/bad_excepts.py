"""REPRO004 fixture: bare/swallowing handlers, a clean one, a waiver."""


def hit():
    """Bare except that swallows everything (flagged)."""
    try:
        return 1 / 0
    except:
        pass


def clean():
    """Typed handler that actually handles (allowed)."""
    try:
        return 1 / 0
    except ZeroDivisionError as exc:
        raise ValueError("division in fixture") from exc


def suppressed():
    """Swallowing handler with an inline waiver (suppressed)."""
    try:
        return 1 / 0
    except ZeroDivisionError:  # repro: noqa REPRO004
        pass
