"""REPRO013 fixture: module-global mutable state written after import time.

Two hits, both anchored at the offending *definitions*: a module-level
cache dict written through a subscript from a function body, and a
backend name rebound via ``global``.  The annotated process-local
registry and the function-local accumulator stay silent.
"""

_RESULT_CACHE: dict = {}

_ACTIVE_BACKEND = "serial"

_LOCAL_REGISTRY: dict = {}  # repro: process-local — rebuilt identically at import time in every process


def hit_cache_write(key, value):
    """Writes the module dict after import (flags the definition)."""
    _RESULT_CACHE[key] = value
    return _RESULT_CACHE


def hit_rebinding(name):
    """Rebinds a module global via ``global`` (flags the definition)."""
    global _ACTIVE_BACKEND
    _ACTIVE_BACKEND = name


def register_local(key, value):
    """Mutating the annotated registry (silent)."""
    _LOCAL_REGISTRY[key] = value


def clean_local_accumulator(items):
    """A function-local dict is not shared state (silent)."""
    totals = {}
    for item in items:
        totals[item] = totals.get(item, 0) + 1
    return totals
