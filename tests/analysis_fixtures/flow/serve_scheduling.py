"""REPRO022 fixture: dispatch off the (due, seq) total order.

Three hits: a completion heap pushed without the seq tie-breaker, a
``min()`` over the in-flight dict keyed by due alone, and dispatch by
iterating a set of futures.  The (due, seq, event) push, the seq-keyed
``min``, and the sorted iteration stay silent.
"""

import heapq


class Dispatcher:
    """Tracks in-flight completions for one shared loop."""

    def __init__(self):
        self._heap: list = []
        self._inflight: dict = {}
        self._waiting: set = set()

    def track(self, pending):
        """Feeds the containers the dispatch sites below are judged on."""
        self._inflight[pending.seq] = pending
        self._waiting.add(pending)

    def hit_bare_heap_push(self, pending):
        """Pushes the raw future: ties on due break by heap internals."""
        heapq.heappush(self._heap, pending)

    def hit_min_by_due(self):
        """min() keyed by due alone reintroduces dict order on ties."""
        return min(self._inflight.values(), key=lambda p: p.due)

    def hit_set_dispatch(self):
        """Iterating the waiting set dispatches in hash order."""
        return [p.item for p in self._waiting]

    def clean_total_order_push(self, due, seq, pending):
        """The (due, seq, event) tuple is the total order (silent)."""
        heapq.heappush(self._heap, (due, seq, pending))

    def clean_min_by_total_order(self):
        """Keying by (due, seq) restores determinism (silent)."""
        return min(self._inflight.values(), key=lambda p: (p.due, p.seq))

    def clean_sorted_dispatch(self):
        """Sorting by the total order before dispatch (silent)."""
        return [p.item for p in
                sorted(self._waiting, key=lambda p: (p.due, p.seq))]
