"""REPRO009 regression fixture: closure-captured streams.

The PR 5 analyzer only scanned hand-offs in a function's *own* scope,
so a nested def or dispatch lambda that closed over the enclosing
stream and fed it to two components passed silently.  Two hits: a
nested trial worker and a dispatch lambda, each sharing one captured
stream across two components.  Spawned children and a single captured
consumer stay silent.
"""

import numpy as np


def observe(value=0.0, rng=None):
    """Component A."""
    return value + (rng.random() if rng is not None else 0.0)


def perturb(value=0.0, rng=None):
    """Component B."""
    return value - (rng.random() if rng is not None else 0.0)


def hit_nested_def(seed):
    """The nested trial shares the captured parent stream (flagged)."""
    rng = np.random.default_rng(seed)

    def run_trial():
        first = observe(rng=rng)
        second = perturb(rng=rng)
        return first + second

    return run_trial


def hit_dispatch_lambda(seed):
    """A lambda handing one captured stream to two components (flagged)."""
    rng = np.random.default_rng(seed)
    return lambda x: observe(rng=rng) + perturb(rng=rng) + x


def clean_spawned_children(seed):
    """Each component gets its own spawned child (silent)."""
    rng = np.random.default_rng(seed)
    children = rng.spawn(2)

    def run_trial():
        first = observe(rng=children[0])
        second = perturb(rng=children[1])
        return first + second

    return run_trial


def clean_single_consumer(seed):
    """One captured consumer is ownership, not sharing (silent)."""
    rng = np.random.default_rng(seed)
    return lambda x: observe(rng=rng) + x
