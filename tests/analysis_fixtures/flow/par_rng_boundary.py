"""REPRO014 fixture: parent RNG streams crossing process boundaries.

Three hits: a parent stream pickled directly, one passed as a submit
argument, and a nested worker closing over the parent stream.  Spawned
children and plain per-worker seeds stay silent.
"""

import pickle
from concurrent.futures import ProcessPoolExecutor

import numpy as np


def simulate(stream, scale):
    """A worker body taking whatever stream it is given."""
    return stream.random() * scale


def simulate_from_seed(seed):
    """A worker body that builds its own stream from a plain seed."""
    return np.random.default_rng(seed).random()


def hit_pickled_stream(seed):
    """Pickling the parent stream itself (flagged)."""
    rng = np.random.default_rng(seed)
    return pickle.dumps(rng)


def hit_submit_argument(seed, points):
    """Passing the parent stream as a worker argument (flagged)."""
    rng = np.random.default_rng(seed)
    futures = []
    with ProcessPoolExecutor() as pool:
        for point in points:
            futures.append(pool.submit(simulate, rng, point))
    return futures


def hit_nested_closure(seed, points):
    """A nested worker closing over the parent stream (flagged)."""
    rng = np.random.default_rng(seed)

    def run_point(point):
        return rng.random() + point

    with ProcessPoolExecutor() as pool:
        return list(pool.map(run_point, points))


def clean_spawned_children(seed, points):
    """Each worker gets its own spawned child stream (silent)."""
    rng = np.random.default_rng(seed)
    children = rng.spawn(len(points))
    with ProcessPoolExecutor() as pool:
        return list(pool.map(simulate, children, points))


def clean_seed_per_worker(seed, points):
    """Workers rebuild their streams from plain seeds (silent)."""
    offsets = [seed + index for index in range(len(points))]
    with ProcessPoolExecutor() as pool:
        return list(pool.map(simulate_from_seed, offsets))
