"""REPRO011 regression fixture: ``sorted(key=...)`` that does not order.

The PR 5 analyzer accepted any enclosing ``sorted(...)`` as ordering.
``key=id`` sorts by memory address and a random key draws a fresh
permutation per run — both launder filesystem order through ``sorted``
without fixing it.  Two hits; deterministic keys stay silent.
"""

import glob
import os
import random


def hit_sort_by_id(path):
    """key=id sorts by memory address (flagged)."""
    return sorted(os.listdir(path), key=id)


def hit_sort_by_random(pattern):
    """A random key is a fresh permutation per run (flagged)."""
    return sorted(glob.glob(pattern), key=lambda name: random.random())


def clean_plain_sorted(path):
    """Default lexicographic order (silent)."""
    return sorted(os.listdir(path))


def clean_deterministic_key(path):
    """A deterministic key orders genuinely (silent)."""
    return sorted(os.listdir(path), key=str.lower)
