"""REPRO012 fixture: the keyed ``# repro: wall-clock[<key>]`` exemption.

Three hits: an annotation keyed for a *different* clock than the one
read, an annotation with no justification after the dash, and an
annotation separated from its read by a blank line.  The clean forms —
a same-line keyed annotation and a comment block directly above the
read — stay silent.
"""

import time


def clean_same_line():
    """A matching keyed annotation on the read's line itself (silent)."""
    return time.monotonic()  # repro: wall-clock[time.monotonic] — demo only


def clean_block_above():
    """A matching annotation in the comment block above (silent)."""
    # repro: wall-clock[time.perf_counter] — deliberate: this fixture
    # models a justification long enough to wrap across comment lines.
    return time.perf_counter()


def hit_wrong_key():
    """An exemption never silences a clock it does not name (flagged)."""
    # repro: wall-clock[time.monotonic] — keyed for a different read
    return time.time()


def hit_missing_why():
    """An annotation without a justification does not exempt (flagged)."""
    # repro: wall-clock[time.time]
    return time.time()


def hit_detached_comment():
    """A blank line detaches the annotation from the read (flagged)."""
    # repro: wall-clock[time.monotonic] — not directly above the read

    return time.monotonic()
