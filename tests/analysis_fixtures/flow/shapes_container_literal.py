"""REPRO010 fixture: dims must survive container *literal* construction.

Three hits: a transposed matrix stored through a dict literal, a list
literal, and a tuple literal, each fetched back through the matching
constant subscript.  The clean forms — the declared orientation in a
literal, a starred literal (indices shift), a rebound literal, and a
non-constant key — stay silent.
"""

import numpy as np

from repro.analysis.contracts import shaped


@shaped(result="(n_objects, n_workers)")
def build_answers(n_objects, n_workers):
    """Produce the answer matrix in the paper's |O| x |W| orientation."""
    return np.zeros((n_objects, n_workers))


@shaped(answers="(n_objects, n_workers)")
def per_worker_totals(answers):
    """Consume the answer matrix in declared orientation."""
    return answers.sum(axis=0)


def hit_dict_literal():
    """A dict literal's constant-key slot is a named binding."""
    cache = {"answers": build_answers(4, 3).T}
    return per_worker_totals(cache["answers"])


def hit_list_literal():
    """A list literal's index slot is a named binding."""
    stash = [build_answers(4, 3).T]
    return per_worker_totals(stash[0])


def hit_tuple_literal():
    """A tuple literal's index slot is a named binding."""
    pair = (build_answers(4, 3), build_answers(4, 3).T)
    return per_worker_totals(pair[1])


def clean_dict_literal():
    """The declared orientation stored through a literal stays silent."""
    cache = {"answers": build_answers(4, 3)}
    return per_worker_totals(cache["answers"])


def clean_starred_literal(extra):
    """Elements after a star shift by an unknown amount: untracked."""
    stash = [*extra, build_answers(4, 3).T]
    return per_worker_totals(stash[1])


def clean_rebound_literal():
    """Rebinding the container forgets the literal's tracked slots."""
    cache = {"answers": build_answers(4, 3).T}
    cache = {}
    return per_worker_totals(cache["answers"])


def clean_dynamic_key_literal(key):
    """A non-constant literal key is never tracked."""
    cache = {key: build_answers(4, 3).T}
    return per_worker_totals(cache[key])
