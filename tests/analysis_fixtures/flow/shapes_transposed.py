"""REPRO010 fixture: call sites vs ``@shaped`` interface specs.

Two hits: a deliberately transposed argument (the declared symbol
multiset in the wrong order) and an arity mismatch.  The
correctly-oriented call stays silent, as does a call whose shape the
analyzer cannot know.
"""

import numpy as np

from repro.analysis.contracts import shaped


@shaped(result="(n_objects, n_workers)")
def build_answers(n_objects, n_workers):
    """Produce the answer matrix in the paper's |O| x |W| orientation."""
    return np.zeros((n_objects, n_workers))


@shaped(result="(n_objects,)")
def object_difficulty(n_objects):
    """A per-object vector."""
    return np.zeros(n_objects)


@shaped(answers="(n_objects, n_workers)")
def per_worker_totals(answers):
    """Consume the answer matrix in declared orientation."""
    return answers.sum(axis=0)


def hit_transposed():
    """Passing the transpose where (n_objects, n_workers) is declared."""
    answers = build_answers(4, 3)
    return per_worker_totals(answers.T)


def hit_wrong_arity():
    """Passing a 1-D vector where a 2-D matrix is declared."""
    difficulty = object_difficulty(4)
    return per_worker_totals(difficulty)


def clean_oriented():
    """The declared orientation passes the matrix straight through."""
    answers = build_answers(4, 3)
    return per_worker_totals(answers)


def clean_unknown(payload):
    """An argument of unknown shape is not judged."""
    return per_worker_totals(payload)
