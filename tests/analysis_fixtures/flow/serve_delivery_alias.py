"""REPRO024 fixture: delivered payloads mutated after delivery.

Two hits: the projected records list sorted in place after delivery,
and a delivered batch passed to a helper that mutates its parameter.
The read-only audit and the copy-then-sort form stay silent.
"""


def dedupe_in_place(items):
    """Mutates its parameter: callers alias the delivered objects."""
    items.reverse()
    seen = []
    for item in items:
        if item not in seen:
            seen.append(item)
    return seen


def hit_sort_after_projection(pendings):
    """Sorting the projection rewrites the session's books."""
    records = [p.record for p in pendings]
    records.sort(key=lambda r: r.item_id)
    return records


def hit_mutator_pass(clock):
    """The helper reverses the delivered list in place."""
    delivered = clock.drain()
    return dedupe_in_place(delivered)


def clean_read_only(clock):
    """Reading delivered records is fine (silent)."""
    delivered = clock.drain()
    return len(delivered)


def clean_copy_then_sort(pendings):
    """A copy breaks the alias before mutating (silent)."""
    records = [p.record for p in pendings]
    ordered = list(records)
    ordered.sort(key=lambda r: r.item_id)
    return ordered
