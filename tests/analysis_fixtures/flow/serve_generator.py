"""REPRO023 fixture: episode-generator protocol misuse.

Three hits: an episode advanced by iteration (the records never reach
it), a generator parked on ``self`` with no close() path in the class,
and a yield inside ``try`` without ``finally``.  The send-driven
driver, the closing owner, and the try/finally generator stay silent.
"""


class CollectRequest:
    """The protocol's yield payload."""

    def __init__(self, assignments):
        self.assignments = assignments


def episode(dataset):
    """A well-formed stepwise episode (silent)."""
    records = []
    while dataset:
        batch = dataset.pop()
        answers = yield CollectRequest(batch)
        records.extend(answers)
    return records


def hit_try_without_finally(dataset):
    """close() during the suspension skips the handler's cleanup."""
    ledger = []
    try:
        answers = yield CollectRequest(dataset)
        ledger.extend(answers)
    except ValueError:
        ledger.clear()
    return ledger


def clean_guarded_episode(dataset):
    """finally runs even when close() lands mid-suspension (silent)."""
    ledger = []
    try:
        answers = yield CollectRequest(dataset)
        ledger.extend(answers)
    finally:
        dataset.clear()
    return ledger


def hit_iterating_driver(dataset, collect):
    """A for loop sends None each step: the episode starves."""
    run = episode(dataset)
    for request in run:
        collect(request.assignments)


def clean_send_driver(dataset, collect):
    """One priming next(), then send(records) per batch (silent)."""
    run = episode(dataset)
    request = next(run)
    while True:
        try:
            request = run.send(collect(request.assignments))
        except StopIteration as stop:
            return stop.value


class LeakyOwner:
    """Parks the frame with no way to release it."""

    def start(self, dataset):
        self._episode = episode(dataset)
        return next(self._episode)


class ClosingOwner:
    """The abort path releases the frame (silent)."""

    def start(self, dataset):
        self._episode = episode(dataset)
        return next(self._episode)

    def feed(self, records):
        return self._episode.send(records)

    def close(self):
        self._episode.close()
