"""REPRO011 fixture: unordered enumeration feeding computation.

Three hits: raw ``os.listdir``, raw ``Path.glob`` iteration, and set
iteration.  The ``sorted(...)`` counterparts stay silent, including the
comprehension-inside-sorted form.
"""

import os
from pathlib import Path


def hit_listdir(path):
    """Filesystem order leaks into the result (flagged)."""
    names = os.listdir(path)
    return [name.upper() for name in names]


def hit_glob(path):
    """Path.glob enumerates in filesystem order (flagged)."""
    return [p.stem for p in Path(path).glob("*.npy")]


def hit_set_iteration(items):
    """Hash order leaks into the result (flagged)."""
    return [item for item in set(items)]


def clean_listdir(path):
    """Sorted before use (silent)."""
    return [name.upper() for name in sorted(os.listdir(path))]


def clean_glob(path):
    """The comprehension-inside-sorted form counts as ordered (silent)."""
    return sorted(p.stem for p in Path(path).glob("*.npy"))


def clean_set_iteration(items):
    """Sorted set iteration is deterministic (silent)."""
    return [item for item in sorted(set(items))]
