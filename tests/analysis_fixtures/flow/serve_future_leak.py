"""REPRO019 fixture: pending answers created but never routed.

Two hits: a ``PendingAnswer`` constructed and dropped as a bare
expression statement, and a transitive producer's future bound to a
name nobody reads again.  The routed, returned, and attribute-read
forms stay silent.
"""


class PendingAnswer:
    """A stand-in future for one submitted question."""

    def __init__(self, item):
        self.item = item
        self.seq = 0


def make_pending(item):
    """Transitive producer: callers' results are futures too (silent)."""
    return PendingAnswer(item)


def hit_dropped_expression(items):
    """Constructs a future and drops it on the floor."""
    for item in items:
        PendingAnswer(item)
    return len(items)


def hit_assigned_never_read(item):
    """Binds the producer's future to a name nobody reads."""
    pending = make_pending(item)
    return item


def clean_routed_to_batch(items):
    """Appending to the in-flight batch routes the future (silent)."""
    batch = []
    for item in items:
        pending = make_pending(item)
        batch.append(pending)
    return batch


def clean_returned(item):
    """Returning hands the future to the caller (silent)."""
    return make_pending(item)


def clean_attribute_read(item):
    """Reading the future's attributes afterwards counts as use (silent)."""
    pending = PendingAnswer(item)
    return pending.seq
