"""REPRO016 fixture: in-place mutation aliased across components.

One hit: a helper sorts its parameter in place and the caller then
hands the same list to a *different* component.  The out-parameter
accumulator repeatedly handed to one component, and the helper that
returns a copy instead, stay silent.
"""


def _normalise(weights):
    """Sorts its argument in place — a mutator."""
    weights.sort()
    return weights


def _tally(totals, item):
    """An out-parameter accumulator."""
    totals[item] = totals.get(item, 0) + 1


def _sorted_copy(weights):
    """Returns a new list; the argument is untouched."""
    return sorted(weights)


def publish(values):
    """A distinct downstream component."""
    return list(values)


def hit_aliased_mutation(weights):
    """Mutates, then hands the same object to another component (flagged)."""
    _normalise(weights)
    return publish(weights)


def clean_accumulator(items):
    """Repeated hand-off to one component is an accumulator (silent)."""
    totals = {}
    for item in items:
        _tally(totals, item)
    return totals


def clean_copy(weights):
    """The helper returns a new list instead of mutating (silent)."""
    ordered = _sorted_copy(weights)
    return publish(ordered)
