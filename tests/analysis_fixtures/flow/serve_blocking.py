"""REPRO020 fixture: blocking calls reachable from the event loop.

Two hits inside ``serve_``-scoped functions: a bare ``time.sleep`` and
a lock acquisition.  The keyed-annotated sleep and the pure computation
stay silent.
"""

import threading
import time


def hit_sleep_on_loop(delay):
    """Stalls every session on the shared loop."""
    time.sleep(delay)
    return delay


def hit_lock_acquire(values):
    """Lock acquisition can park the loop's only thread."""
    guard = threading.Lock()
    guard.acquire()
    try:
        return len(values)
    finally:
        guard.release()


def clean_annotated_demo_pause(delay):
    """A keyed annotation excuses a deliberate block (silent)."""
    # repro: blocking[time.sleep] — demo pacing really waits on purpose
    time.sleep(delay)
    return delay


def clean_pure_computation(values):
    """No syscalls, no stalls (silent)."""
    return [value * 2 for value in values]
