"""REPRO009 fixture: one stream feeding several components.

One hit: ``hit_shared_stream`` hands the *same* generator to two
components back to back, coupling their draw sequences.  The spawned,
dispatch-exclusive, and single-component forms all stay silent.
"""

from repro.utils.rng import as_rng, spawn_rngs


class Sampler:
    """A component that draws from the stream it is given."""

    def __init__(self, rng=None):
        """Bind the stream."""
        self.rng = as_rng(rng)


class Shuffler:
    """A second stream-consuming component."""

    def __init__(self, rng=None):
        """Bind the stream."""
        self.rng = as_rng(rng)


def hit_shared_stream(seed):
    """Both components share one stream (flagged)."""
    rng = as_rng(seed)
    sampler = Sampler(rng=rng)
    shuffler = Shuffler(rng=rng)
    return sampler, shuffler


def clean_spawned(seed):
    """Each component gets an independent child stream (silent)."""
    sampler_rng, shuffler_rng = spawn_rngs(seed, 2)
    return Sampler(rng=sampler_rng), Shuffler(rng=shuffler_rng)


def clean_dispatch(seed, kind):
    """Exclusive if/else arms: only one component runs (silent)."""
    rng = as_rng(seed)
    if kind == "sampler":
        return Sampler(rng=rng)
    else:
        return Shuffler(rng=rng)


def clean_return_dispatch(seed, kind):
    """Early-return dispatch: at most one return executes (silent)."""
    rng = as_rng(seed)
    if kind == "sampler":
        return Sampler(rng=rng)
    return Shuffler(rng=rng)


def clean_single(seed):
    """One component, called repeatedly, is still one stream owner (silent)."""
    rng = as_rng(seed)
    return [Sampler(rng=rng) for _ in range(3)]
