"""REPRO015 fixture: payloads that only explode inside the worker.

Three hits: a lambda payload, a nested worker closing over a thread
lock, and an open file handle shipped as a worker argument.  The
module-level function taking plain picklable arguments stays silent.
"""

import threading
from concurrent.futures import ProcessPoolExecutor


def scale_point(point, factor):
    """A picklable module-level worker body."""
    return point * factor


def hit_lambda_payload(points):
    """Submitting a lambda (flagged)."""
    with ProcessPoolExecutor() as pool:
        return list(pool.map(lambda point: point * 2, points))


def hit_captured_lock(points):
    """A nested worker capturing a thread lock (flagged)."""
    guard = threading.Lock()

    def guarded(point):
        with guard:
            return point * 2

    with ProcessPoolExecutor() as pool:
        return list(pool.map(guarded, points))


def hit_shipped_handle(path, points):
    """Shipping an open file handle to the pool (flagged)."""
    sink = open(path, "w")
    futures = []
    with ProcessPoolExecutor() as pool:
        for point in points:
            futures.append(pool.submit(scale_point, point, sink))
    return futures


def clean_module_level(points):
    """A module-level function and plain arguments (silent)."""
    factors = [2.0 for _point in points]
    with ProcessPoolExecutor() as pool:
        return list(pool.map(scale_point, points, factors))
