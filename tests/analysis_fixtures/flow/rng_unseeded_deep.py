"""REPRO007 regression fixture: factory chains beyond the old hop limit.

The PR 5 walk gave up after four project-function hops, so a
``default_factory`` that bottomed out in an unseeded constructor six
hops away passed silently.  Two hits: the literal unseeded call at the
bottom of the chain and the ``default_factory`` resolving through all
six hops.  The mutually recursive factory pair exercises the cycle
guard and stays silent.
"""

from dataclasses import dataclass, field

import numpy as np


def _hop6():
    """The bottom of the chain: a literal unseeded call (flagged)."""
    return np.random.default_rng()


def _hop5():
    return _hop6()


def _hop4():
    return _hop5()


def _hop3():
    return _hop4()


def _hop2():
    return _hop3()


def _hop1():
    return _hop2()


@dataclass
class HitDeepFactory:
    """The factory bottoms out six hops away (flagged)."""

    _rng: np.random.Generator = field(default_factory=_hop1)


def _ping():
    return _pong()


def _pong():
    return _ping()


@dataclass
class CleanMutualRecursion:
    """The cycle-guarded walk terminates quietly (silent)."""

    _factory: object = field(default_factory=_ping)
