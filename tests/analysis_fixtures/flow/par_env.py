"""REPRO018 fixture: environment reads inside worker-reachable code.

Two hits: an ``os.environ`` subscript in the worker body itself and an
``os.getenv`` in a helper the worker calls.  The worker that takes
explicit settings, and the driver-only env read, stay silent.
"""

import os
from concurrent.futures import ProcessPoolExecutor


def _resolve_scratch_dir():
    """Called from the worker — inherits the child environment (flagged)."""
    return os.getenv("REPRO_SCRATCH", "/tmp")


def shard_worker(point):
    """The worker entry: its env subscript below is flagged."""
    tag = os.environ["REPRO_RUN_TAG"]
    return point, tag, _resolve_scratch_dir()


def explicit_worker(point, scratch_dir, tag):
    """A worker threading settings through its payload (silent)."""
    return point, tag, scratch_dir


def launch(points):
    """The driver submits both workers."""
    with ProcessPoolExecutor() as pool:
        flagged = list(pool.map(shard_worker, points))
        quiet = list(pool.map(explicit_worker, points))
    return flagged, quiet


def driver_only_env():
    """An env read never reachable from a worker (silent)."""
    return os.getenv("REPRO_DRIVER_FLAG")
