"""REPRO017 fixture: order-dependent reductions over unordered containers.

Two hits: a float accumulation while iterating a set-typed local, and a
``sum()`` over a merge-built dict's values.  The ``sorted(...)``
iteration and the ``math.fsum`` reduction stay silent.
"""

import math


def hit_set_accumulation(values):
    """+= while iterating a set (flagged)."""
    pending = set(values)
    total = 0.0
    for value in pending:
        total += value
    return total


def hit_merged_dict_sum(shards):
    """sum() over a dict assembled by .update() merges (flagged)."""
    merged = {}
    for shard in shards:
        merged.update(shard)
    return sum(merged.values())


def clean_sorted_iteration(values):
    """Iterating sorted(...) pins the order (silent)."""
    pending = set(values)
    total = 0.0
    for value in sorted(pending):
        total += value
    return total


def clean_fsum(shards):
    """math.fsum is exact and order-independent (silent)."""
    merged = {}
    for shard in shards:
        merged.update(shard)
    return math.fsum(merged.values())
