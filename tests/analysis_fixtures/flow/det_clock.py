"""REPRO012 fixture: wall-clock reads outside the observability layer.

Three hits: a ``time.time()`` call, a ``datetime.now()`` call, and a
clock smuggled as a parameter default.  Injecting the clock as an
argument (the ``repro.obs`` registry pattern) stays silent.
"""

import time
from datetime import datetime


def hit_time_call():
    """Direct wall-clock read (flagged)."""
    return time.time()


def hit_datetime_call():
    """Datetime reads the wall clock too (flagged)."""
    return datetime.now().isoformat()


def hit_clock_default(clock=time.perf_counter):
    """A bare clock reference as a default smuggles the read (flagged)."""
    return clock()


def clean_injected(clock):
    """An injected clock keeps the caller in control (silent)."""
    return clock()
