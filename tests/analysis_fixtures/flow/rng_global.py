"""REPRO008 fixture: global numpy RNG state entering dataflow.

Three hits: the ``np.random`` module object passed as an argument,
bound to a variable, and ``np.random.seed`` mutating process state.
Passing a real generator stays silent.
"""

import numpy as np


def consume(rng):
    """Any callee that draws from whatever it is handed."""
    return rng.random(3)


def hit_passed_as_argument():
    """The module object is not a stream (flagged)."""
    return consume(rng=np.random)


def hit_bound_as_value():
    """Aliasing the module smuggles global state (flagged)."""
    rng = np.random
    return consume(rng=rng)


def hit_seed_call():
    """Re-seeding global state couples unrelated call sites (flagged)."""
    np.random.seed(0)  # repro: noqa REPRO001


def clean_generator(seed):
    """A seeded generator is the sanctioned currency (silent)."""
    return consume(rng=np.random.default_rng(seed))
