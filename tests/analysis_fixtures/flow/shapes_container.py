"""REPRO010 fixture: dims must survive container round-trips.

Three hits: a transposed matrix laundered through ``list(...)``, one
rebuilt from that list via ``np.asarray``, and one stashed under a
constant dict key and fetched back.  The clean forms — the same
round-trips in the declared orientation, a rebound container, and a
non-constant key — stay silent.
"""

import numpy as np

from repro.analysis.contracts import shaped


@shaped(result="(n_objects, n_workers)")
def build_answers(n_objects, n_workers):
    """Produce the answer matrix in the paper's |O| x |W| orientation."""
    return np.zeros((n_objects, n_workers))


@shaped(answers="(n_objects, n_workers)")
def per_worker_totals(answers):
    """Consume the answer matrix in declared orientation."""
    return answers.sum(axis=0)


def hit_list_round_trip():
    """``list(...)`` keeps the element structure: still transposed."""
    answers = build_answers(4, 3)
    rows = list(answers.T)
    return per_worker_totals(rows)


def hit_asarray_of_list():
    """Rebuilding the array from the list does not fix the orientation."""
    answers = build_answers(4, 3)
    rows = list(answers.T)
    return per_worker_totals(np.asarray(rows))


def hit_dict_storage():
    """A constant-key dict slot is a named binding for the transpose."""
    cache = {}
    cache["answers"] = build_answers(4, 3).T
    return per_worker_totals(cache["answers"])


def clean_list_round_trip():
    """The declared orientation survives the same round-trip silently."""
    answers = build_answers(4, 3)
    return per_worker_totals(list(answers))


def clean_dict_storage():
    """A correctly-oriented stored matrix stays silent."""
    cache = {}
    cache["answers"] = build_answers(4, 3)
    return per_worker_totals(cache["answers"])


def clean_rebound_container():
    """Rebinding the container forgets its tracked slots."""
    cache = {}
    cache["answers"] = build_answers(4, 3).T
    cache = {}
    return per_worker_totals(cache.get("answers"))


def clean_dynamic_key(key):
    """A non-constant subscript key is never tracked."""
    cache = {}
    cache[key] = build_answers(4, 3).T
    return per_worker_totals(cache[key])
