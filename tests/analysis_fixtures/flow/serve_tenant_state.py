"""REPRO021 fixture: per-session state parked in shared scope.

Two hits: a registry written to a plain attribute of the shared router
(whose methods take a ``session``), and a registry appended to a
module-global list.  The session-keyed slot and the annotated
process-local list stay silent.
"""

_LEAKED_REGISTRIES: list = []  # repro: noqa REPRO013

_WARMUP_CACHES: list = []  # repro: process-local — rebuilt identically at import time in every process


class AnswerRouter:
    """Shared across every session on the engine."""

    def __init__(self):
        self._per_session: dict = {}

    def route(self, session, payload):
        """The shared entry point (its ``session`` arg marks the class)."""
        return (session, payload)

    def hit_attach(self, registry):
        """Parks one session's registry on the shared router."""
        self.registry = registry

    def clean_bind(self, session, registry):
        """A session-keyed slot preserves isolation (silent)."""
        self._per_session[session] = registry


def hit_register_fallback(registry):
    """Appends one session's registry to a module-global list."""
    _LEAKED_REGISTRIES.append(registry)


def clean_warm_cache(registry):
    """The annotated process-local list is deliberate (silent)."""
    _WARMUP_CACHES.append(registry)
