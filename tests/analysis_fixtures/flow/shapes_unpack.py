"""REPRO010 regression fixture: tuple unpacking and arithmetic.

The PR 5 analyzer forgot dims at any ``a, b = ...`` assignment and at
elementwise arithmetic, so a transposed matrix laundered through either
passed silently.  Two hits: a transposed element received through
tuple-unpacking a helper's return, and a transpose surviving scalar
arithmetic.  The oriented element, a literal-tuple swap, and same-shape
arithmetic stay silent.
"""

import numpy as np

from repro.analysis.contracts import shaped


@shaped(result="(n_objects, n_workers)")
def build_answers(n_objects, n_workers):
    """The answer matrix in the paper's |O| x |W| orientation."""
    return np.zeros((n_objects, n_workers))


@shaped(result="(n_workers, n_objects)")
def build_confusion(n_workers, n_objects):
    """A per-worker confusion block — the transposed orientation."""
    return np.zeros((n_workers, n_objects))


@shaped(answers="(n_objects, n_workers)")
def per_worker_totals(answers):
    """Consume the answer matrix in declared orientation."""
    return answers.sum(axis=0)


def _build_pair(n_objects, n_workers):
    """Return (answers, confusion) as one tuple."""
    return build_answers(n_objects, n_workers), \
        build_confusion(n_workers, n_objects)


def hit_unpacked_transposed():
    """The transposed element of an unpacked pair (flagged)."""
    answers, confusion = _build_pair(4, 3)
    return per_worker_totals(confusion)


def hit_arithmetic_transposed():
    """A transpose surviving scalar arithmetic (flagged)."""
    answers = build_answers(4, 3)
    scaled = answers.T * 2.0
    return per_worker_totals(scaled)


def clean_unpacked_oriented():
    """The correctly-oriented element of the same pair (silent)."""
    answers, confusion = _build_pair(4, 3)
    return per_worker_totals(answers)


def clean_literal_swap():
    """A literal tuple swap is evaluated right-hand-side first (silent)."""
    answers = build_answers(4, 3)
    confusion = build_confusion(3, 4)
    answers, confusion = confusion, answers
    return per_worker_totals(confusion)


def clean_same_shape_arithmetic():
    """Elementwise arithmetic of two same-shape arrays (silent)."""
    answers = build_answers(4, 3)
    centered = answers - answers
    return per_worker_totals(centered)
