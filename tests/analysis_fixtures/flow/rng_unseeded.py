"""REPRO007 fixture: unseeded construction, incl. interprocedural factory.

Three hits: a direct unseeded ``default_rng()`` call, the helper body
that performs it, and a ``default_factory`` that only bottoms out in an
unseeded constructor one project-function hop away — the indirection the
single-module linter cannot see.  The seeded counterparts stay silent.
"""

from dataclasses import dataclass, field

import numpy as np


def _fresh_stream():
    """A helper whose return value is an unseeded stream."""
    return np.random.default_rng()


@dataclass
class HitIndirectFactory:
    """Factory resolves through ``_fresh_stream`` to unseeded (flagged)."""

    _rng: np.random.Generator = field(default_factory=_fresh_stream)


def hit_direct():
    """Direct unseeded construction (flagged)."""
    return np.random.default_rng().random(3)


def clean_seeded(seed):
    """Seed threaded explicitly (silent)."""
    return np.random.default_rng(seed).random(3)


def _seeded_stream():
    """A helper that derives its stream from a fixed seed."""
    return np.random.default_rng(1234)


@dataclass
class CleanSeededFactory:
    """Factory resolves to a *seeded* constructor (silent)."""

    _rng: np.random.Generator = field(default_factory=_seeded_stream)
