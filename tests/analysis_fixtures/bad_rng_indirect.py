"""REPRO001 indirection fixture: three hits, clean counterparts, one waiver.

The unseeded-construction hazard hides behind ``default_factory``
references, lambdas, and parameter defaults; each form gets one hit
here (these were invisible to the PR 1 rule and are exactly the shape
of the real bug fixed in ``repro/crowd/annotator.py``).
"""

from dataclasses import dataclass, field
from typing import Optional

import numpy as np


@dataclass
class HitFactoryReference:
    """Dataclass whose stream factory is an unseeded constructor (flagged)."""

    _rng: np.random.Generator = field(default_factory=np.random.default_rng)


@dataclass
class HitFactoryLambda:
    """Same hazard, hidden one lambda deep (flagged)."""

    _rng: np.random.Generator = field(
        default_factory=lambda: np.random.default_rng()
    )


def hit_parameter_default(rng=np.random.default_rng()):
    """One unseeded stream frozen at import time (flagged)."""
    return rng.random(3)


@dataclass
class CleanExplicitStream:
    """The fix: accept an explicit stream, no hidden construction."""

    _rng: Optional[np.random.Generator] = field(default=None)


def clean_seeded_factory(seed):
    """A factory that threads its seed is fine."""
    return np.random.default_rng(seed)


@dataclass
class SuppressedFactory:
    """Unseeded factory with an inline waiver (suppressed)."""

    _rng: np.random.Generator = field(default_factory=np.random.default_rng)  # repro: noqa REPRO001
