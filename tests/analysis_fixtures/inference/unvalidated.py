"""REPRO003 fixture (inference/ scope): hit, clean and suppressed."""


def hit(answers, n_classes):
    """Array-contract parameter with no validation (flagged)."""
    return len(answers) * n_classes


def clean(answers, n_classes):
    """Validates via a check_* helper (allowed)."""
    check_answers(answers, n_classes)
    return len(answers)


def check_answers(answers, n_classes):
    """Stand-in validator; raising is the evidence the rule wants."""
    if n_classes <= 0:
        raise ValueError("n_classes must be positive")
    return answers


def suppressed(answers):  # repro: noqa REPRO003
    """Unvalidated parameter with an inline waiver (suppressed)."""
    return list(answers)
