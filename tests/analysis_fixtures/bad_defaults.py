"""REPRO002 fixture: one hit, one clean default, one suppressed hit."""


def hit(items=[]):
    """Mutable list default (flagged)."""
    return items


def clean(items=None):
    """None default with lazy init (allowed)."""
    return items if items is not None else []


def suppressed(cache={}):  # repro: noqa REPRO002
    """Mutable dict default with an inline waiver (suppressed)."""
    return cache
