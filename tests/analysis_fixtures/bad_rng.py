"""REPRO001 fixture: one hit, one clean call, one suppressed hit."""

import numpy as np


def hit():
    """Call through the global numpy RNG (flagged)."""
    return np.random.rand(3)


def clean(seed):
    """Construct a seeded generator (allowed)."""
    rng = np.random.default_rng(seed)
    return rng.random(3)


def suppressed():
    """Global call with an inline waiver (suppressed)."""
    return np.random.rand(3)  # repro: noqa REPRO001
