"""REPRO006 fixture: missing docstrings, a documented pair, a waiver."""


def hit(x):
    y = x + 1
    return y * 2


class Hit:
    n = 1

    def method(self, x):
        y = x + self.n
        return y


def clean(x):
    """Documented public function (allowed)."""
    y = x + 1
    return y


def suppressed(x):  # repro: noqa REPRO006
    y = x - 1
    return y
