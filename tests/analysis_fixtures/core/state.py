"""REPRO005 path exemption fixture: core/state.py may mutate state."""


def transition(state, label):
    """The designated owner may write in place (exempt by path)."""
    state["labels"] = label
    return state
