"""Tests for repro.crowd.cost."""

import pytest

from repro.crowd.annotator import Annotator, AnnotatorKind
from repro.crowd.confusion import ConfusionMatrix
from repro.crowd.cost import BudgetManager, CostModel
from repro.exceptions import BudgetExhaustedError, ConfigurationError


def make_annotator(kind, cost):
    return Annotator(0, kind, ConfusionMatrix.uniform(2), cost)


class TestCostModel:
    def test_defaults_match_paper(self):
        model = CostModel()
        assert model.worker_cost == 1.0
        assert model.expert_cost == 10.0

    def test_cost_of_by_kind(self):
        model = CostModel(worker_cost=2.0, expert_cost=7.0)
        assert model.cost_of(make_annotator(AnnotatorKind.WORKER, 2.0)) == 7.0 or True
        # cost_of keys off annotator kind, not the annotator's own cost field
        assert model.cost_of(make_annotator(AnnotatorKind.EXPERT, 1.0)) == 7.0
        assert model.cost_of(make_annotator(AnnotatorKind.WORKER, 1.0)) == 2.0

    def test_invalid_costs_raise(self):
        with pytest.raises(ConfigurationError):
            CostModel(worker_cost=0)


class TestBudgetManager:
    def test_remaining(self):
        budget = BudgetManager(30.0)
        budget.charge(5.0)
        assert budget.remaining == 25.0
        assert budget.spent == 5.0

    def test_exhaustion_raises(self):
        budget = BudgetManager(10.0)
        budget.charge(10.0)
        assert budget.exhausted
        with pytest.raises(BudgetExhaustedError):
            budget.charge(0.5)

    def test_can_afford(self):
        budget = BudgetManager(10.0)
        assert budget.can_afford(10.0)
        assert not budget.can_afford(10.5)

    def test_negative_charge_raises(self):
        with pytest.raises(ConfigurationError):
            BudgetManager(10.0).charge(-1.0)

    def test_invalid_total_raises(self):
        with pytest.raises(ConfigurationError):
            BudgetManager(0)

    def test_ledger_iteration_cost(self):
        budget = BudgetManager(100.0)
        budget.charge(5.0)
        mark = budget.ledger_length
        budget.charge(3.0)
        budget.charge(2.0)
        assert budget.iteration_cost(mark) == 5.0
        assert budget.iteration_cost(0) == 10.0

    def test_spend_fraction(self):
        budget = BudgetManager(40.0)
        budget.charge(10.0)
        assert budget.spend_fraction == pytest.approx(0.25)

    def test_ledger_records_ids(self):
        budget = BudgetManager(10.0)
        budget.charge(1.0, object_id=3, annotator_id=2)
        assert budget._ledger[-1] == (3, 2, 1.0)
