"""Tests for repro.nn.network and repro.nn.train."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.nn.layers import Dense, ReLU
from repro.nn.losses import MeanSquaredError, SoftmaxCrossEntropy
from repro.nn.network import Network
from repro.nn.optimizers import Adam
from repro.nn.train import train_network


class TestConstruction:
    def test_mlp_layer_count(self):
        net = Network.mlp(4, [8, 8], 2, rng=0)
        # Dense+ReLU per hidden layer, plus the output Dense.
        assert len(net.layers) == 5

    def test_empty_layers_raise(self):
        with pytest.raises(ConfigurationError):
            Network([])

    def test_unknown_activation_raises(self):
        with pytest.raises(ConfigurationError):
            Network.mlp(2, [2], 1, activation="gelu")

    def test_n_parameters(self):
        net = Network.mlp(3, [4], 2, rng=0)
        assert net.n_parameters() == 3 * 4 + 4 + 4 * 2 + 2


class TestForward:
    def test_1d_input_promoted(self):
        net = Network.mlp(3, [4], 2, rng=0)
        assert net.forward(np.zeros(3)).shape == (1, 2)

    def test_deterministic(self):
        net = Network.mlp(3, [4], 2, rng=0)
        x = np.ones((2, 3))
        np.testing.assert_array_equal(net.forward(x), net.forward(x))


class TestWeights:
    def test_get_set_roundtrip(self):
        net = Network.mlp(3, [4], 2, rng=0)
        other = Network.mlp(3, [4], 2, rng=1)
        x = np.ones((2, 3))
        assert not np.allclose(net.forward(x), other.forward(x))
        other.set_weights(net.get_weights())
        np.testing.assert_allclose(net.forward(x), other.forward(x))

    def test_get_weights_are_copies(self):
        net = Network.mlp(2, [2], 1, rng=0)
        weights = net.get_weights()
        weights[0]["weight"][...] = 0.0
        assert not np.allclose(net.layers[0].weight, 0.0)

    def test_set_weights_shape_mismatch_raises(self):
        net = Network.mlp(2, [2], 1, rng=0)
        bad = net.get_weights()
        bad[0]["weight"] = np.zeros((5, 5))
        with pytest.raises(ConfigurationError):
            net.set_weights(bad)

    def test_set_weights_wrong_layer_count_raises(self):
        net = Network.mlp(2, [2], 1, rng=0)
        with pytest.raises(ConfigurationError):
            net.set_weights(net.get_weights()[:-1])

    def test_clone_is_independent(self):
        net = Network.mlp(2, [2], 1, rng=0)
        clone = net.clone()
        net.layers[0].weight[...] = 0.0
        assert not np.allclose(clone.layers[0].weight, 0.0)


class TestTraining:
    def test_train_batch_reduces_loss(self):
        rng = np.random.default_rng(0)
        net = Network.mlp(2, [8], 1, rng=rng)
        x = rng.normal(size=(32, 2))
        y = (x.sum(axis=1, keepdims=True) > 0).astype(float)
        loss = MeanSquaredError()
        opt = Adam(0.01)
        first = net.train_batch(x, y, loss, opt)
        for _ in range(100):
            last = net.train_batch(x, y, loss, opt)
        assert last < first

    def test_train_network_learns_xor(self):
        x = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=float)
        y = np.array([0, 1, 1, 0])
        net = Network.mlp(2, [16], 2, rng=3)
        result = train_network(
            net, x, y, SoftmaxCrossEntropy(), Adam(0.05),
            epochs=300, batch_size=4, rng=0,
        )
        pred = net.forward(x).argmax(axis=1)
        np.testing.assert_array_equal(pred, y)
        assert result.final_loss < 0.1

    def test_early_stopping(self):
        x = np.zeros((8, 2))
        y = np.zeros((8, 1))
        net = Network.mlp(2, [4], 1, rng=0)
        result = train_network(
            net, x, y, MeanSquaredError(), Adam(0.01),
            epochs=500, patience=3, rng=0,
        )
        assert result.stopped_early
        assert result.epochs_run < 500

    def test_loss_history_recorded(self):
        x = np.random.default_rng(0).normal(size=(16, 2))
        y = x[:, :1]
        net = Network.mlp(2, [4], 1, rng=0)
        result = train_network(net, x, y, MeanSquaredError(), Adam(0.01),
                               epochs=5, rng=0)
        assert len(result.loss_history) == 5
        assert result.final_loss == result.loss_history[-1]

    def test_mismatched_lengths_raise(self):
        net = Network.mlp(2, [4], 1, rng=0)
        with pytest.raises(ConfigurationError):
            train_network(net, np.ones((4, 2)), np.ones((3, 1)),
                          MeanSquaredError(), Adam(0.01))

    def test_sample_weights_validated(self):
        net = Network.mlp(2, [4], 1, rng=0)
        with pytest.raises(ConfigurationError):
            train_network(net, np.ones((4, 2)), np.ones((4, 1)),
                          MeanSquaredError(), Adam(0.01),
                          sample_weights=np.ones(5))
