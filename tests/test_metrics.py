"""Tests for repro.metrics.classification."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.metrics.classification import (
    accuracy,
    confusion_counts,
    evaluate_labels,
    f1_score,
    precision,
    recall,
)


Y_TRUE = np.array([1, 1, 1, 0, 0, 0, 1, 0])
Y_PRED = np.array([1, 1, 0, 0, 0, 1, 1, 0])
# tp=3 (class1 correct), fp=1, fn=1, tn=3


class TestBinaryMetrics:
    def test_precision(self):
        assert precision(Y_TRUE, Y_PRED) == pytest.approx(3 / 4)

    def test_recall(self):
        assert recall(Y_TRUE, Y_PRED) == pytest.approx(3 / 4)

    def test_f1(self):
        assert f1_score(Y_TRUE, Y_PRED) == pytest.approx(3 / 4)

    def test_accuracy(self):
        assert accuracy(Y_TRUE, Y_PRED) == pytest.approx(6 / 8)

    def test_perfect_scores(self):
        y = np.array([0, 1, 0, 1])
        assert precision(y, y) == recall(y, y) == f1_score(y, y) == 1.0

    def test_zero_predicted_positives(self):
        y_true = np.array([1, 1, 0])
        y_pred = np.array([0, 0, 0])
        assert precision(y_true, y_pred) == 0.0
        assert recall(y_true, y_pred) == 0.0
        assert f1_score(y_true, y_pred) == 0.0


class TestConfusionCounts:
    def test_table(self):
        counts = confusion_counts(Y_TRUE, Y_PRED, 2)
        np.testing.assert_array_equal(counts, [[3, 1], [1, 3]])

    def test_counts_sum_to_n(self):
        assert confusion_counts(Y_TRUE, Y_PRED, 2).sum() == Y_TRUE.size

    def test_invalid_n_classes_raises(self):
        with pytest.raises(ConfigurationError):
            confusion_counts(Y_TRUE, Y_PRED, 1)


class TestMacroMetrics:
    def test_macro_precision_multiclass(self):
        y_true = np.array([0, 1, 2, 0, 1, 2])
        y_pred = np.array([0, 1, 2, 1, 1, 0])
        # per-class precision: c0: 1/1... compute: pred0={0,5}: correct {0} -> 1/2
        # pred1={1,3,4}: correct {1,4} -> 2/3; pred2={2}: correct -> 1
        expected = (0.5 + 2 / 3 + 1.0) / 3
        assert precision(y_true, y_pred, n_classes=3, average="macro") == (
            pytest.approx(expected)
        )

    def test_invalid_average_raises(self):
        with pytest.raises(ConfigurationError):
            precision(Y_TRUE, Y_PRED, average="micro")


class TestEvaluateLabels:
    def test_report_fields(self):
        report = evaluate_labels(Y_TRUE, Y_PRED)
        assert report.precision == pytest.approx(0.75)
        assert report.recall == pytest.approx(0.75)
        assert report.f1 == pytest.approx(0.75)
        assert report.accuracy == pytest.approx(0.75)
        assert report.n_evaluated == 8

    def test_multiclass_uses_macro(self):
        y = np.array([0, 1, 2])
        report = evaluate_labels(y, y, n_classes=3)
        assert report.precision == 1.0

    def test_empty_raises(self):
        with pytest.raises(ConfigurationError):
            evaluate_labels(np.array([]), np.array([]))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            evaluate_labels(np.array([0, 1]), np.array([0]))
