"""Tests for the five baseline frameworks and the M1-M3 ablations."""

import numpy as np
import pytest

from repro import make_platform
from repro.baselines import DALC, DLTA, IDLE, OBA, Hybrid, make_m1, make_m2, make_m3
from repro.core.config import CrowdRLConfig
from repro.datasets.synthetic import make_blobs
from repro.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def dataset():
    return make_blobs(50, 6, separation=3.0, rng=0)


def fresh_platform(dataset, budget=150.0, seed=1):
    return make_platform(dataset, n_workers=3, n_experts=1, budget=budget,
                         rng=seed)


BASELINE_FACTORIES = [
    lambda rng: DLTA(rng=rng),
    lambda rng: OBA(rng=rng),
    lambda rng: IDLE(rng=rng),
    lambda rng: DALC(rng=rng),
    lambda rng: Hybrid(rng=rng),
]
BASELINE_IDS = ["dlta", "oba", "idle", "dalc", "hybrid"]


@pytest.mark.parametrize("factory", BASELINE_FACTORIES, ids=BASELINE_IDS)
class TestBaselineContract:
    def test_labels_all_objects(self, factory, dataset):
        outcome = factory(np.random.default_rng(2)).run(
            dataset, fresh_platform(dataset)
        )
        assert outcome.final_labels.shape == (dataset.n_objects,)
        assert ((outcome.final_labels >= 0)
                & (outcome.final_labels < 2)).all()

    def test_budget_respected(self, factory, dataset):
        platform = fresh_platform(dataset, budget=40.0)
        outcome = factory(np.random.default_rng(2)).run(dataset, platform)
        assert outcome.spent <= 40.0 + 1e-9

    def test_beats_chance_on_separable_data(self, factory, dataset):
        accs = []
        for seed in (2, 3):
            platform = fresh_platform(dataset)
            outcome = factory(np.random.default_rng(seed)).run(
                dataset, platform
            )
            accs.append(
                outcome.evaluate(platform.evaluation_labels()).accuracy
            )
        assert np.mean(accs) > 0.55

    def test_deterministic_given_seeds(self, factory, dataset):
        def once():
            platform = fresh_platform(dataset, seed=5)
            return factory(np.random.default_rng(7)).run(dataset, platform)

        a, b = once(), once()
        np.testing.assert_array_equal(a.final_labels, b.final_labels)

    def test_tiny_budget_survives(self, factory, dataset):
        platform = fresh_platform(dataset, budget=4.0)
        outcome = factory(np.random.default_rng(2)).run(dataset, platform)
        assert outcome.final_labels.shape == (dataset.n_objects,)


class TestOBA:
    def test_trusts_single_answers(self, dataset):
        platform = fresh_platform(dataset)
        outcome = OBA(rng=np.random.default_rng(0)).run(dataset, platform)
        # Every human-labelled object has exactly one human answer.
        for oid in range(dataset.n_objects):
            if outcome.label_sources[oid] == 0:
                assert platform.history.n_answers(oid) == 1

    def test_invalid_params_raise(self):
        with pytest.raises(ConfigurationError):
            OBA(confidence_threshold=0.3)
        with pytest.raises(ConfigurationError):
            OBA(alpha=0.0)


class TestIDLE:
    def test_escalates_to_experts(self, dataset):
        # Low-quality workers force escalation on a decent budget.
        platform = make_platform(dataset, n_workers=3, n_experts=2,
                                 budget=300.0, rng=4)
        outcome = IDLE(escalation_confidence=0.95,
                       rng=np.random.default_rng(0)).run(dataset, platform)
        expert_ids = [a.annotator_id for a in platform.pool if a.is_expert]
        expert_answers = sum(
            platform.history.annotator_load(j) for j in expert_ids
        )
        assert expert_answers > 0
        assert outcome.spent > 0

    def test_invalid_params_raise(self):
        with pytest.raises(ConfigurationError):
            IDLE(k_workers=0)
        with pytest.raises(ConfigurationError):
            IDLE(escalation_confidence=0.5)


class TestDALC:
    def test_prefers_high_expertise_annotators(self, dataset):
        platform = fresh_platform(dataset, budget=100.0)
        DALC(rng=np.random.default_rng(0)).run(dataset, platform)
        expert_id = len(platform.pool) - 1
        expert_load = platform.history.annotator_load(expert_id)
        # The (estimated-)best annotator is the expert; DALC sends it every
        # acquisition-round object, so despite its 10x cost the expert ends
        # up consuming the majority of the budget — its structural weakness.
        expert_spend = expert_load * 10.0
        assert expert_spend >= platform.budget.spent / 2

    def test_invalid_params_raise(self):
        with pytest.raises(ConfigurationError):
            DALC(alpha=1.0)


class TestHybrid:
    def test_trains_assignment_dqn(self, dataset):
        platform = fresh_platform(dataset)
        outcome = Hybrid(rng=np.random.default_rng(0)).run(dataset, platform)
        assert outcome.extras["ta_train_steps"] >= 0
        assert outcome.extras["n_truths"] > 0

    def test_invalid_params_raise(self):
        with pytest.raises(ConfigurationError):
            Hybrid(epsilon=1.5)
        with pytest.raises(ConfigurationError):
            Hybrid(n_bootstrap=0)


class TestAblations:
    def test_m1_uses_random_ts(self):
        framework = make_m1(rng=0)
        assert framework.name == "M1"
        assert framework.config.ts_mode == "random"
        assert framework.config.ta_mode == "q"

    def test_m2_uses_random_ta(self):
        framework = make_m2(rng=0)
        assert framework.name == "M2"
        assert framework.config.ta_mode == "random"

    def test_m3_uses_pm_inference(self):
        framework = make_m3(rng=0)
        assert framework.name == "M3"
        assert framework.config.inference_method == "pm"

    def test_custom_config_preserved(self):
        base = CrowdRLConfig(batch_size=7)
        assert make_m1(base, rng=0).config.batch_size == 7

    @pytest.mark.parametrize("factory", [make_m1, make_m2, make_m3])
    def test_ablations_run_end_to_end(self, factory, dataset):
        config = CrowdRLConfig(alpha=0.1, batch_size=4,
                               min_truths_for_enrichment=10,
                               train_steps_per_iteration=2)
        platform = fresh_platform(dataset)
        outcome = factory(config, rng=np.random.default_rng(1)).run(
            dataset, platform
        )
        assert outcome.final_labels.shape == (dataset.n_objects,)
        assert outcome.spent <= platform.budget.total + 1e-9
