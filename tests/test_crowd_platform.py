"""Tests for repro.crowd.platform."""

import numpy as np
import pytest

from repro.crowd.cost import BudgetManager
from repro.crowd.platform import CrowdPlatform
from repro.exceptions import BudgetExhaustedError, ConfigurationError

from conftest import build_pool


def make_platform_with(budget=50.0, n_objects=10, seed=0):
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 2, size=n_objects)
    return CrowdPlatform(labels, build_pool(), BudgetManager(budget))


class TestAsk:
    def test_ask_charges_and_records(self):
        platform = make_platform_with()
        record = platform.ask(0, 0)
        assert record.cost == 1.0
        assert platform.budget.spent == 1.0
        assert platform.history.has_answered(0, 0)
        assert platform.answer_log == [record]

    def test_expert_costs_more(self):
        platform = make_platform_with()
        record = platform.ask(0, 3)  # the expert in build_pool
        assert record.cost == 10.0

    def test_duplicate_pair_raises(self):
        platform = make_platform_with()
        platform.ask(0, 0)
        with pytest.raises(ConfigurationError):
            platform.ask(0, 0)

    def test_budget_enforced(self):
        platform = make_platform_with(budget=1.0)
        platform.ask(0, 0)
        with pytest.raises(BudgetExhaustedError):
            platform.ask(1, 0)

    def test_answers_come_from_latent_matrix(self):
        # Accuracy-1.0 expert always returns the truth.
        from conftest import build_pool as bp

        pool = bp(worker_accs=(), expert_accs=(1.0,))
        labels = np.array([0, 1, 1, 0])
        platform = CrowdPlatform(labels, pool, BudgetManager(100.0))
        for i, truth in enumerate(labels):
            assert platform.ask(i, 0).answer == truth


class TestAskBatch:
    def test_collects_all_affordable(self):
        platform = make_platform_with(budget=100.0)
        records = platform.ask_batch([(0, [0, 1]), (1, [0])])
        assert len(records) == 3

    def test_stops_at_budget(self):
        platform = make_platform_with(budget=2.0)
        records = platform.ask_batch([(0, [0, 1, 2])])
        assert len(records) == 2
        assert platform.budget.remaining == 0.0

    def test_skips_duplicates_silently(self):
        platform = make_platform_with()
        platform.ask(0, 0)
        records = platform.ask_batch([(0, [0, 1])])
        assert [r.annotator_id for r in records] == [1]

    def test_empty_assignment_list(self):
        platform = make_platform_with()
        assert platform.ask_batch([]) == []

    def test_unaffordable_annotator_skipped_not_fatal(self):
        # Expert (id 3) costs 10, workers cost 1.  With 5 units left the
        # expert is skipped but the cheap workers queued after it — in the
        # same and in later assignments — must still be asked.
        platform = make_platform_with(budget=5.0)
        records = platform.ask_batch([(0, [3, 0, 1]), (1, [3, 0])])
        assert [(r.object_id, r.annotator_id) for r in records] == \
            [(0, 0), (0, 1), (1, 0)]

    def test_stops_only_when_cheapest_unaffordable(self):
        platform = make_platform_with(budget=2.5)
        records = platform.ask_batch([(0, [0]), (1, [3]), (2, [0]), (3, [0])])
        # Two workers affordable; the expert is skipped; the fourth request
        # finds 0.5 < cheapest_cost() and collection stops.
        assert len(records) == 2
        assert all(r.annotator_id == 0 for r in records)


class TestConstruction:
    def test_label_range_validated(self):
        with pytest.raises(ConfigurationError):
            CrowdPlatform(np.array([0, 2]), build_pool(), BudgetManager(10.0))

    def test_empty_labels_raise(self):
        with pytest.raises(ConfigurationError):
            CrowdPlatform(np.array([]), build_pool(), BudgetManager(10.0))

    def test_evaluation_labels_is_copy(self):
        platform = make_platform_with()
        labels = platform.evaluation_labels()
        labels[0] = 1 - labels[0]
        assert platform.evaluation_labels()[0] != labels[0]

    def test_cheapest_cost(self):
        platform = make_platform_with()
        assert platform.cheapest_cost() == 1.0
