"""Property-based tests (hypothesis) for core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.crowd.confusion import ConfusionMatrix
from repro.inference.dawid_skene import DawidSkene
from repro.inference.majority import MajorityVote
from repro.inference.pm import PMInference
from repro.metrics.classification import accuracy, confusion_counts, f1_score
from repro.nn.losses import SoftmaxCrossEntropy
from repro.rl.replay import ReplayBuffer, Transition
from repro.utils.topk import select_objects_by_topk_q, top_k_indices, top_k_sum

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

probabilities = st.floats(0.01, 0.99)


@st.composite
def confusion_matrices(draw, max_classes=4):
    n = draw(st.integers(2, max_classes))
    raw = draw(arrays(float, (n, n),
                      elements=st.floats(0.01, 10.0)))
    return raw / raw.sum(axis=1, keepdims=True)


@st.composite
def answer_maps(draw, max_objects=12, max_annotators=5, n_classes=3):
    n_objects = draw(st.integers(1, max_objects))
    n_annotators = draw(st.integers(1, max_annotators))
    answers = {}
    for oid in range(n_objects):
        n_votes = draw(st.integers(1, n_annotators))
        voters = draw(st.permutations(range(n_annotators)))
        answers[oid] = {
            voters[i]: draw(st.integers(0, n_classes - 1))
            for i in range(n_votes)
        }
    return answers, n_classes, n_annotators


# ---------------------------------------------------------------------------
# Confusion matrices
# ---------------------------------------------------------------------------

@given(confusion_matrices())
@settings(max_examples=40, deadline=None)
def test_confusion_quality_in_unit_interval(matrix):
    cm = ConfusionMatrix(matrix)
    assert 0.0 <= cm.quality() <= 1.0


@given(confusion_matrices(), st.floats(0.5, 0.99))
@settings(max_examples=40, deadline=None)
def test_quality_floor_invariants(matrix, floor):
    bounded = ConfusionMatrix(matrix).with_quality_floor(floor)
    assert np.diag(bounded.matrix).min() >= floor - 1e-9
    np.testing.assert_allclose(bounded.matrix.sum(axis=1), 1.0, atol=1e-9)
    assert (bounded.matrix >= -1e-12).all()


@given(st.integers(2, 6), probabilities)
@settings(max_examples=30, deadline=None)
def test_from_accuracy_rows_stochastic(n_classes, acc):
    cm = ConfusionMatrix.from_accuracy(n_classes, acc)
    np.testing.assert_allclose(cm.matrix.sum(axis=1), 1.0, atol=1e-9)
    np.testing.assert_allclose(cm.quality(), acc, atol=1e-9)


# ---------------------------------------------------------------------------
# Truth inference
# ---------------------------------------------------------------------------

@given(answer_maps())
@settings(max_examples=30, deadline=None)
def test_inference_posteriors_are_distributions(params):
    answers, n_classes, n_annotators = params
    for algo in (MajorityVote(rng=0), DawidSkene(max_iter=20),
                 PMInference(max_iter=20)):
        result = algo.infer(answers, n_classes, n_annotators)
        assert set(result.labels) == set(answers)
        for oid, post in result.posteriors.items():
            assert post.shape == (n_classes,)
            assert abs(post.sum() - 1.0) < 1e-6
            assert (post >= -1e-12).all()
            assert result.labels[oid] == int(np.argmax(post))


@given(answer_maps())
@settings(max_examples=30, deadline=None)
def test_unanimous_answers_win_majority(params):
    answers, n_classes, n_annotators = params
    # Force unanimity: every vote becomes class 0.
    unanimous = {
        oid: {j: 0 for j in votes} for oid, votes in answers.items()
    }
    result = MajorityVote().infer(unanimous, n_classes, n_annotators)
    assert all(label == 0 for label in result.labels.values())


# ---------------------------------------------------------------------------
# Top-k selection
# ---------------------------------------------------------------------------

@given(arrays(float, st.integers(1, 30),
              elements=st.floats(-100, 100)), st.integers(1, 10))
@settings(max_examples=50, deadline=None)
def test_top_k_indices_are_the_k_largest(values, k):
    idx = top_k_indices(values, k)
    assert len(idx) == min(k, len(values))
    assert len(set(idx)) == len(idx)
    chosen = sorted(values[idx], reverse=True)
    rest = np.delete(values, idx)
    if rest.size and chosen:
        assert chosen[-1] >= rest.max() - 1e-12
    np.testing.assert_allclose(
        top_k_sum(values, k), float(np.sum(values[idx])), atol=1e-9
    )


@given(
    arrays(float, st.tuples(st.integers(1, 10), st.integers(1, 6)),
           elements=st.floats(-10, 10)),
    st.integers(1, 4),
    st.integers(1, 8),
    st.data(),
)
@settings(max_examples=50, deadline=None)
def test_select_objects_invariants(q, k, n_select, data):
    # Randomly mask some rows entirely.
    n_rows = q.shape[0]
    masked_rows = data.draw(st.sets(st.integers(0, n_rows - 1)))
    for row in masked_rows:
        q[row, :] = -np.inf
    selected = select_objects_by_topk_q(q, k, n_select)
    chosen_objects = [obj for obj, _ in selected]
    # No duplicates, no masked rows, bounded count.
    assert len(chosen_objects) == len(set(chosen_objects))
    assert set(chosen_objects).isdisjoint(masked_rows)
    assert len(selected) <= min(n_select, n_rows)
    # Scores are non-increasing and assignments valid.
    scores = [float(q[obj, ann].sum()) for obj, ann in selected]
    assert all(a >= b - 1e-9 for a, b in zip(scores, scores[1:]))
    for obj, annotators in selected:
        assert len(annotators) <= k
        assert np.isfinite(q[obj, annotators]).all()


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------

label_arrays = st.integers(1, 50).flatmap(
    lambda n: st.tuples(
        arrays(np.int64, n, elements=st.integers(0, 1)),
        arrays(np.int64, n, elements=st.integers(0, 1)),
    )
)


@given(label_arrays)
@settings(max_examples=50, deadline=None)
def test_metric_bounds_and_consistency(pair):
    y_true, y_pred = pair
    acc = accuracy(y_true, y_pred)
    f1 = f1_score(y_true, y_pred)
    assert 0.0 <= acc <= 1.0
    assert 0.0 <= f1 <= 1.0
    counts = confusion_counts(y_true, y_pred, 2)
    assert counts.sum() == y_true.size
    assert acc == (np.trace(counts) / counts.sum())


@given(label_arrays)
@settings(max_examples=30, deadline=None)
def test_accuracy_symmetric_under_relabel(pair):
    y_true, y_pred = pair
    assert accuracy(y_true, y_pred) == accuracy(1 - y_true, 1 - y_pred)


# ---------------------------------------------------------------------------
# Replay buffer
# ---------------------------------------------------------------------------

@given(st.integers(1, 20), st.lists(st.floats(-5, 5), min_size=1,
                                    max_size=60))
@settings(max_examples=40, deadline=None)
def test_replay_buffer_never_exceeds_capacity(capacity, rewards):
    buf = ReplayBuffer(capacity, rng=0)
    for r in rewards:
        buf.push(Transition(np.array([r]), r, None, True))
    assert len(buf) == min(capacity, len(rewards))
    sample = buf.sample(5)
    assert len(sample) == 5
    stored_rewards = {t.reward for t in buf._storage}
    assert {t.reward for t in sample} <= stored_rewards


# ---------------------------------------------------------------------------
# Losses
# ---------------------------------------------------------------------------

@given(arrays(float, st.tuples(st.integers(1, 8), st.integers(2, 5)),
              elements=st.floats(-20, 20)))
@settings(max_examples=40, deadline=None)
def test_cross_entropy_nonnegative_and_finite(logits):
    n, c = logits.shape
    target = np.zeros((n, c))
    target[:, 0] = 1.0
    loss = SoftmaxCrossEntropy()
    value = loss.value(logits, target)
    assert np.isfinite(value)
    assert value >= -1e-9
    grad = loss.grad(logits, target)
    # Gradient rows sum to ~0 (softmax minus distribution).
    np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-9)
