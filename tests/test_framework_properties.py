"""Property-based tests over the end-to-end framework (hypothesis).

Randomised configurations must never break the hard invariants: budget is
never exceeded, every object gets a final label in range, and label
provenance is consistent with the platform's answer history.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CrowdRL, CrowdRLConfig, make_platform
from repro.core.result import LabelSource
from repro.datasets.synthetic import make_blobs

# A single shared dataset keeps runs fast; configs and budgets vary.
_DATASET = make_blobs(36, 5, separation=2.5, rng=123)


@st.composite
def run_params(draw):
    return dict(
        alpha=draw(st.sampled_from([0.05, 0.1, 0.2])),
        batch_size=draw(st.integers(1, 5)),
        k_per_object=draw(st.integers(1, 4)),
        budget=draw(st.sampled_from([15.0, 60.0, 150.0, 400.0])),
        sticky=draw(st.booleans()),
        seed=draw(st.integers(0, 5)),
    )


@given(run_params())
@settings(max_examples=12, deadline=None)
def test_run_invariants_hold_under_random_configs(params):
    platform = make_platform(
        _DATASET, n_workers=3, n_experts=1, budget=params["budget"],
        rng=params["seed"],
    )
    config = CrowdRLConfig(
        alpha=params["alpha"],
        batch_size=params["batch_size"],
        k_per_object=params["k_per_object"],
        sticky_enrichment=params["sticky"],
        min_truths_for_enrichment=8,
        train_steps_per_iteration=1,
        max_iterations=60,
    )
    outcome = CrowdRL(config, rng=params["seed"] + 50).run(_DATASET, platform)

    # Budget invariant.
    assert outcome.spent <= params["budget"] + 1e-9
    assert outcome.spent == pytest.approx(platform.budget.spent)

    # Coverage invariant: a label for every object, in range.
    assert outcome.final_labels.shape == (_DATASET.n_objects,)
    assert outcome.final_labels.min() >= 0
    assert outcome.final_labels.max() < _DATASET.n_classes

    # Provenance invariant: HUMAN-sourced labels require recorded answers.
    for object_id in np.nonzero(
        outcome.label_sources == LabelSource.HUMAN
    )[0]:
        assert platform.history.n_answers(int(object_id)) > 0

    # Ledger consistency: every charge corresponds to one recorded answer.
    assert platform.budget.ledger_length == len(platform.answer_log)
