"""Tests for repro.crowd.confusion."""

import numpy as np
import pytest

from repro.crowd.confusion import ConfusionMatrix
from repro.exceptions import ConfigurationError


class TestConstruction:
    def test_valid_matrix(self):
        cm = ConfusionMatrix(np.array([[0.9, 0.1], [0.2, 0.8]]))
        assert cm.n_classes == 2

    def test_rows_must_be_stochastic(self):
        with pytest.raises(ConfigurationError):
            ConfusionMatrix(np.array([[0.9, 0.2], [0.2, 0.8]]))

    def test_uniform(self):
        cm = ConfusionMatrix.uniform(3)
        np.testing.assert_allclose(cm.matrix, 1 / 3)
        assert cm.quality() == pytest.approx(1 / 3)

    def test_from_accuracy(self):
        cm = ConfusionMatrix.from_accuracy(3, 0.7)
        np.testing.assert_allclose(np.diag(cm.matrix), 0.7)
        np.testing.assert_allclose(cm.matrix.sum(axis=1), 1.0)
        assert cm.matrix[0, 1] == pytest.approx(0.15)

    def test_from_accuracy_bounds(self):
        with pytest.raises(ConfigurationError):
            ConfusionMatrix.from_accuracy(2, 1.5)

    def test_random_diagonal_in_range(self):
        cm = ConfusionMatrix.random(4, diagonal_low=0.6, diagonal_high=0.8,
                                    rng=0)
        diag = np.diag(cm.matrix)
        assert (diag >= 0.6).all() and (diag <= 0.8).all()
        np.testing.assert_allclose(cm.matrix.sum(axis=1), 1.0)

    def test_random_invalid_range_raises(self):
        with pytest.raises(ConfigurationError):
            ConfusionMatrix.random(2, diagonal_low=0.8, diagonal_high=0.6)


class TestQuality:
    def test_paper_example_expert_quality(self):
        """Table V: w4's matrix has quality (0.98 + 0.99) / 2 = 0.985."""
        cm = ConfusionMatrix(np.array([[0.98, 0.02], [0.01, 0.99]]))
        assert cm.quality() == pytest.approx(0.985)

    def test_paper_example_worker_quality(self):
        """Table IV: w1 has quality (0.60 + 0.70) / 2 = 0.65."""
        cm = ConfusionMatrix(np.array([[0.60, 0.40], [0.30, 0.70]]))
        assert cm.quality() == pytest.approx(0.65)

    def test_identity_is_perfect(self):
        assert ConfusionMatrix(np.eye(4)).quality() == 1.0


class TestSampling:
    def test_perfect_annotator_always_correct(self):
        cm = ConfusionMatrix(np.eye(3))
        rng = np.random.default_rng(0)
        assert all(cm.sample_answer(c, rng) == c for c in range(3)
                   for _ in range(5))

    def test_empirical_frequency_matches(self):
        cm = ConfusionMatrix.from_accuracy(2, 0.8)
        rng = np.random.default_rng(1)
        answers = [cm.sample_answer(0, rng) for _ in range(3000)]
        assert np.mean(np.array(answers) == 0) == pytest.approx(0.8, abs=0.03)

    def test_out_of_range_class_raises(self):
        with pytest.raises(ConfigurationError):
            ConfusionMatrix.uniform(2).sample_answer(2)

    def test_likelihood(self):
        cm = ConfusionMatrix.from_accuracy(2, 0.9)
        assert cm.likelihood(0, 0) == pytest.approx(0.9)
        assert cm.likelihood(0, 1) == pytest.approx(0.1)


class TestEstimation:
    def test_estimate_from_counts(self):
        counts = np.array([[8, 2], [1, 9]])
        cm = ConfusionMatrix.estimate_from_counts(counts, smoothing=0.0)
        assert cm.matrix[0, 0] == pytest.approx(0.8)
        assert cm.matrix[1, 1] == pytest.approx(0.9)

    def test_smoothing_handles_empty_rows(self):
        counts = np.array([[0, 0], [0, 10]])
        cm = ConfusionMatrix.estimate_from_counts(counts, smoothing=1.0)
        np.testing.assert_allclose(cm.matrix[0], [0.5, 0.5])

    def test_non_square_raises(self):
        with pytest.raises(ConfigurationError):
            ConfusionMatrix.estimate_from_counts(np.ones((2, 3)))

    def test_negative_smoothing_raises(self):
        with pytest.raises(ConfigurationError):
            ConfusionMatrix.estimate_from_counts(np.eye(2), smoothing=-1)


class TestQualityFloor:
    def test_low_diagonal_raised_to_floor(self):
        cm = ConfusionMatrix(np.array([[0.5, 0.5], [0.95, 0.05]]))
        bounded = cm.with_quality_floor(0.9)
        assert bounded.matrix[0, 0] == pytest.approx(0.9)
        # Second row's diagonal is 0.05 < 0.9, so it is floored too.
        assert bounded.matrix[1, 1] == pytest.approx(0.9)
        np.testing.assert_allclose(bounded.matrix.sum(axis=1), 1.0)

    def test_high_diagonal_untouched(self):
        cm = ConfusionMatrix(np.array([[0.95, 0.05], [0.03, 0.97]]))
        bounded = cm.with_quality_floor(0.9)
        np.testing.assert_allclose(bounded.matrix, cm.matrix)

    def test_returns_copy(self):
        cm = ConfusionMatrix.from_accuracy(2, 0.5)
        bounded = cm.with_quality_floor(0.9)
        assert bounded is not cm
        assert cm.matrix[0, 0] == pytest.approx(0.5)

    def test_invalid_floor_raises(self):
        with pytest.raises(ConfigurationError):
            ConfusionMatrix.uniform(2).with_quality_floor(1.0)

    def test_multiclass_off_diagonal_uniform(self):
        cm = ConfusionMatrix.uniform(4)
        bounded = cm.with_quality_floor(0.85)
        assert bounded.matrix[0, 0] == pytest.approx(0.85)
        np.testing.assert_allclose(bounded.matrix[0, 1:], 0.05)
