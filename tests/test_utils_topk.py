"""Tests for repro.utils.topk, including the paper's min-heap selection."""

import numpy as np
import pytest

from repro.utils.topk import select_objects_by_topk_q, top_k_indices, top_k_sum


class TestTopKIndices:
    def test_basic(self):
        assert top_k_indices([1.0, 3.0, 2.0], 2) == [1, 2]

    def test_k_larger_than_input(self):
        assert sorted(top_k_indices([1.0, 2.0], 5)) == [0, 1]

    def test_k_zero(self):
        assert top_k_indices([1.0, 2.0], 0) == []

    def test_negative_k_raises(self):
        with pytest.raises(ValueError):
            top_k_indices([1.0], -1)

    def test_tie_break_lower_index_first(self):
        assert top_k_indices([2.0, 2.0, 1.0], 1) == [0]

    def test_handles_neg_inf(self):
        assert top_k_indices([-np.inf, 1.0, -np.inf], 2) == [1, 0]


class TestTopKSum:
    def test_sum(self):
        assert top_k_sum([1.0, 3.0, 2.0], 2) == 5.0

    def test_empty(self):
        assert top_k_sum([], 3) == 0.0


class TestSelectObjectsByTopkQ:
    def test_example_3_from_paper(self):
        """Table III: o8's top-3 Q sum (4+3+2=9) is largest; annotators
        w1, w3, w5 are selected for it."""
        ninf = -np.inf
        q = np.array([
            [ninf, ninf, ninf, ninf, ninf],   # o1 labelled
            [3, 1, 1, 2, 2],                  # o2
            [1, 1, 1, 2, 4],                  # o3
            [ninf, ninf, ninf, ninf, ninf],   # o4 labelled
            [ninf, ninf, ninf, ninf, ninf],   # o5 labelled
            [1, 2, 1, 1, 2],                  # o6
            [3, 2, 0, 1, 1],                  # o7
            [4, 1, 3, 0, 2],                  # o8
        ], dtype=float)
        selected = select_objects_by_topk_q(q, k_annotators=3, n_objects=1)
        assert len(selected) == 1
        object_id, annotators = selected[0]
        assert object_id == 7
        assert sorted(annotators) == [0, 2, 4]  # w1, w3, w5

    def test_masked_rows_never_selected(self):
        q = np.full((3, 2), -np.inf)
        q[1] = [1.0, 2.0]
        selected = select_objects_by_topk_q(q, 2, 3)
        assert [obj for obj, _ in selected] == [1]

    def test_orders_by_descending_score(self):
        q = np.array([[1.0, 1.0], [3.0, 3.0], [2.0, 2.0]])
        selected = select_objects_by_topk_q(q, 2, 3)
        assert [obj for obj, _ in selected] == [1, 2, 0]

    def test_respects_n_objects(self):
        q = np.ones((5, 3))
        assert len(select_objects_by_topk_q(q, 2, 2)) == 2

    def test_k_annotators_capped_by_width(self):
        q = np.array([[1.0, 2.0]])
        (obj, annotators), = select_objects_by_topk_q(q, 5, 1)
        assert obj == 0 and sorted(annotators) == [0, 1]

    def test_partially_masked_row_uses_finite_entries(self):
        q = np.array([[-np.inf, 5.0, -np.inf], [1.0, 1.0, 1.0]])
        selected = select_objects_by_topk_q(q, 2, 2)
        scores = dict(selected)
        assert scores[0] == [1]           # only the finite annotator
        assert sorted(scores[1]) == [0, 1]

    def test_bad_q_shape_raises(self):
        with pytest.raises(ValueError):
            select_objects_by_topk_q(np.ones(3), 1, 1)

    def test_bad_k_raises(self):
        with pytest.raises(ValueError):
            select_objects_by_topk_q(np.ones((2, 2)), 0, 1)

    def test_zero_objects_gives_empty(self):
        assert select_objects_by_topk_q(np.ones((2, 2)), 1, 0) == []
