"""Tests for the parallel-safety analyzer (REPRO013-018).

Covers the six new rules' clean/dirty fixtures, the PR 6 blind-spot
fixes to REPRO007/009/010/011 (deep factory chains, closure-captured
streams, tuple-unpack/arithmetic shape propagation, non-deterministic
sort keys), the ``# repro: process-local`` annotation, range ``select``
syntax, and the baseline ratchet over the new rules.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.cli import main as analysis_main
from repro.analysis.flow import FLOW_RULES, analyze_paths

FIXTURES = Path(__file__).parent / "analysis_fixtures" / "flow"
SRC = Path(__file__).parents[1] / "src"


def rule_ids(findings):
    """The multiset of rule ids in ``findings`` as a sorted list."""
    return sorted(f.rule_id for f in findings)


# ----------------------------------------------------------------------
# Per-rule fixtures: hits fire, clean forms stay silent
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "fixture, rule_id, n_hits",
    [
        ("par_global_state.py", "REPRO013", 2),
        ("par_rng_boundary.py", "REPRO014", 3),
        ("par_pickle.py", "REPRO015", 3),
        ("par_mutation.py", "REPRO016", 1),
        ("par_reduction.py", "REPRO017", 2),
        ("par_env.py", "REPRO018", 2),
        ("rng_shared_nested.py", "REPRO009", 2),
        ("shapes_unpack.py", "REPRO010", 2),
        ("det_sortkey.py", "REPRO011", 2),
        ("rng_unseeded_deep.py", "REPRO007", 2),
    ],
)
def test_rule_fires_only_on_hits(fixture, rule_id, n_hits):
    """Every parallel rule reports its hits and nothing from clean code."""
    findings = analyze_paths([str(FIXTURES / fixture)])
    assert rule_ids(findings) == [rule_id] * n_hits
    source = (FIXTURES / fixture).read_text()
    hit_lines = {f.line for f in findings}
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "(silent)" in line:
            assert not hit_lines & {lineno, lineno + 1, lineno + 2}


# ----------------------------------------------------------------------
# The PR 5 blind spots, now caught
# ----------------------------------------------------------------------
def test_closure_captured_stream_handoffs_are_seen():
    """Nested defs and dispatch lambdas no longer hide stream sharing."""
    findings = analyze_paths([str(FIXTURES / "rng_shared_nested.py")],
                             select=["REPRO009"])
    wheres = sorted(f.message.split(":")[0] for f in findings)
    assert any("run_trial" in where for where in wheres)
    assert any("<lambda>" in where for where in wheres)


def test_unpacked_and_arithmetic_shapes_propagate():
    """Tuple unpacking and scalar arithmetic no longer launder transposes."""
    findings = analyze_paths([str(FIXTURES / "shapes_unpack.py")],
                             select=["REPRO010"])
    assert len(findings) == 2
    assert all("transposed" in f.message for f in findings)


def test_nondeterministic_sort_keys_are_rejected():
    """sorted(key=id) and random keys do not count as ordering."""
    findings = analyze_paths([str(FIXTURES / "det_sortkey.py")],
                             select=["REPRO011"])
    labels = sorted(f.message.split("'")[1] for f in findings)
    assert labels == ["glob.glob", "os.listdir"]


def test_deep_factory_chain_is_followed_and_cycles_terminate():
    """Six-hop factories are caught; mutual recursion stays silent."""
    findings = analyze_paths([str(FIXTURES / "rng_unseeded_deep.py")],
                             select=["REPRO007"])
    factory_hits = [f for f in findings if "default_factory" in f.message]
    assert len(factory_hits) == 1
    # The multiset pin above guarantees the _ping/_pong pair stayed quiet.


# ----------------------------------------------------------------------
# The shipped tree and range select
# ----------------------------------------------------------------------
def test_shipped_tree_is_parallel_clean():
    """The ISSUE acceptance command: zero unbaselined REPRO013-018 findings."""
    assert analysis_main(["flow", str(SRC / "repro"),
                          "--select", "REPRO013-REPRO018"]) == 0


def test_select_range_expands_inclusively():
    """``REPRO013-REPRO015`` selects exactly the three rules in the range."""
    findings = analyze_paths([str(FIXTURES)],
                             select=["REPRO013-REPRO015"])
    assert set(rule_ids(findings)) == {"REPRO013", "REPRO014", "REPRO015"}
    # A mixed list of single ids and ranges also parses.
    mixed = analyze_paths([str(FIXTURES / "par_env.py")],
                          select=["REPRO018", "REPRO013-REPRO014"])
    assert set(rule_ids(mixed)) == {"REPRO018"}


def test_select_range_usage_errors_exit_2(capsys):
    """Backwards and out-of-range selects are usage errors."""
    target = str(FIXTURES / "par_env.py")
    assert analysis_main(["flow", target, "--no-baseline",
                          "--select", "REPRO018-REPRO013"]) == 2
    assert "empty flow rule range" in capsys.readouterr().err
    assert analysis_main(["flow", target, "--no-baseline",
                          "--select", "REPRO013-REPRO099"]) == 2
    assert "unknown flow rule" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Suppression: noqa and the process-local annotation
# ----------------------------------------------------------------------
_MUTATED_GLOBAL = (
    '"""Doc."""\n\n'
    "_CACHE: dict = {{}}{annotation}\n\n\n"
    "def remember(key, value):\n"
    '    """Doc."""\n'
    "    _CACHE[key] = value\n"
)


def test_unannotated_global_fires(tmp_path):
    module = tmp_path / "state.py"
    module.write_text(_MUTATED_GLOBAL.format(annotation=""))
    findings = analyze_paths([str(module)])
    assert rule_ids(findings) == ["REPRO013"]
    assert findings[0].line == 3  # anchored at the definition


def test_process_local_annotation_waives_repro013(tmp_path):
    module = tmp_path / "state.py"
    module.write_text(_MUTATED_GLOBAL.format(
        annotation="  # repro: process-local — per-process cache"))
    assert analyze_paths([str(module)]) == []


def test_noqa_suppresses_repro013(tmp_path):
    module = tmp_path / "state.py"
    module.write_text(_MUTATED_GLOBAL.format(
        annotation="  # repro: noqa REPRO013"))
    assert analyze_paths([str(module)]) == []


# ----------------------------------------------------------------------
# Baseline ratchet over the new rules
# ----------------------------------------------------------------------
def test_parallel_baseline_round_trip_survives_line_shifts(tmp_path, capsys):
    """Accepted REPRO013 findings stay waived as the file moves around."""
    module = tmp_path / "state.py"
    module.write_text(_MUTATED_GLOBAL.format(annotation=""))
    baseline = tmp_path / ".repro-flow-baseline.json"
    assert analysis_main(["flow", str(module), "--write-baseline",
                          str(baseline)]) == 0
    capsys.readouterr()

    assert analysis_main(["flow", str(module), "--fail-on-new"]) == 0
    assert "1 baselined" in capsys.readouterr().out

    # Shift the definition down: the line-free key still matches.
    module.write_text(
        '"""Doc."""\n\n'
        "def helper():\n"
        '    """Doc."""\n'
        "    return 1\n\n\n"
        + _MUTATED_GLOBAL.format(annotation="").split("\n", 2)[2]
    )
    assert analysis_main(["flow", str(module), "--fail-on-new"]) == 0
    capsys.readouterr()

    # A genuinely new parallel hazard still fails the ratchet.  (It must
    # not touch _CACHE: a new writer would change the baselined finding's
    # message, and with it the ratchet key — correctly surfacing it anew.)
    module.write_text(
        module.read_text()
        + "\n\ndef count(key):\n"
        '    """Doc."""\n'
        "    _TOTALS.update({key: 0})\n\n\n"
        "_TOTALS: dict = {}\n"
    )
    assert analysis_main(["flow", str(module), "--fail-on-new",
                          "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == 1
    assert "_TOTALS" in payload["findings"][0]["message"]
    assert payload["baselined_count"] == 1


# ----------------------------------------------------------------------
# CLI surfaces
# ----------------------------------------------------------------------
def test_flow_rules_table_lists_parallel_rules():
    """The rule registry covers REPRO007 through REPRO024."""
    expected = {f"REPRO{i:03d}" for i in range(7, 25)}
    assert set(FLOW_RULES) == expected


def test_cli_json_reports_parallel_findings(capsys):
    code = analysis_main(["flow", str(FIXTURES / "par_reduction.py"),
                          "--no-baseline", "--format", "json",
                          "--select", "REPRO013-REPRO018"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == 2
    assert {f["rule"] for f in payload["findings"]} == {"REPRO017"}


def test_harness_cli_forwards_parallel_select(capsys):
    """``repro.harness.cli lint flow --select REPRO013-REPRO018`` works."""
    from repro.harness.cli import main as harness_main

    assert harness_main(["lint", "flow", str(SRC / "repro"),
                         "--select", "REPRO013-REPRO018"]) == 0
    assert harness_main(
        ["lint", "flow", str(FIXTURES / "par_global_state.py"),
         "--no-baseline", "--select", "REPRO013-REPRO018"]
    ) == 1
