"""Smoke tests: the example scripts run end to end.

The slower sweeps (speech_assessment, budget_planning) are exercised by
the harness/benchmark tests that run the same code paths; here we execute
the quick examples verbatim so a README user's first contact never breaks.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart",
    "medical_triage",
    "truth_inference_comparison",
    "run_trace_analysis",
]


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert len(out) > 100  # produced a meaningful report


def test_all_examples_exist_and_have_main():
    scripts = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))
    assert "quickstart" in scripts
    assert len(scripts) >= 5
    for name in scripts:
        module = load_example(name)
        assert callable(getattr(module, "main", None)), name
        assert module.__doc__, f"{name} lacks a docstring"
