"""Tests for repro.nn.layers, including numeric gradient checks."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.nn.layers import Dense, Dropout, ReLU, Sigmoid, Softmax, Tanh


def numeric_grad(f, x, eps=1e-6):
    """Central-difference gradient of scalar f at x."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        plus = f()
        x[idx] = orig - eps
        minus = f()
        x[idx] = orig
        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


class TestDense:
    def test_forward_shape(self):
        layer = Dense(4, 3, rng=0)
        assert layer.forward(np.ones((5, 4))).shape == (5, 3)

    def test_forward_is_affine(self):
        layer = Dense(2, 2, rng=0)
        x = np.array([[1.0, 2.0]])
        expected = x @ layer.weight + layer.bias
        np.testing.assert_allclose(layer.forward(x), expected)

    def test_bad_input_width_raises(self):
        layer = Dense(3, 2, rng=0)
        with pytest.raises(ConfigurationError):
            layer.forward(np.ones((2, 4)))

    def test_backward_before_forward_raises(self):
        layer = Dense(2, 2, rng=0)
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((1, 2)))

    def test_inference_forward_does_not_cache(self):
        layer = Dense(2, 2, rng=0)
        layer.forward(np.ones((1, 2)), training=False)
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((1, 2)))

    def test_weight_gradient_matches_numeric(self):
        rng = np.random.default_rng(1)
        layer = Dense(3, 2, rng=rng)
        x = rng.normal(size=(4, 3))

        def loss():
            return float(layer.forward(x, training=True).sum())

        numeric = numeric_grad(loss, layer.weight)
        layer.zero_grads()
        layer.forward(x, training=True)
        layer.backward(np.ones((4, 2)))
        np.testing.assert_allclose(layer.grads["weight"], numeric, atol=1e-5)

    def test_bias_gradient_matches_numeric(self):
        rng = np.random.default_rng(2)
        layer = Dense(3, 2, rng=rng)
        x = rng.normal(size=(4, 3))

        def loss():
            return float(layer.forward(x, training=True).sum())

        numeric = numeric_grad(loss, layer.bias)
        layer.zero_grads()
        layer.forward(x, training=True)
        layer.backward(np.ones((4, 2)))
        np.testing.assert_allclose(layer.grads["bias"], numeric, atol=1e-5)

    def test_input_gradient(self):
        layer = Dense(3, 2, rng=0)
        x = np.random.default_rng(3).normal(size=(2, 3))
        layer.forward(x, training=True)
        grad_in = layer.backward(np.ones((2, 2)))
        np.testing.assert_allclose(grad_in, np.ones((2, 2)) @ layer.weight.T)

    def test_grads_accumulate_until_zeroed(self):
        layer = Dense(2, 2, rng=0)
        x = np.ones((1, 2))
        layer.forward(x, training=True)
        layer.backward(np.ones((1, 2)))
        first = layer.grads["weight"].copy()
        layer.forward(x, training=True)
        layer.backward(np.ones((1, 2)))
        np.testing.assert_allclose(layer.grads["weight"], 2 * first)
        layer.zero_grads()
        assert np.all(layer.grads["weight"] == 0)

    def test_invalid_sizes_raise(self):
        with pytest.raises(ConfigurationError):
            Dense(0, 2)


@pytest.mark.parametrize("layer_cls,check", [
    (ReLU, lambda y, x: np.all(y == np.maximum(x, 0))),
    (Tanh, lambda y, x: np.allclose(y, np.tanh(x))),
    (Sigmoid, lambda y, x: np.allclose(y, 1 / (1 + np.exp(-x)))),
])
def test_activation_forward(layer_cls, check):
    x = np.linspace(-3, 3, 12).reshape(3, 4)
    assert check(layer_cls().forward(x), x)


@pytest.mark.parametrize("layer_cls", [ReLU, Tanh, Sigmoid, Softmax])
def test_activation_gradient_matches_numeric(layer_cls):
    rng = np.random.default_rng(4)
    x = rng.normal(size=(3, 4))
    layer = layer_cls()
    weights = rng.normal(size=(3, 4))  # random projection to scalar loss

    def loss():
        return float((layer.forward(x, training=True) * weights).sum())

    numeric = numeric_grad(loss, x)
    layer.forward(x, training=True)
    analytic = layer.backward(weights)
    np.testing.assert_allclose(analytic, numeric, atol=1e-5)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        out = Softmax().forward(np.random.default_rng(0).normal(size=(5, 3)))
        np.testing.assert_allclose(out.sum(axis=1), 1.0)

    def test_stable_for_large_logits(self):
        out = Softmax().forward(np.array([[1e4, 0.0]]))
        assert np.isfinite(out).all()
        assert out[0, 0] == pytest.approx(1.0)


class TestSigmoidStability:
    def test_extreme_inputs_finite(self):
        out = Sigmoid().forward(np.array([[-1e3, 1e3]]))
        assert np.isfinite(out).all()
        assert out[0, 0] == pytest.approx(0.0, abs=1e-12)
        assert out[0, 1] == pytest.approx(1.0)


class TestDropout:
    def test_inference_is_identity(self):
        x = np.ones((4, 4))
        np.testing.assert_array_equal(Dropout(0.5, rng=0).forward(x), x)

    def test_training_zeroes_some(self):
        x = np.ones((100, 10))
        out = Dropout(0.5, rng=0).forward(x, training=True)
        assert (out == 0).any()

    def test_training_preserves_expectation(self):
        x = np.ones((2000, 10))
        out = Dropout(0.3, rng=0).forward(x, training=True)
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_rate_zero_identity_even_training(self):
        x = np.ones((3, 3))
        np.testing.assert_array_equal(
            Dropout(0.0, rng=0).forward(x, training=True), x
        )

    def test_invalid_rate_raises(self):
        with pytest.raises(ConfigurationError):
            Dropout(1.0)

    def test_backward_applies_same_mask(self):
        layer = Dropout(0.5, rng=0)
        x = np.ones((10, 10))
        out = layer.forward(x, training=True)
        grad = layer.backward(np.ones((10, 10)))
        np.testing.assert_array_equal(grad == 0, out == 0)
