"""Tests for repro.rl.replay."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.rl.replay import PrioritizedReplayBuffer, ReplayBuffer, Transition


def make_transition(value=0.0, reward=1.0, terminal=False):
    return Transition(np.array([value]), reward,
                      None if terminal else np.array([[value + 1]]), terminal)


class TestReplayBuffer:
    def test_push_and_len(self):
        buf = ReplayBuffer(10, rng=0)
        buf.push(make_transition())
        assert len(buf) == 1

    def test_capacity_ring(self):
        buf = ReplayBuffer(3, rng=0)
        for i in range(5):
            buf.push(make_transition(float(i)))
        assert len(buf) == 3
        values = sorted(t.features[0] for t in buf._storage)
        assert values == [2.0, 3.0, 4.0]

    def test_sample_size(self):
        buf = ReplayBuffer(10, rng=0)
        for i in range(4):
            buf.push(make_transition(float(i)))
        assert len(buf.sample(8)) == 8  # sampling with replacement

    def test_sample_empty_raises(self):
        with pytest.raises(ConfigurationError):
            ReplayBuffer(5, rng=0).sample(1)

    def test_sample_nonpositive_raises(self):
        buf = ReplayBuffer(5, rng=0)
        buf.push(make_transition())
        with pytest.raises(ConfigurationError):
            buf.sample(0)

    def test_clear(self):
        buf = ReplayBuffer(5, rng=0)
        buf.push(make_transition())
        buf.clear()
        assert len(buf) == 0

    def test_invalid_capacity_raises(self):
        with pytest.raises(ConfigurationError):
            ReplayBuffer(0)

    def test_sampling_deterministic_with_seed(self):
        def collect(seed):
            buf = ReplayBuffer(10, rng=seed)
            for i in range(10):
                buf.push(make_transition(float(i)))
            return [t.features[0] for t in buf.sample(5)]

        assert collect(7) == collect(7)


class TestPrioritizedReplayBuffer:
    def test_new_transitions_sampleable(self):
        buf = PrioritizedReplayBuffer(10, rng=0)
        buf.push(make_transition(1.0))
        assert buf.sample(3)[0].features[0] == 1.0

    def test_high_priority_sampled_more(self):
        buf = PrioritizedReplayBuffer(10, alpha=1.0, rng=0)
        for i in range(2):
            buf.push(make_transition(float(i)))
        buf.sample(2)
        # Give transition 0 overwhelming priority.
        buf._last_sampled = np.array([0, 1])
        buf.update_priorities(np.array([100.0, 0.0]))
        counts = {0.0: 0, 1.0: 0}
        for t in buf.sample(200):
            counts[float(t.features[0])] += 1
        assert counts[0.0] > counts[1.0] * 3

    def test_update_priorities_shape_checked(self):
        buf = PrioritizedReplayBuffer(10, rng=0)
        buf.push(make_transition())
        buf.sample(2)
        with pytest.raises(ConfigurationError):
            buf.update_priorities(np.array([1.0, 2.0, 3.0]))

    def test_alpha_validated(self):
        with pytest.raises(ConfigurationError):
            PrioritizedReplayBuffer(10, alpha=1.5)

    def test_ring_overwrite_updates_priority_slot(self):
        buf = PrioritizedReplayBuffer(2, rng=0)
        for i in range(3):
            buf.push(make_transition(float(i)))
        assert len(buf) == 2
        # All priorities remain positive/valid for sampling.
        assert (buf._priorities[:2] > 0).all()
