"""Cross-mode environment behaviour: sticky runs, PM runs, edge budgets."""

import numpy as np
import pytest

from repro import CrowdRL, CrowdRLConfig, make_platform
from repro.core.result import LabelSource
from repro.datasets.synthetic import make_blobs


@pytest.fixture(scope="module")
def dataset():
    return make_blobs(45, 6, separation=3.0, rng=4)


def run_with(dataset, budget=160.0, **config_kwargs):
    defaults = dict(alpha=0.1, batch_size=4, k_per_object=2,
                    min_truths_for_enrichment=10,
                    train_steps_per_iteration=1, max_iterations=80)
    defaults.update(config_kwargs)
    platform = make_platform(dataset, n_workers=3, n_experts=1,
                             budget=budget, rng=9)
    outcome = CrowdRL(CrowdRLConfig(**defaults), rng=10).run(dataset, platform)
    return outcome, platform


class TestStickyMode:
    def test_sticky_enriched_objects_never_rehumanised(self, dataset):
        outcome, platform = run_with(dataset, budget=5_000.0,
                                     sticky_enrichment=True)
        # In sticky mode, an ENRICHED-sourced object must have no human
        # answers *after* it was enriched; since enriched objects are
        # masked, they can only carry answers from before enrichment.
        enriched_ids = np.nonzero(
            outcome.label_sources == LabelSource.ENRICHED
        )[0]
        assert enriched_ids.size > 0  # sticky run does enrich

    def test_sticky_underspends_large_budget(self, dataset):
        outcome, _ = run_with(dataset, budget=50_000.0,
                              sticky_enrichment=True)
        assert outcome.spent < 50_000.0


class TestPMMode:
    def test_pm_inference_runs_and_labels(self, dataset):
        # PM needs answer redundancy to de-noise; 200 units buys roughly
        # two answers per object, below that the trajectory is seed-luck.
        outcome, platform = run_with(dataset, budget=200.0,
                                     inference_method="pm")
        report = outcome.evaluate(platform.evaluation_labels())
        assert report.accuracy > 0.5

    def test_pm_mode_has_no_joint_classifier_bias(self, dataset):
        """PM mode must still produce a classifier for enrichment."""
        # A budget below full human coverage (45 objects x 2 answers each)
        # forces the run to lean on the classifier for the remainder, so
        # enrichment is structural; with a generous budget every object
        # ends human-sourced and the assertion reduces to seed luck.
        outcome, _ = run_with(dataset, inference_method="pm",
                              budget=80.0)
        counts = outcome.source_counts()
        assert counts["enriched"] + counts["predicted"] > 0


class TestEdgeBudgets:
    def test_budget_below_initial_sample(self, dataset):
        # Budget affords only part of the alpha-sample.
        outcome, platform = run_with(dataset, budget=3.0)
        assert outcome.spent <= 3.0
        assert outcome.final_labels.shape == (45,)

    def test_budget_exactly_one_answer(self, dataset):
        outcome, _ = run_with(dataset, budget=1.0)
        assert outcome.spent <= 1.0

    def test_greedy_no_ucb_mode(self, dataset):
        outcome, _ = run_with(dataset, ucb_exploration=False)
        assert outcome.final_labels.shape == (45,)
