"""Tests for the Platform protocol and wrap() composition (repro.crowd)."""

import pytest

from repro.crowd.compose import wrap
from repro.crowd.cost import BudgetManager
from repro.crowd.faults import FaultModel, UnreliablePlatform
from repro.crowd.platform import CrowdPlatform
from repro.crowd.protocol import Platform, check_platform
from repro.crowd.resilient import ResiliencePolicy, ResilientCollector
from repro.datasets.synthetic import make_blobs
from repro.exceptions import ConfigurationError

from conftest import build_pool


def make_platform(budget=500.0, seed=7):
    dataset = make_blobs(40, 6, separation=3.0, name="t", rng=seed)
    pool = build_pool(seed=seed)
    return CrowdPlatform(dataset.labels, pool, BudgetManager(budget))


class TestProtocolConformance:
    def test_bare_platform_satisfies_protocol(self):
        assert isinstance(make_platform(), Platform)

    def test_every_wrapper_layer_satisfies_protocol(self):
        chain = wrap(make_platform(), faults=0.1, resilient=True)
        layer = chain
        seen = []
        while True:
            assert isinstance(layer, Platform), type(layer).__name__
            seen.append(type(layer).__name__)
            inner = getattr(layer, "inner", None)
            if inner is None:
                break
            layer = inner
        assert seen == [
            "ResilientCollector", "UnreliablePlatform", "CrowdPlatform",
        ]

    def test_async_adapter_satisfies_protocol(self):
        from repro.serve import AsyncPlatform, LatencyModel, VirtualClock

        platform = make_platform()
        adapter = AsyncPlatform(
            platform,
            latency=LatencyModel(len(platform.pool)),
            clock=VirtualClock(),
        )
        assert isinstance(adapter, Platform)
        check_platform(adapter, context="test")

    def test_check_platform_lists_missing_members(self):
        class NotAPlatform:
            pool = ()

        with pytest.raises(ConfigurationError) as exc_info:
            check_platform(NotAPlatform(), context="unit test")
        message = str(exc_info.value)
        assert "unit test" in message
        assert "ask" in message and "budget" in message

    def test_lazy_export_from_repro(self):
        import repro

        assert repro.Platform is Platform
        assert repro.wrap is wrap
        assert "Platform" in dir(repro) and "wrap" in dir(repro)


class TestWrapComposition:
    def test_no_layers_returns_platform_unchanged(self):
        platform = make_platform()
        assert wrap(platform) is platform

    def test_float_rate_builds_fault_model(self):
        chain = wrap(make_platform(), faults=0.2, resilient=False)
        assert isinstance(chain, UnreliablePlatform)
        assert chain.fault_model.inert is False

    def test_faults_imply_resilience(self):
        chain = wrap(make_platform(), faults=0.2)
        assert isinstance(chain, ResilientCollector)
        assert isinstance(chain.inner, UnreliablePlatform)

    def test_resilient_without_faults(self):
        chain = wrap(make_platform(), resilient=True)
        assert isinstance(chain, ResilientCollector)
        assert isinstance(chain.inner, CrowdPlatform)

    def test_policy_as_resilient_argument(self):
        policy = ResiliencePolicy(max_retries=1)
        chain = wrap(make_platform(), faults=0.1, resilient=policy)
        assert chain.policy is policy

    def test_policy_both_ways_rejected(self):
        with pytest.raises(ConfigurationError):
            wrap(make_platform(), resilient=ResiliencePolicy(),
                 policy=ResiliencePolicy())

    def test_policy_with_resilience_disabled_rejected(self):
        with pytest.raises(ConfigurationError):
            wrap(make_platform(), resilient=False,
                 policy=ResiliencePolicy())

    def test_bool_faults_rejected(self):
        with pytest.raises(ConfigurationError):
            wrap(make_platform(), faults=True)

    def test_non_platform_rejected(self):
        with pytest.raises(ConfigurationError):
            wrap(object())

    def test_wrap_emits_no_deprecation_warnings(self, recwarn):
        wrap(make_platform(), faults=0.3, resilient=True)
        deprecations = [w for w in recwarn.list
                        if issubclass(w.category, DeprecationWarning)]
        assert deprecations == []

    def test_seeds_reach_the_layers(self):
        a = wrap(make_platform(seed=3), faults=0.5, fault_seed=11,
                 resilience_seed=12)
        b = wrap(make_platform(seed=3), faults=0.5, fault_seed=11,
                 resilience_seed=12)
        ra = a.ask_batch([(i, [0, 1, 2, 3]) for i in range(10)])
        rb = b.ask_batch([(i, [0, 1, 2, 3]) for i in range(10)])
        assert ra == rb
        assert a.stats == b.stats


class TestDeprecatedDirectConstruction:
    def test_unreliable_platform_warns(self):
        platform = make_platform()
        with pytest.warns(DeprecationWarning, match="repro.crowd.wrap"):
            UnreliablePlatform(platform, FaultModel(len(platform.pool)))

    def test_resilient_collector_warns(self):
        with pytest.warns(DeprecationWarning, match="repro.crowd.wrap"):
            ResilientCollector(make_platform(), rng=0)
