"""Tests for repro.utils.tables."""

import pytest

from repro.utils.tables import format_series, format_table


class TestFormatTable:
    def test_aligns_columns(self):
        out = format_table(["name", "value"], [["a", 1.5], ["bbbb", 2.25]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "1.500" in out and "2.250" in out

    def test_wrong_row_width_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_non_float_cells_stringified(self):
        out = format_table(["k"], [[42]])
        assert "42" in out

    def test_custom_float_format(self):
        out = format_table(["v"], [[0.123456]], float_fmt="{:.1f}")
        assert "0.1" in out and "0.12" not in out


class TestFormatSeries:
    def test_basic(self):
        out = format_series("CrowdRL", [3, 5], [0.9, 0.95])
        assert out == "CrowdRL: 3=0.900, 5=0.950"

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_series("x", [1], [1.0, 2.0])
