"""Property tests: vectorized top-k == the paper's heap oracle, ties included.

The vectorized implementations in :mod:`repro.utils.topk` promise to be
bit-compatible drop-ins for the original heap-based procedures, which
are kept in the module as ``*_reference`` oracles.  These tests pin that
equivalence on adversarial inputs: values are drawn from a small pool of
levels (ties are the norm, not the exception), ``-inf`` masking is mixed
in, and the grouped-selection cap is exercised — membership *and* order
must match exactly.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.topk import (
    select_objects_by_topk_q,
    select_objects_by_topk_q_reference,
    top_k_indices,
    top_k_indices_reference,
)

#: A few repeated levels plus -inf: almost every draw contains ties.
tie_rich_values = st.lists(
    st.sampled_from([-np.inf, -2.0, -1.0, 0.0, 0.0, 0.5, 1.0, 1.0, 2.0]),
    min_size=0,
    max_size=40,
)


@given(values=tie_rich_values, k=st.integers(0, 45))
@settings(max_examples=300, deadline=None)
def test_top_k_matches_heap_oracle(values, k):
    assert top_k_indices(values, k) == top_k_indices_reference(values, k)


@given(values=tie_rich_values, k=st.integers(0, 45))
@settings(max_examples=200, deadline=None)
def test_top_k_no_tiebreak_is_a_valid_topk_set(values, k):
    """``tie_break='none'`` may reorder, but the multiset of values must
    equal the deterministic selection's."""
    chosen = top_k_indices(values, k, tie_break="none")
    oracle = top_k_indices_reference(values, k)
    arr = np.asarray(values, dtype=float)
    assert len(chosen) == len(oracle)
    assert sorted(arr[chosen].tolist()) == sorted(arr[oracle].tolist())


@st.composite
def q_matrices(draw, max_rows=12, max_cols=6):
    n_rows = draw(st.integers(1, max_rows))
    n_cols = draw(st.integers(1, max_cols))
    cells = draw(st.lists(
        st.sampled_from([-np.inf, -1.0, 0.0, 0.0, 1.0, 1.0, 2.0, 3.0]),
        min_size=n_rows * n_cols, max_size=n_rows * n_cols,
    ))
    return np.array(cells).reshape(n_rows, n_cols)


@given(q=q_matrices(), k=st.integers(1, 8), n_objects=st.integers(0, 14))
@settings(max_examples=300, deadline=None)
def test_select_matches_heap_oracle(q, k, n_objects):
    assert select_objects_by_topk_q(q, k, n_objects) == \
        select_objects_by_topk_q_reference(q, k, n_objects)


@given(
    q=q_matrices(),
    k=st.integers(1, 8),
    n_objects=st.integers(0, 14),
    mask_bits=st.lists(st.booleans(), min_size=6, max_size=6),
    max_group=st.integers(0, 4),
)
@settings(max_examples=300, deadline=None)
def test_grouped_select_matches_heap_oracle(q, k, n_objects, mask_bits,
                                            max_group):
    group_mask = np.array(mask_bits[: q.shape[1]])
    assert select_objects_by_topk_q(
        q, k, n_objects, group_mask=group_mask, max_group=max_group
    ) == select_objects_by_topk_q_reference(
        q, k, n_objects, group_mask=group_mask, max_group=max_group
    )
