"""Tests for repro.datasets (generators and registry)."""

import numpy as np
import pytest

from repro.classifiers.logistic import LogisticRegressionClassifier
from repro.datasets import (
    DATASET_NAMES,
    LabelledDataset,
    load_dataset,
    make_blobs,
    make_fashion,
    make_speech,
)
from repro.datasets.speech import CONTEXTUAL_DIM, PROSODIC_DIM, SPEECH3_SIZE, SPEECH12_SIZE
from repro.datasets.fashion import FASHION_SIZE
from repro.exceptions import DatasetError


class TestLabelledDataset:
    def test_basic_properties(self):
        ds = LabelledDataset("x", np.zeros((4, 3)), np.array([0, 1, 0, 1]), 2)
        assert ds.n_objects == 4
        assert ds.n_features == 3
        np.testing.assert_allclose(ds.class_balance(), [0.5, 0.5])

    def test_label_shape_validated(self):
        with pytest.raises(DatasetError):
            LabelledDataset("x", np.zeros((4, 3)), np.array([0, 1]), 2)

    def test_label_range_validated(self):
        with pytest.raises(DatasetError):
            LabelledDataset("x", np.zeros((2, 3)), np.array([0, 2]), 2)

    def test_subsample_fraction(self):
        ds = make_blobs(100, 4, rng=0)
        sub = ds.subsample(0.3, rng=1)
        assert abs(sub.n_objects - 30) <= 2
        assert sub.n_features == 4

    def test_subsample_stratified_keeps_all_classes(self):
        ds = make_blobs(100, 4, n_classes=2,
                        class_balance=np.array([0.95, 0.05]), rng=0)
        sub = ds.subsample(0.1, rng=1)
        assert set(np.unique(sub.labels)) == {0, 1}

    def test_subsample_one_is_identity(self):
        ds = make_blobs(20, 4, rng=0)
        assert ds.subsample(1.0) is ds

    def test_subsample_invalid_fraction(self):
        ds = make_blobs(20, 4, rng=0)
        with pytest.raises(DatasetError):
            ds.subsample(0.0)


class TestMakeBlobs:
    def test_shapes(self):
        ds = make_blobs(50, 7, rng=0)
        assert ds.features.shape == (50, 7)
        assert ds.labels.shape == (50,)

    def test_separation_controls_difficulty(self):
        easy = make_blobs(300, 6, separation=4.0, rng=0)
        hard = make_blobs(300, 6, separation=0.5, rng=0)

        def fit_acc(ds):
            clf = LogisticRegressionClassifier(6, 2).fit(ds.features, ds.labels)
            return (clf.predict(ds.features) == ds.labels).mean()

        assert fit_acc(easy) > fit_acc(hard) + 0.1

    def test_uninformative_dims_are_noise(self):
        ds = make_blobs(500, 10, n_informative=2, separation=5.0, rng=0)
        # Class-conditional means should differ only in informative dims.
        mean_diff = np.abs(
            ds.features[ds.labels == 0].mean(axis=0)
            - ds.features[ds.labels == 1].mean(axis=0)
        )
        assert mean_diff[:2].max() > 5 * mean_diff[2:].max()

    def test_class_balance_respected(self):
        ds = make_blobs(2000, 3, class_balance=np.array([0.8, 0.2]), rng=0)
        assert ds.class_balance()[0] == pytest.approx(0.8, abs=0.05)

    def test_deterministic(self):
        a = make_blobs(30, 4, rng=9)
        b = make_blobs(30, 4, rng=9)
        np.testing.assert_array_equal(a.features, b.features)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_invalid_params_raise(self):
        with pytest.raises(DatasetError):
            make_blobs(0, 3)
        with pytest.raises(DatasetError):
            make_blobs(10, 3, n_informative=5)
        with pytest.raises(DatasetError):
            make_blobs(10, 3, n_classes=1)


class TestMakeSpeech:
    def test_paper_sizes_at_full_scale(self):
        assert make_speech("12", "C", rng=0).n_objects == SPEECH12_SIZE
        assert make_speech("3", "C", rng=0).n_objects == SPEECH3_SIZE

    def test_view_dimensions(self):
        c = make_speech("12", "C", scale=1.0, rng=0)
        p = make_speech("12", "P", scale=1.0, rng=0)
        cp = make_speech("12", "CP", scale=1.0, rng=0)
        assert c.n_features == CONTEXTUAL_DIM
        assert p.n_features == PROSODIC_DIM
        assert cp.n_features == CONTEXTUAL_DIM + PROSODIC_DIM

    def test_scale_shrinks(self):
        ds = make_speech("12", "CP", scale=0.05, rng=0)
        assert ds.n_objects == round(SPEECH12_SIZE * 0.05)
        assert ds.n_features < 200

    def test_concatenated_view_beats_single_views(self):
        """The paper's observation (5): S·CP > max(S·C, S·P).

        Measured on held-out data — in the wide prosodic view a linear
        model can reach 100% *training* accuracy by overfitting, so only
        generalisation accuracy is meaningful here.
        """
        def holdout_acc(view, seed=0):
            ds = make_speech("12", view, scale=0.3, rng=seed)
            half = ds.n_objects // 2
            clf = LogisticRegressionClassifier(ds.n_features, 2)
            clf.fit(ds.features[:half], ds.labels[:half])
            return (clf.predict(ds.features[half:]) == ds.labels[half:]).mean()

        acc_c = np.mean([holdout_acc("C", s) for s in range(3)])
        acc_p = np.mean([holdout_acc("P", s) for s in range(3)])
        acc_cp = np.mean([holdout_acc("CP", s) for s in range(3)])
        assert acc_cp > max(acc_c, acc_p)

    def test_speech3_harder_than_speech12(self):
        s12 = make_speech("12", "CP", scale=0.2, rng=0)
        s3 = make_speech("3", "CP", scale=0.2, rng=0)
        assert s3.metadata["separation"] < s12.metadata["separation"]

    def test_invalid_grade_and_view_raise(self):
        with pytest.raises(DatasetError):
            make_speech("7", "C")
        with pytest.raises(DatasetError):
            make_speech("12", "X")
        with pytest.raises(DatasetError):
            make_speech("12", "C", scale=0)


class TestMakeFashion:
    def test_paper_size(self):
        assert make_fashion(scale=1.0, rng=0).n_objects == FASHION_SIZE

    def test_easier_than_speech(self):
        fashion = make_fashion(scale=0.01, rng=0)
        speech = make_speech("3", "CP", scale=0.1, rng=0)
        assert fashion.metadata["separation"] > speech.metadata["separation"]

    def test_invalid_scale_raises(self):
        with pytest.raises(DatasetError):
            make_fashion(scale=1.5)


class TestRegistry:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_all_paper_names_load(self, name):
        ds = load_dataset(name, scale=0.01, rng=0)
        assert ds.n_objects >= 20
        assert ds.n_classes == 2

    def test_case_insensitive(self):
        assert load_dataset("fashion", scale=0.01, rng=0).name == "Fashion"
        assert load_dataset("s12cp", scale=0.01, rng=0).name == "S12CP"

    def test_unknown_name_raises(self):
        with pytest.raises(DatasetError):
            load_dataset("imagenet")
