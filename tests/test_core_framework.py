"""Tests for repro.core.framework (Algorithm 1 end to end)."""

import numpy as np
import pytest

from repro import BudgetManager, CrowdRL, CrowdRLConfig, make_platform
from repro.core.framework import LabellingFramework
from repro.core.result import LabelSource
from repro.crowd.platform import CrowdPlatform
from repro.datasets.synthetic import make_blobs
from repro.exceptions import ConfigurationError

from conftest import build_pool


def quick_config(**kwargs):
    defaults = dict(alpha=0.1, batch_size=4, k_per_object=2,
                    min_truths_for_enrichment=10,
                    train_steps_per_iteration=2, max_iterations=50)
    defaults.update(kwargs)
    return CrowdRLConfig(**defaults)


@pytest.fixture
def dataset():
    return make_blobs(50, 6, separation=3.0, rng=0)


def fresh_platform(dataset, budget=150.0, seed=1):
    return make_platform(dataset, n_workers=3, n_experts=1, budget=budget,
                         rng=seed)


class TestRun:
    def test_produces_labels_for_all_objects(self, dataset):
        platform = fresh_platform(dataset)
        outcome = CrowdRL(quick_config(), rng=2).run(dataset, platform)
        assert outcome.final_labels.shape == (50,)
        assert set(np.unique(outcome.label_sources)) <= {0, 1, 2}

    def test_budget_never_exceeded(self, dataset):
        platform = fresh_platform(dataset, budget=60.0)
        outcome = CrowdRL(quick_config(), rng=2).run(dataset, platform)
        assert outcome.spent <= 60.0 + 1e-9

    def test_reasonable_accuracy_on_separable_data(self, dataset):
        accs = []
        for seed in (2, 3, 4):
            platform = fresh_platform(dataset, budget=200.0)
            config = quick_config(k_per_object=3)
            outcome = CrowdRL(config, rng=seed).run(dataset, platform)
            accs.append(
                outcome.evaluate(platform.evaluation_labels()).accuracy
            )
        assert np.mean(accs) > 0.7

    def test_human_sources_match_truth_count(self, dataset):
        platform = fresh_platform(dataset)
        outcome = CrowdRL(quick_config(), rng=2).run(dataset, platform)
        counts = outcome.source_counts()
        assert counts["human"] == outcome.extras["n_truths"]

    def test_reward_history_populated(self, dataset):
        platform = fresh_platform(dataset)
        outcome = CrowdRL(quick_config(), rng=2).run(dataset, platform)
        assert len(outcome.reward_history) >= 1

    def test_dataset_platform_size_mismatch_raises(self, dataset):
        other = make_blobs(20, 6, rng=1)
        platform = fresh_platform(dataset)
        with pytest.raises(ConfigurationError):
            CrowdRL(quick_config()).run(other, platform)

    def test_max_iterations_respected(self, dataset):
        platform = fresh_platform(dataset, budget=10_000.0)
        config = quick_config(max_iterations=3)
        outcome = CrowdRL(config, rng=2).run(dataset, platform)
        assert outcome.iterations <= 3

    def test_sticky_mode_stops_when_all_labelled(self, dataset):
        platform = fresh_platform(dataset, budget=10_000.0)
        config = quick_config(sticky_enrichment=True)
        outcome = CrowdRL(config, rng=2).run(dataset, platform)
        # In sticky mode the run terminates by coverage, not budget.
        assert outcome.spent < 10_000.0

    def test_tiny_budget_still_returns_labels(self, dataset):
        platform = fresh_platform(dataset, budget=6.0)
        outcome = CrowdRL(quick_config(), rng=2).run(dataset, platform)
        assert outcome.final_labels.shape == (50,)
        assert outcome.spent <= 6.0


class TestPretraining:
    def test_pretrain_transfers_weights(self, dataset):
        framework = CrowdRL(quick_config(), rng=3)
        pre_set = make_blobs(30, 6, separation=2.0, rng=5)
        framework.pretrain(pre_set, fresh_platform(pre_set, seed=6))
        assert framework._pretrained_weights is not None
        platform = fresh_platform(dataset)
        outcome = framework.run(dataset, platform)
        assert outcome.final_labels.shape == (50,)

    def test_deterministic_given_seed(self, dataset):
        def run_once():
            platform = fresh_platform(dataset, seed=9)
            return CrowdRL(quick_config(), rng=11).run(dataset, platform)

        a, b = run_once(), run_once()
        np.testing.assert_array_equal(a.final_labels, b.final_labels)
        assert a.spent == b.spent


class TestFinalizeLabels:
    def test_precedence_human_over_enriched(self):
        labels, sources = LabellingFramework._finalize_labels(
            3, 2, truths={0: 1}, enriched={0: 0, 1: 0}, fallback_proba=None
        )
        assert labels[0] == 1
        assert sources[0] == LabelSource.HUMAN
        assert labels[1] == 0
        assert sources[1] == LabelSource.ENRICHED

    def test_fallback_uses_classifier(self):
        proba = np.array([[0.9, 0.1], [0.1, 0.9], [0.2, 0.8]])
        labels, sources = LabellingFramework._finalize_labels(
            3, 2, truths={}, enriched={}, fallback_proba=proba
        )
        np.testing.assert_array_equal(labels, [0, 1, 1])
        assert (sources == LabelSource.PREDICTED).all()

    def test_no_classifier_majority_default(self):
        labels, _sources = LabellingFramework._finalize_labels(
            4, 2, truths={0: 1, 1: 1, 2: 0}, enriched={}, fallback_proba=None
        )
        assert labels[3] == 1  # majority of truths
