"""Exception hierarchy for the CrowdRL reproduction library.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Sub-classes separate configuration mistakes (caller
error) from runtime conditions (budget exhaustion, failed convergence).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid parameter or inconsistent configuration was supplied."""


class BudgetExhaustedError(ReproError, RuntimeError):
    """An operation required budget that the budget manager no longer has."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative algorithm failed to converge within its iteration cap."""


class DatasetError(ReproError, ValueError):
    """A dataset is malformed or an unknown dataset name was requested."""


class NotFittedError(ReproError, RuntimeError):
    """A model was used for prediction before being fitted."""
