"""Exception hierarchy for the CrowdRL reproduction library.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Sub-classes separate configuration mistakes (caller
error) from runtime conditions (budget exhaustion, failed convergence).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid parameter or inconsistent configuration was supplied."""


class BudgetExhaustedError(ReproError, RuntimeError):
    """An operation required budget that the budget manager no longer has."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative algorithm failed to converge within its iteration cap."""


class DatasetError(ReproError, ValueError):
    """A dataset is malformed or an unknown dataset name was requested."""


class NotFittedError(ReproError, RuntimeError):
    """A model was used for prediction before being fitted."""


class FaultError(ReproError, RuntimeError):
    """Base class for injected crowd-platform faults.

    Raised by :class:`repro.crowd.faults.UnreliablePlatform` when the fault
    model decides a request misbehaves.  The :class:`ResilientCollector`
    catches these and applies its retry/reassign/quarantine policies; bare
    platforms let them propagate, which is the failure mode the resilience
    layer exists to remove.
    """

    def __init__(self, message: str, *, object_id: int = -1,
                 annotator_id: int = -1) -> None:
        super().__init__(message)
        self.object_id = object_id
        self.annotator_id = annotator_id


class AnswerTimeoutError(FaultError):
    """The annotator accepted the task but never delivered in time.

    Work was started, so the fault model may charge a partial (wasted) cost
    even though no answer is recorded.
    """


class AnnotatorUnavailableError(FaultError):
    """The annotator abandoned the task or is offline (burst outage)."""


class CollectionFailedError(FaultError):
    """The resilient collector exhausted retries and reassignment options."""


class CheckpointError(ReproError, RuntimeError):
    """A run checkpoint is missing, malformed, or inconsistent with the run."""


class ShardError(ReproError, RuntimeError):
    """A sharded sweep failed: a shard raised, or its journal is unusable.

    Raised by :class:`repro.harness.parallel.ShardedRunner` when a shard's
    task function raises inside a worker (the remote traceback is carried
    in the message) or when a sweep journal cannot be matched to the sweep
    being (re)run.
    """
