"""Small shared utilities: RNG handling, validation, top-k selection, tables."""

from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.topk import (
    select_objects_by_topk_q,
    select_objects_by_topk_q_reference,
    top_k_indices,
    top_k_indices_reference,
    top_k_sum,
)
from repro.utils.validation import (
    check_fraction,
    check_positive,
    check_probability_matrix,
    check_probability_vector,
)

__all__ = [
    "as_rng",
    "spawn_rngs",
    "top_k_indices",
    "top_k_indices_reference",
    "top_k_sum",
    "select_objects_by_topk_q",
    "select_objects_by_topk_q_reference",
    "check_fraction",
    "check_positive",
    "check_probability_matrix",
    "check_probability_vector",
]
