"""Plain-text table rendering for benchmark and harness reports."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    float_fmt: str = "{:.3f}",
    min_width: int = 6,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table.

    Floats are formatted with ``float_fmt``; everything else via ``str``.
    """
    def cell(value: object) -> str:
        if isinstance(value, float):
            return float_fmt.format(value)
        return str(value)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [max(min_width, len(h)) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for j, text in enumerate(row):
            widths[j] = max(widths[j], len(text))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(text.ljust(widths[j]) for j, text in enumerate(cells)).rstrip()

    sep = "  ".join("-" * w for w in widths)
    out = [line(list(headers)), sep]
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def format_series(name: str, xs: Sequence[object], ys: Sequence[float],
                  *, float_fmt: str = "{:.3f}") -> str:
    """Render one named data series, e.g. for a figure's line plot."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must be the same length")
    pts = ", ".join(f"{x}={float_fmt.format(float(y))}" for x, y in zip(xs, ys))
    return f"{name}: {pts}"
