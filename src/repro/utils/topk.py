"""Top-k selection utilities, including the paper's min-heap object selection.

Section IV ("Discussion") of the paper assigns ``k`` annotators per object by
computing, for each candidate object, the sum of the top-``k`` Q-values over
annotators and then selecting the objects with the largest sums via a
min-heap.  :func:`select_objects_by_topk_q` implements exactly that
selection — but vectorized: the production path ranks whole matrices with
``np.argsort``/``np.argpartition`` instead of Python-level heaps, while
:func:`select_objects_by_topk_q_reference` keeps the paper-literal heap
procedure as the oracle the property tests pin the vectorized path against.

Every function here breaks ties deterministically by **lower index** (the
``(value, -index)`` ordering of the original heap formulation), so the
vectorized implementations are bit-compatible drop-ins: same inputs, same
selections, same output order.
"""

from __future__ import annotations

import heapq
from typing import Optional, Sequence

import numpy as np


def top_k_indices(values: Sequence[float], k: int, *,
                  tie_break: str = "index") -> list[int]:
    """Return indices of the ``k`` largest entries, largest first.

    The single top-k entry point used by agent selection, the
    active-learning selectors and enrichment alike.

    Parameters
    ----------
    values:
        1-D array-like of scores.  ``-inf`` entries sort last; ``NaN`` is
        unsupported (rankings involving NaN are not well defined).
    k:
        How many indices to return; ``k`` larger than ``len(values)``
        returns every index.
    tie_break:
        ``"index"`` (default) orders equal values by lower index — the
        deterministic ``(value, -index)`` ordering every caller in this
        repository relies on.  ``"none"`` skips the deterministic
        ordering entirely: the result is the ``k`` largest entries in
        unspecified order (pure ``np.argpartition``, the fastest option
        when the caller re-sorts or only needs set membership).

    Notes
    -----
    Implemented with ``np.argpartition``: an O(n) partition finds the
    ``k``-th value, index-ordered candidates are completed from the tied
    boundary group, and only the ``k`` survivors pay a sort.
    """
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    if tie_break not in ("index", "none"):
        raise ValueError(
            f"tie_break must be 'index' or 'none', got {tie_break!r}"
        )
    arr = np.asarray(values, dtype=float).ravel()
    k = min(k, arr.size)
    if k == 0:
        return []
    if tie_break == "none":
        if k >= arr.size:
            return list(range(arr.size))
        return [int(i) for i in np.argpartition(-arr, k - 1)[:k]]
    if k >= arr.size:
        order = np.argsort(-arr, kind="stable")
        return [int(i) for i in order]
    # Partition once to find the k-th largest value, then resolve the tie
    # group at the boundary by lowest index — the exact (value, -index)
    # ordering of the heap reference.
    part = np.argpartition(-arr, k - 1)
    kth_value = arr[part[k - 1]]
    above = np.flatnonzero(arr > kth_value)
    ties = np.flatnonzero(arr == kth_value)[: k - above.size]
    chosen = np.concatenate([above, ties])
    # `chosen` is index-ascending within each value group, so a stable
    # sort on value alone reproduces (value desc, index asc).
    order = chosen[np.argsort(-arr[chosen], kind="stable")]
    return [int(i) for i in order]


def top_k_indices_reference(values: Sequence[float], k: int) -> list[int]:
    """The original heap-based top-k — kept as the property-test oracle."""
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    arr = np.asarray(values, dtype=float).ravel()
    k = min(k, arr.size)
    if k == 0:
        return []
    # heapq.nlargest on (value, -index) gives deterministic tie-breaking.
    best = heapq.nlargest(k, ((v, -i) for i, v in enumerate(arr)))
    return [-neg_i for _v, neg_i in best]


def top_k_sum(values: Sequence[float], k: int) -> float:
    """Sum of the ``k`` largest entries of ``values``."""
    idx = top_k_indices(values, k)
    arr = np.asarray(values, dtype=float).ravel()
    return float(arr[idx].sum()) if idx else 0.0


def _check_select_args(q: np.ndarray, k_annotators: int,
                       group_mask: Optional[np.ndarray],
                       max_group: Optional[int]) -> Optional[np.ndarray]:
    """Shared validation for the two select implementations."""
    if q.ndim != 2:
        raise ValueError(f"q_matrix must be 2-D, got shape {q.shape}")
    if k_annotators <= 0:
        raise ValueError(f"k_annotators must be > 0, got {k_annotators}")
    if group_mask is not None:
        group_mask = np.asarray(group_mask, dtype=bool)
        if group_mask.shape != (q.shape[1],):
            raise ValueError(
                f"group_mask must have shape ({q.shape[1]},), got "
                f"{group_mask.shape}"
            )
        if max_group is None or max_group < 0:
            raise ValueError("max_group must be a non-negative int with group_mask")
    return group_mask


def select_objects_by_topk_q(
    q_matrix: np.ndarray,
    k_annotators: int,
    n_objects: int,
    *,
    group_mask: Optional[np.ndarray] = None,
    max_group: Optional[int] = None,
) -> list[tuple[int, list[int]]]:
    """Select objects and their annotator assignments from a Q-value matrix.

    Parameters
    ----------
    q_matrix:
        ``(|O|, |W|)`` array of Q-values.  Masked entries (e.g. objects that
        are already labelled) should be ``-inf``; a row whose top-``k`` sum is
        ``-inf`` is never selected.
    k_annotators:
        Number of annotators to assign per object (the paper's ``k``).
    n_objects:
        Number of objects to select this iteration (batch size).
    group_mask / max_group:
        Optional per-annotator boolean mask and a cap: at most ``max_group``
        annotators with a True mask may be assigned to any single object
        (e.g. "at most one expert per object").  Remaining slots fall to the
        best annotators outside the group.

    Returns
    -------
    list of ``(object_index, [annotator indices])`` pairs, ordered by
    decreasing top-``k`` Q-value sum, ties by lower object index —
    identical membership and order to the paper's min-heap procedure
    (:func:`select_objects_by_topk_q_reference`), but computed with one
    matrix-level ranking pass instead of a per-row Python loop.
    """
    q = np.asarray(q_matrix, dtype=float)
    group_mask = _check_select_args(q, k_annotators, group_mask, max_group)
    if n_objects <= 0:
        return []
    n_rows, n_cols = q.shape
    k = min(k_annotators, n_cols)

    # Rank every row's annotators by (value desc, index asc); -inf entries
    # sort last, so finite candidates form a prefix of each ranked row.
    order = np.argsort(-q, axis=1, kind="stable")
    vals = np.take_along_axis(q, order, axis=1)
    finite = np.isfinite(vals)
    if group_mask is None:
        allowed = finite
    else:
        in_group = group_mask[order]
        # g-th capped-group member (in ranked order) is eligible iff
        # g <= max_group; skipped members never consume a slot, exactly
        # like the reference loop's `continue`.
        group_rank = np.cumsum(in_group & finite, axis=1)
        allowed = finite & (~in_group | (group_rank <= max_group))
    position = np.cumsum(allowed, axis=1)
    chosen = allowed & (position <= k)
    n_chosen = chosen.sum(axis=1)

    # Gather each row's chosen values contiguously (ranked order, padded
    # with trailing zeros) and sum rows grouped by their chosen count, so
    # every row's score reduces over exactly the same operand sequence as
    # the reference's `q[i, annotators].sum()` — bit-identical scores.
    padded = np.zeros((n_rows, k))
    rows_sel, cols_sel = np.nonzero(chosen)
    padded[rows_sel, position[chosen] - 1] = vals[chosen]
    scores = np.zeros(n_rows)
    for m in np.unique(n_chosen):
        if m == 0:
            continue
        rows_m = np.flatnonzero(n_chosen == m)
        scores[rows_m] = padded[np.ix_(rows_m, np.arange(m))].sum(axis=1)

    selectable = np.flatnonzero(n_chosen > 0)
    if selectable.size == 0:
        return []
    # (score desc, object index asc): a stable sort over index-ascending
    # candidates replicates both the heap's tie membership (first n rows
    # at a tied score survive, since eviction needed a strictly greater
    # score) and its final ordering.
    ranked = selectable[
        np.argsort(-scores[selectable], kind="stable")[:n_objects]
    ]
    return [
        (int(i), [int(j) for j in order[i][chosen[i]]])
        for i in ranked
    ]


def select_objects_by_topk_q_reference(
    q_matrix: np.ndarray,
    k_annotators: int,
    n_objects: int,
    *,
    group_mask: Optional[np.ndarray] = None,
    max_group: Optional[int] = None,
) -> list[tuple[int, list[int]]]:
    """The paper-literal min-heap selection — the property-test oracle.

    Same contract as :func:`select_objects_by_topk_q`; kept verbatim from
    the pre-vectorization implementation so the property tests can pin
    ``vectorized == heap`` on arbitrary inputs, including ties.
    """
    q = np.asarray(q_matrix, dtype=float)
    group_mask = _check_select_args(q, k_annotators, group_mask, max_group)
    if n_objects <= 0:
        return []

    def row_top_k(row: np.ndarray) -> list[int]:
        ranked = [j for j in top_k_indices_reference(row, row.size)
                  if np.isfinite(row[j])]
        if group_mask is None:
            return ranked[:k_annotators]
        chosen: list[int] = []
        in_group = 0
        for j in ranked:
            if group_mask[j]:
                if in_group >= max_group:
                    continue
                in_group += 1
            chosen.append(j)
            if len(chosen) == k_annotators:
                break
        return chosen

    # Min-heap of (score, -object_index) holding the best candidates so far.
    heap: list[tuple[float, int]] = []
    assignments: dict[int, list[int]] = {}
    for i in range(q.shape[0]):
        # Only unmasked pairs may be assigned; a partially masked row is
        # still selectable through its remaining valid annotators.
        annotators = row_top_k(q[i])
        if not annotators:
            continue  # fully masked row: object already labelled
        score = float(q[i, annotators].sum())
        if len(heap) < n_objects:
            heapq.heappush(heap, (score, -i))
            assignments[i] = annotators
        elif score > heap[0][0]:
            _, neg_evicted = heapq.heapreplace(heap, (score, -i))
            del assignments[-neg_evicted]
            assignments[i] = annotators

    ranked = sorted(heap, key=lambda item: (-item[0], -item[1]))
    return [(-neg_i, assignments[-neg_i]) for _score, neg_i in ranked]
