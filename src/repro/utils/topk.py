"""Top-k selection utilities, including the paper's min-heap object selection.

Section IV ("Discussion") of the paper assigns ``k`` annotators per object by
computing, for each candidate object, the sum of the top-``k`` Q-values over
annotators and then selecting the objects with the largest sums via a
min-heap.  :func:`select_objects_by_topk_q` implements exactly that.
"""

from __future__ import annotations

import heapq
from typing import Optional, Sequence

import numpy as np


def top_k_indices(values: Sequence[float], k: int) -> list[int]:
    """Return indices of the ``k`` largest entries, largest first.

    Ties are broken by lower index so the result is deterministic.  ``k``
    larger than ``len(values)`` returns every index.
    """
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    arr = np.asarray(values, dtype=float)
    k = min(k, arr.size)
    if k == 0:
        return []
    # heapq.nlargest on (value, -index) gives deterministic tie-breaking.
    best = heapq.nlargest(k, ((v, -i) for i, v in enumerate(arr)))
    return [-neg_i for _v, neg_i in best]


def top_k_sum(values: Sequence[float], k: int) -> float:
    """Sum of the ``k`` largest entries of ``values``."""
    idx = top_k_indices(values, k)
    arr = np.asarray(values, dtype=float)
    return float(arr[idx].sum()) if idx else 0.0


def select_objects_by_topk_q(
    q_matrix: np.ndarray,
    k_annotators: int,
    n_objects: int,
    *,
    group_mask: Optional[np.ndarray] = None,
    max_group: Optional[int] = None,
) -> list[tuple[int, list[int]]]:
    """Select objects and their annotator assignments from a Q-value matrix.

    Parameters
    ----------
    q_matrix:
        ``(|O|, |W|)`` array of Q-values.  Masked entries (e.g. objects that
        are already labelled) should be ``-inf``; a row whose top-``k`` sum is
        ``-inf`` is never selected.
    k_annotators:
        Number of annotators to assign per object (the paper's ``k``).
    n_objects:
        Number of objects to select this iteration (batch size).
    group_mask / max_group:
        Optional per-annotator boolean mask and a cap: at most ``max_group``
        annotators with a True mask may be assigned to any single object
        (e.g. "at most one expert per object").  Remaining slots fall to the
        best annotators outside the group.

    Returns
    -------
    list of ``(object_index, [annotator indices])`` pairs, ordered by
    decreasing top-``k`` Q-value sum.  The min-heap keeps only the current
    best ``n_objects`` candidates, as described in the paper.
    """
    q = np.asarray(q_matrix, dtype=float)
    if q.ndim != 2:
        raise ValueError(f"q_matrix must be 2-D, got shape {q.shape}")
    if k_annotators <= 0:
        raise ValueError(f"k_annotators must be > 0, got {k_annotators}")
    if n_objects <= 0:
        return []
    if group_mask is not None:
        group_mask = np.asarray(group_mask, dtype=bool)
        if group_mask.shape != (q.shape[1],):
            raise ValueError(
                f"group_mask must have shape ({q.shape[1]},), got "
                f"{group_mask.shape}"
            )
        if max_group is None or max_group < 0:
            raise ValueError("max_group must be a non-negative int with group_mask")

    def row_top_k(row: np.ndarray) -> list[int]:
        ranked = [j for j in top_k_indices(row, row.size)
                  if np.isfinite(row[j])]
        if group_mask is None:
            return ranked[:k_annotators]
        chosen: list[int] = []
        in_group = 0
        for j in ranked:
            if group_mask[j]:
                if in_group >= max_group:
                    continue
                in_group += 1
            chosen.append(j)
            if len(chosen) == k_annotators:
                break
        return chosen

    # Min-heap of (score, -object_index) holding the best candidates so far.
    heap: list[tuple[float, int]] = []
    assignments: dict[int, list[int]] = {}
    for i in range(q.shape[0]):
        # Only unmasked pairs may be assigned; a partially masked row is
        # still selectable through its remaining valid annotators.
        annotators = row_top_k(q[i])
        if not annotators:
            continue  # fully masked row: object already labelled
        score = float(q[i, annotators].sum())
        if len(heap) < n_objects:
            heapq.heappush(heap, (score, -i))
            assignments[i] = annotators
        elif score > heap[0][0]:
            _, neg_evicted = heapq.heapreplace(heap, (score, -i))
            del assignments[-neg_evicted]
            assignments[i] = annotators

    ranked = sorted(heap, key=lambda item: (-item[0], -item[1]))
    return [(-neg_i, assignments[-neg_i]) for _score, neg_i in ranked]
