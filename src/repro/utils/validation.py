"""Argument validation helpers shared across the library.

These raise :class:`repro.exceptions.ConfigurationError` with a message that
names the offending parameter, so misconfiguration surfaces at construction
time rather than deep inside an experiment run.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError

_ATOL = 1e-6


def check_positive(value: float, name: str, *, strict: bool = True) -> float:
    """Validate that ``value`` is positive (or non-negative when not strict)."""
    if strict and not value > 0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    if not strict and value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")
    return value


def check_fraction(value: float, name: str, *, inclusive_low: bool = False,
                   inclusive_high: bool = True) -> float:
    """Validate that ``value`` lies in the (0, 1] interval by default."""
    low_ok = value >= 0 if inclusive_low else value > 0
    high_ok = value <= 1 if inclusive_high else value < 1
    if not (low_ok and high_ok):
        lo = "[0" if inclusive_low else "(0"
        hi = "1]" if inclusive_high else "1)"
        raise ConfigurationError(f"{name} must be in {lo}, {hi}, got {value!r}")
    return value


def check_probability_vector(vec: np.ndarray, name: str) -> np.ndarray:
    """Validate a 1-D non-negative vector summing to one."""
    arr = np.asarray(vec, dtype=float)
    if arr.ndim != 1:
        raise ConfigurationError(f"{name} must be 1-D, got shape {arr.shape}")
    if np.any(arr < -_ATOL):
        raise ConfigurationError(f"{name} has negative entries")
    if not np.isclose(arr.sum(), 1.0, atol=1e-4):
        raise ConfigurationError(f"{name} must sum to 1, sums to {arr.sum():.6f}")
    return arr


def check_probability_matrix(mat: np.ndarray, name: str) -> np.ndarray:
    """Validate a square row-stochastic matrix (each row sums to one)."""
    arr = np.asarray(mat, dtype=float)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise ConfigurationError(f"{name} must be square 2-D, got shape {arr.shape}")
    if np.any(arr < -_ATOL):
        raise ConfigurationError(f"{name} has negative entries")
    row_sums = arr.sum(axis=1)
    if not np.allclose(row_sums, 1.0, atol=1e-4):
        raise ConfigurationError(
            f"rows of {name} must sum to 1, got sums {np.round(row_sums, 4)}"
        )
    return arr
