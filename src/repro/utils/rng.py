"""Deterministic random-number-generator plumbing.

Every stochastic component in the library accepts a ``seed`` argument that
may be ``None``, an ``int`` or a ready-made :class:`numpy.random.Generator`.
Centralising the coercion here keeps experiments reproducible end to end:
the harness seeds one generator and derives independent child streams for
the dataset, the annotators, the agent and the classifier.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def as_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged so that callers can
    share one stream; anything else is handed to ``np.random.default_rng``.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators from ``seed``.

    Children are derived through ``Generator.spawn`` (SeedSequence-based), so
    changing the number of draws one component makes never perturbs another
    component's stream.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of rngs: {n}")
    return list(as_rng(seed).spawn(n))


def spawn_rng_at(seed: int, index: int) -> np.random.Generator:
    """The ``index``-th ``Generator.spawn`` child of ``seed``, derived alone.

    Bit-identical to ``spawn_rngs(seed, n)[index]`` for any ``n > index``
    (a spawned child's stream depends only on the parent entropy and its
    spawn position), but computable without materialising the siblings —
    which lets a sharded worker rebuild exactly its own shard's stream
    from two plain ints instead of receiving a pickled parent generator.
    """
    if index < 0:
        raise ValueError(f"spawn index must be >= 0, got {index}")
    return np.random.default_rng(
        np.random.SeedSequence(seed, spawn_key=(index,))
    )
