"""Precision, recall, F1 and accuracy (Section VI-A3's metrics).

The paper's tasks are binary, so precision/recall default to treating class
1 as positive; multi-class inputs use macro averaging.  A convenience
:func:`evaluate_labels` produces the full report the harness prints.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError


def _check_labels(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=int)
    y_pred = np.asarray(y_pred, dtype=int)
    if y_true.shape != y_pred.shape or y_true.ndim != 1:
        raise ConfigurationError(
            f"label arrays must be equal-length 1-D, got {y_true.shape} and "
            f"{y_pred.shape}"
        )
    if y_true.size == 0:
        raise ConfigurationError("cannot compute metrics on empty label arrays")
    return y_true, y_pred


def confusion_counts(y_true: np.ndarray, y_pred: np.ndarray,
                     n_classes: int) -> np.ndarray:
    """``(true, predicted)`` count table."""
    y_true, y_pred = _check_labels(y_true, y_pred)
    if n_classes < 2:
        raise ConfigurationError(f"n_classes must be >= 2, got {n_classes}")
    counts = np.zeros((n_classes, n_classes), dtype=int)
    np.add.at(counts, (y_true, y_pred), 1)
    return counts


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of predictions matching the true labels."""
    y_true, y_pred = _check_labels(y_true, y_pred)
    return float((y_true == y_pred).mean())


def _per_class_prf(counts: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    tp = np.diag(counts).astype(float)
    pred_pos = counts.sum(axis=0).astype(float)
    true_pos = counts.sum(axis=1).astype(float)
    with np.errstate(invalid="ignore", divide="ignore"):
        prec = np.where(pred_pos > 0, tp / pred_pos, 0.0)
        rec = np.where(true_pos > 0, tp / true_pos, 0.0)
        denom = prec + rec
        f1 = np.where(denom > 0, 2 * prec * rec / denom, 0.0)
    return prec, rec, f1


def precision(y_true: np.ndarray, y_pred: np.ndarray, *,
              n_classes: int = 2, positive_class: int = 1,
              average: str = "binary") -> float:
    """Precision of ``positive_class`` (binary) or the macro average."""
    counts = confusion_counts(y_true, y_pred, n_classes)
    prec, _rec, _f1 = _per_class_prf(counts)
    if average == "binary":
        return float(prec[positive_class])
    if average == "macro":
        return float(prec.mean())
    raise ConfigurationError(f"average must be 'binary' or 'macro', got {average!r}")


def recall(y_true: np.ndarray, y_pred: np.ndarray, *,
           n_classes: int = 2, positive_class: int = 1,
           average: str = "binary") -> float:
    """Recall of ``positive_class`` (binary) or the macro average."""
    counts = confusion_counts(y_true, y_pred, n_classes)
    _prec, rec, _f1 = _per_class_prf(counts)
    if average == "binary":
        return float(rec[positive_class])
    if average == "macro":
        return float(rec.mean())
    raise ConfigurationError(f"average must be 'binary' or 'macro', got {average!r}")


def f1_score(y_true: np.ndarray, y_pred: np.ndarray, *,
             n_classes: int = 2, positive_class: int = 1,
             average: str = "binary") -> float:
    """Harmonic mean of precision and recall (binary or macro)."""
    counts = confusion_counts(y_true, y_pred, n_classes)
    _prec, _rec, f1 = _per_class_prf(counts)
    if average == "binary":
        return float(f1[positive_class])
    if average == "macro":
        return float(f1.mean())
    raise ConfigurationError(f"average must be 'binary' or 'macro', got {average!r}")


@dataclass(frozen=True)
class ClassificationReport:
    """The metric triple the paper reports, plus accuracy and coverage."""

    precision: float
    recall: float
    f1: float
    accuracy: float
    n_evaluated: int


def evaluate_labels(y_true: np.ndarray, y_pred: np.ndarray, *,
                    n_classes: int = 2) -> ClassificationReport:
    """Full report; binary tasks use class 1 as positive, else macro averages."""
    y_true, y_pred = _check_labels(y_true, y_pred)
    average = "binary" if n_classes == 2 else "macro"
    return ClassificationReport(
        precision=precision(y_true, y_pred, n_classes=n_classes, average=average),
        recall=recall(y_true, y_pred, n_classes=n_classes, average=average),
        f1=f1_score(y_true, y_pred, n_classes=n_classes, average=average),
        accuracy=accuracy(y_true, y_pred),
        n_evaluated=int(y_true.size),
    )
