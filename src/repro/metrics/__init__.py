"""Evaluation metrics: the paper's Precision / Recall / F1, plus accuracy."""

from repro.metrics.classification import (
    ClassificationReport,
    accuracy,
    confusion_counts,
    evaluate_labels,
    f1_score,
    precision,
    recall,
)

__all__ = [
    "ClassificationReport",
    "accuracy",
    "precision",
    "recall",
    "f1_score",
    "confusion_counts",
    "evaluate_labels",
]
