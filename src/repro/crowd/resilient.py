"""Resilient answer collection: retry, reassign, quarantine.

:class:`ResilientCollector` sits between a labelling framework and an
unreliable platform (usually an
:class:`~repro.crowd.faults.UnreliablePlatform`) and turns injected faults
into policy decisions instead of crashes:

``retry``
    Timeouts are transient; the same annotator is retried up to
    ``max_retries`` times with deterministic, seeded exponential backoff
    (simulated — the collector accumulates the wait it *would* have slept
    in ``stats.simulated_wait`` rather than stalling the experiment).
``reassign``
    Abandons, outages, and exhausted retries move the request to the
    next-best affordable annotator (highest estimated quality per unit
    cost) that has not answered the object, is not at capacity, and is not
    quarantined.
``quarantine``
    A per-annotator circuit breaker: once an annotator has made at least
    ``min_attempts`` attempts and their failure rate crosses
    ``failure_threshold``, they are quarantined for the rest of the run.
    The quarantine set is surfaced through :meth:`quarantined_annotators`
    so task-selection/assignment can mask those columns exactly like the
    paper masks already-answered pairs (see
    ``LabellingState.action_mask``); the collector additionally refuses to
    route new requests to quarantined annotators, which protects baselines
    that never consult the State.

With an inert fault model (rate 0) the collector delegates batch
collection straight to the platform, so enabling it costs nothing and
changes nothing — the tier-1 equivalence tests pin this.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.crowd.faults import PlatformWrapper, _warn_unless_wrapped
from repro.crowd.platform import AnswerRecord
from repro.exceptions import (
    AnnotatorUnavailableError,
    AnswerTimeoutError,
    CollectionFailedError,
    ConfigurationError,
    FaultError,
)
from repro.obs import get_registry
from repro.utils.rng import SeedLike, as_rng

logger = logging.getLogger("repro.crowd.resilient")


@dataclass(frozen=True)
class ResiliencePolicy:
    """Knobs of the retry/reassign/quarantine behaviour."""

    #: Extra attempts on the *same* annotator after a timeout.
    max_retries: int = 2
    #: First backoff wait (simulated seconds) and its growth per retry.
    backoff_base: float = 0.5
    backoff_factor: float = 2.0
    #: Uniform jitter fraction applied to each backoff wait.
    backoff_jitter: float = 0.1
    #: Quarantine once failures/attempts reaches this rate ...
    failure_threshold: float = 0.5
    #: ... and the annotator has been tried at least this many times.
    min_attempts: int = 4
    #: Master switch for the circuit breaker.
    quarantine_enabled: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base < 0 or self.backoff_factor < 1.0:
            raise ConfigurationError(
                "need backoff_base >= 0 and backoff_factor >= 1, got "
                f"({self.backoff_base}, {self.backoff_factor})"
            )
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ConfigurationError(
                f"backoff_jitter must be in [0, 1], got {self.backoff_jitter}"
            )
        if not 0.0 < self.failure_threshold <= 1.0:
            raise ConfigurationError(
                f"failure_threshold must be in (0, 1], got "
                f"{self.failure_threshold}"
            )
        if self.min_attempts < 1:
            raise ConfigurationError(
                f"min_attempts must be >= 1, got {self.min_attempts}"
            )


@dataclass
class CollectorStats:
    """Counters the collector accumulates over a run."""

    answers: int = 0
    retries: int = 0
    reassignments: int = 0
    gave_up: int = 0
    simulated_wait: float = 0.0
    faults: dict = field(default_factory=dict)
    #: ``(annotator_id, failure_rate, attempts)`` per quarantine decision.
    quarantine_events: list = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "answers": self.answers,
            "retries": self.retries,
            "reassignments": self.reassignments,
            "gave_up": self.gave_up,
            "simulated_wait": self.simulated_wait,
            "faults": dict(self.faults),
            "quarantine_events": [list(e) for e in self.quarantine_events],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CollectorStats":
        return cls(
            answers=int(payload["answers"]),
            retries=int(payload["retries"]),
            reassignments=int(payload["reassignments"]),
            gave_up=int(payload["gave_up"]),
            simulated_wait=float(payload["simulated_wait"]),
            faults={str(k): int(v) for k, v in payload["faults"].items()},
            quarantine_events=[
                (int(a), float(r), int(n))
                for a, r, n in payload["quarantine_events"]
            ],
        )


class ResilientCollector(PlatformWrapper):
    """Fault-tolerant ``ask``/``ask_batch`` over any platform.

    Exposes the full platform interface, so frameworks run on a collector
    unchanged.  Faults never escape ``ask_batch``; ``ask`` raises
    :class:`CollectionFailedError` only when no affordable, unquarantined
    annotator can take the request at all.
    """

    def __init__(self, platform, *,
                 policy: Optional[ResiliencePolicy] = None,
                 rng: SeedLike = 0) -> None:
        _warn_unless_wrapped("ResilientCollector", "resilient=")
        super().__init__(platform)
        self.policy = policy or ResiliencePolicy()
        self._rng = as_rng(rng)
        n = len(platform.pool)
        self._attempts = [0] * n
        self._failures = [0] * n
        self._quarantined: set[int] = set()
        self.stats = CollectorStats()

    # ------------------------------------------------------------------
    # The quarantine surface frameworks mask on
    # ------------------------------------------------------------------
    def quarantined_annotators(self) -> frozenset:
        """Annotators the circuit breaker has removed from rotation."""
        return frozenset(self._quarantined)

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def ask(self, object_id: int, annotator_id: int) -> AnswerRecord:
        """Collect one answer, surviving faults via retry/reassignment.

        Raises :class:`CollectionFailedError` when every candidate
        annotator failed or none remains affordable and available.
        """
        record = self._collect(object_id, annotator_id)
        if record is None:
            self.stats.gave_up += 1
            raise CollectionFailedError(
                f"could not collect an answer for object {object_id}: all "
                f"candidate annotators failed or are unavailable",
                object_id=object_id, annotator_id=annotator_id,
            )
        return record

    def ask_batch(
        self, assignments: Iterable[tuple[int, Sequence[int]]]
    ) -> list[AnswerRecord]:
        """Batch collection that never lets a fault escape.

        Mirrors :meth:`CrowdPlatform.ask_batch` semantics (skip answered /
        at-capacity pairs, stop only when even the cheapest annotator is
        unaffordable); requests that cannot be served after retries and
        reassignment are dropped and counted in ``stats.gave_up``.
        """
        fault_model = getattr(self.inner, "fault_model", None)
        if ((fault_model is None or fault_model.inert)
                and not self._quarantined):
            records = self.inner.ask_batch(assignments)
            self.stats.answers += len(records)
            return records
        collected: list[AnswerRecord] = []
        inner = self.inner
        for object_id, annotator_ids in assignments:
            for annotator_id in annotator_ids:
                if inner.history.has_answered(object_id, annotator_id):
                    continue
                if inner.at_capacity(annotator_id):
                    continue
                if not inner.budget.can_afford(inner.pool[annotator_id].cost):
                    if not inner.budget.can_afford(inner.cheapest_cost()):
                        return collected
                    continue
                record = self._collect(object_id, annotator_id)
                if record is None:
                    self.stats.gave_up += 1
                    continue
                collected.append(record)
        return collected

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _collect(self, object_id: int,
                 annotator_id: int) -> Optional[AnswerRecord]:
        """Try ``annotator_id`` (with retries), then reassign down the pool."""
        tried: set[int] = set()
        candidate: Optional[int] = annotator_id
        if annotator_id in self._quarantined:
            tried.add(annotator_id)
            candidate = self._reassign(object_id, tried)
            if candidate is not None:
                self.stats.reassignments += 1
                get_registry().inc("collect.reassignments")
        while candidate is not None:
            record = self._attempt_with_retries(object_id, candidate)
            if record is not None:
                return record
            tried.add(candidate)
            candidate = self._reassign(object_id, tried)
            if candidate is not None:
                self.stats.reassignments += 1
                get_registry().inc("collect.reassignments")
        return None

    def _attempt_with_retries(self, object_id: int,
                              annotator_id: int) -> Optional[AnswerRecord]:
        cost = self.inner.pool[annotator_id].cost
        for attempt in range(self.policy.max_retries + 1):
            if not self.inner.budget.can_afford(cost):
                return None
            try:
                record = self.inner.ask(object_id, annotator_id)
            except AnswerTimeoutError:
                self._record_failure(annotator_id, "timeout")
                if (attempt < self.policy.max_retries
                        and annotator_id not in self._quarantined):
                    self.stats.retries += 1
                    get_registry().inc("collect.retries")
                    self._backoff(attempt)
                    continue
                return None
            except AnnotatorUnavailableError:
                # Abandoned or offline: retrying the same annotator is
                # pointless (outages persist for several requests).
                self._record_failure(annotator_id, "unavailable")
                return None
            except FaultError:
                self._record_failure(annotator_id, "other")
                return None
            self._record_success(annotator_id)
            self.stats.answers += 1
            return record
        return None

    def _reassign(self, object_id: int, tried: set) -> Optional[int]:
        """Next-best affordable annotator for ``object_id``, or ``None``.

        Candidates are ranked by estimated quality per unit cost — the
        same value ordering the cold-start heuristics use — so
        reassignment degrades quality as slowly as the budget allows.
        """
        inner = self.inner
        value = inner.pool.estimated_qualities() / inner.pool.costs
        for j in np.argsort(-value, kind="stable"):
            j = int(j)
            if (j in tried or j in self._quarantined
                    or inner.history.has_answered(object_id, j)
                    or inner.at_capacity(j)
                    or not inner.budget.can_afford(inner.pool[j].cost)):
                continue
            return j
        return None

    def _backoff(self, attempt: int) -> None:
        """Accumulate the deterministic (seeded) exponential backoff wait."""
        wait = self.policy.backoff_base * self.policy.backoff_factor ** attempt
        if self.policy.backoff_jitter > 0.0:
            wait *= 1.0 + self.policy.backoff_jitter * (
                2.0 * self._rng.random() - 1.0
            )
        self.stats.simulated_wait += wait
        get_registry().inc("collect.backoff_wait_s", wait)

    def _record_success(self, annotator_id: int) -> None:
        self._attempts[annotator_id] += 1

    def _record_failure(self, annotator_id: int, kind: str) -> None:
        self._attempts[annotator_id] += 1
        self._failures[annotator_id] += 1
        self.stats.faults[kind] = self.stats.faults.get(kind, 0) + 1
        get_registry().inc(f"collect.faults.{kind}")
        if not self.policy.quarantine_enabled:
            return
        if annotator_id in self._quarantined:
            return
        attempts = self._attempts[annotator_id]
        if attempts < self.policy.min_attempts:
            return
        rate = self._failures[annotator_id] / attempts
        if rate >= self.policy.failure_threshold:
            self._quarantined.add(annotator_id)
            self.stats.quarantine_events.append((annotator_id, rate, attempts))
            get_registry().inc("collect.breaker_trips")
            logger.warning(
                "quarantined annotator %d: failure rate %.2f over %d "
                "attempts (threshold %.2f)",
                annotator_id, rate, attempts, self.policy.failure_threshold,
            )

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Mutable collector state (breaker counters, RNG, stats)."""
        return {
            "attempts": list(self._attempts),
            "failures": list(self._failures),
            "quarantined": sorted(self._quarantined),
            "rng": self._rng.bit_generator.state,
            "stats": self.stats.as_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""
        try:
            self._attempts = [int(v) for v in state["attempts"]]
            self._failures = [int(v) for v in state["failures"]]
            self._quarantined = {int(v) for v in state["quarantined"]}
            self._rng.bit_generator.state = state["rng"]
            self.stats = CollectorStats.from_dict(state["stats"])
        except (KeyError, TypeError) as exc:
            raise ConfigurationError(
                f"malformed collector state: {exc}"
            ) from exc
