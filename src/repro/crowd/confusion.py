"""Confusion-matrix model of annotator expertise (paper Section II-A).

``pi[c, l]`` is the probability that an annotator answers class ``l`` for an
object whose true class is ``c``.  The paper summarises a matrix into a
scalar quality ``tr(Pi) / |C|`` (trace over class count), used in the State's
quality column; :meth:`ConfusionMatrix.quality` implements that.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_probability_matrix


class ConfusionMatrix:
    """A row-stochastic ``|C| x |C|`` annotator expertise matrix."""

    def __init__(self, matrix: np.ndarray) -> None:
        self.matrix = check_probability_matrix(matrix, "confusion matrix")

    @property
    def n_classes(self) -> int:
        return self.matrix.shape[0]

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def uniform(cls, n_classes: int) -> "ConfusionMatrix":
        """A maximally uninformative annotator (all answers equally likely)."""
        if n_classes < 2:
            raise ConfigurationError(f"n_classes must be >= 2, got {n_classes}")
        return cls(np.full((n_classes, n_classes), 1.0 / n_classes))

    @classmethod
    def from_accuracy(cls, n_classes: int, accuracy: float) -> "ConfusionMatrix":
        """Symmetric matrix: ``accuracy`` on the diagonal, rest uniform.

        This is the one-parameter "homogeneous" annotator used throughout
        the crowdsourcing literature and by our dataset generators.
        """
        if n_classes < 2:
            raise ConfigurationError(f"n_classes must be >= 2, got {n_classes}")
        if not 0.0 <= accuracy <= 1.0:
            raise ConfigurationError(f"accuracy must be in [0, 1], got {accuracy}")
        off = (1.0 - accuracy) / (n_classes - 1)
        matrix = np.full((n_classes, n_classes), off)
        np.fill_diagonal(matrix, accuracy)
        return cls(matrix)

    @classmethod
    def random(cls, n_classes: int, *, diagonal_low: float, diagonal_high: float,
               rng: SeedLike = None) -> "ConfusionMatrix":
        """Random annotator with per-class diagonal in the given range.

        Off-diagonal mass is split with a random Dirichlet draw so annotators
        have class-dependent biases (the paper explicitly makes no assumption
        about the worker quality distribution; this gives heterogeneity).
        """
        rng = as_rng(rng)
        if not 0.0 <= diagonal_low <= diagonal_high <= 1.0:
            raise ConfigurationError(
                f"need 0 <= diagonal_low <= diagonal_high <= 1, got "
                f"({diagonal_low}, {diagonal_high})"
            )
        matrix = np.zeros((n_classes, n_classes))
        for c in range(n_classes):
            diag = rng.uniform(diagonal_low, diagonal_high)
            matrix[c, c] = diag
            if n_classes > 1:
                off = rng.dirichlet(np.ones(n_classes - 1)) * (1.0 - diag)
                matrix[c, np.arange(n_classes) != c] = off
        return cls(matrix)

    # ------------------------------------------------------------------
    # Behaviour
    # ------------------------------------------------------------------
    def sample_answer(self, true_class: int, rng: SeedLike = None) -> int:
        """Draw a noisy answer for an object of class ``true_class``."""
        if not 0 <= true_class < self.n_classes:
            raise ConfigurationError(
                f"true_class must be in [0, {self.n_classes}), got {true_class}"
            )
        rng = as_rng(rng)
        return int(rng.choice(self.n_classes, p=self.matrix[true_class]))

    def quality(self) -> float:
        """The paper's scalar quality: ``tr(Pi) / |C|``."""
        return float(np.trace(self.matrix) / self.n_classes)

    def likelihood(self, true_class: int, answer: int) -> float:
        """``p(answer | true_class)`` under this matrix."""
        return float(self.matrix[true_class, answer])

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    @classmethod
    def estimate_from_counts(cls, counts: np.ndarray,
                             smoothing: float = 1.0) -> "ConfusionMatrix":
        """Estimate a matrix from a ``(true, answered)`` count table.

        Laplace ``smoothing`` keeps rows valid when an annotator has never
        seen a class, matching the paper's soft-count update (Section V-A2)
        in the hard-count limit.
        """
        counts = np.asarray(counts, dtype=float)
        if counts.ndim != 2 or counts.shape[0] != counts.shape[1]:
            raise ConfigurationError(
                f"counts must be square, got shape {counts.shape}"
            )
        if smoothing < 0:
            raise ConfigurationError(f"smoothing must be >= 0, got {smoothing}")
        smoothed = counts + smoothing
        return cls(smoothed / smoothed.sum(axis=1, keepdims=True))

    def with_quality_floor(self, floor: float) -> "ConfusionMatrix":
        """Return a copy whose diagonal entries are at least ``floor``.

        Implements the paper's expert-quality bounding (Section V-A2): any
        class whose diagonal dips below the floor is reset to ``floor`` with
        the remaining mass spread uniformly off-diagonal, so EM cannot
        demote an expert.
        """
        if not 0.0 < floor < 1.0:
            raise ConfigurationError(f"floor must be in (0, 1), got {floor}")
        matrix = self.matrix.copy()
        k = self.n_classes
        for c in range(k):
            if matrix[c, c] < floor:
                matrix[c] = (1.0 - floor) / (k - 1)
                matrix[c, c] = floor
        return ConfusionMatrix(matrix)

    def __repr__(self) -> str:
        return f"ConfusionMatrix(quality={self.quality():.3f}, |C|={self.n_classes})"
