"""The labelling-history matrix — the first block of the RL State.

Section III-B models labelling history as a ``|O| x |W|`` matrix whose entry
``S[i, j]`` is ``-1`` when annotator ``j`` has not labelled object ``i`` and
the answered class index otherwise.  This module stores that matrix plus the
book-keeping the rest of the system needs: per-object answer sets, per-pair
masks, and confusion-count accumulation against inferred truths.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.exceptions import ConfigurationError

UNANSWERED = -1


class LabellingHistory:
    """Dense ``|O| x |W|`` answer matrix with answer-set accessors."""

    def __init__(self, n_objects: int, n_annotators: int, n_classes: int) -> None:
        if n_objects <= 0 or n_annotators <= 0:
            raise ConfigurationError(
                f"need positive sizes, got objects={n_objects}, "
                f"annotators={n_annotators}"
            )
        if n_classes < 2:
            raise ConfigurationError(f"n_classes must be >= 2, got {n_classes}")
        self.n_objects = n_objects
        self.n_annotators = n_annotators
        self.n_classes = n_classes
        self.matrix = np.full((n_objects, n_annotators), UNANSWERED, dtype=int)
        self._listeners: list[Callable[[int, int], None]] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def add_listener(self, listener: Callable[[int, int], None]) -> None:
        """Subscribe to answers: ``listener(object_id, annotator_id)`` fires
        after every successful :meth:`record` (including checkpoint
        replays).  Feature caches use this to invalidate only touched
        rows/columns."""
        self._listeners.append(listener)

    def record(self, object_id: int, annotator_id: int, answer: int) -> None:
        """Record one answer; re-asking the same pair is rejected."""
        self._check_ids(object_id, annotator_id)
        if not 0 <= answer < self.n_classes:
            raise ConfigurationError(
                f"answer must be in [0, {self.n_classes}), got {answer}"
            )
        if self.matrix[object_id, annotator_id] != UNANSWERED:
            raise ConfigurationError(
                f"annotator {annotator_id} already answered object {object_id}"
            )
        self.matrix[object_id, annotator_id] = answer
        for listener in self._listeners:
            listener(object_id, annotator_id)

    def amend(self, object_id: int, annotator_id: int, answer: int) -> None:
        """Overwrite an *existing* answer in place (e.g. transit corruption).

        Unlike :meth:`record` this requires the pair to have answered
        already; listeners fire so feature caches see the changed value.
        """
        self._check_ids(object_id, annotator_id)
        if not 0 <= answer < self.n_classes:
            raise ConfigurationError(
                f"answer must be in [0, {self.n_classes}), got {answer}"
            )
        if self.matrix[object_id, annotator_id] == UNANSWERED:
            raise ConfigurationError(
                f"annotator {annotator_id} has not answered object "
                f"{object_id}; nothing to amend"
            )
        self.matrix[object_id, annotator_id] = answer
        for listener in self._listeners:
            listener(object_id, annotator_id)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def has_answered(self, object_id: int, annotator_id: int) -> bool:
        """Whether ``annotator_id`` has already answered ``object_id``."""
        self._check_ids(object_id, annotator_id)
        return self.matrix[object_id, annotator_id] != UNANSWERED

    def answers_for(self, object_id: int) -> dict[int, int]:
        """Answer set of one object: ``{annotator_id: class}`` (paper's y_i)."""
        self._check_ids(object_id, 0)
        row = self.matrix[object_id]
        answered = np.nonzero(row != UNANSWERED)[0]
        return {int(j): int(row[j]) for j in answered}

    def answer_counts(self, object_id: int) -> np.ndarray:
        """Votes per class for one object (for majority voting / features)."""
        counts = np.zeros(self.n_classes)
        for answer in self.answers_for(object_id).values():
            counts[answer] += 1
        return counts

    def n_answers(self, object_id: int) -> int:
        """How many annotators have answered ``object_id``."""
        self._check_ids(object_id, 0)
        return int((self.matrix[object_id] != UNANSWERED).sum())

    def answered_objects(self) -> np.ndarray:
        """Indices of objects with at least one human answer."""
        return np.nonzero((self.matrix != UNANSWERED).any(axis=1))[0]

    def annotator_load(self, annotator_id: int) -> int:
        """Number of answers annotator ``annotator_id`` has given."""
        self._check_ids(0, annotator_id)
        return int((self.matrix[:, annotator_id] != UNANSWERED).sum())

    def confusion_counts(self, annotator_id: int,
                         truths: dict[int, int]) -> np.ndarray:
        """Hard ``(true, answered)`` counts for an annotator vs inferred truths.

        Objects whose truth is not yet inferred are skipped.
        """
        self._check_ids(0, annotator_id)
        counts = np.zeros((self.n_classes, self.n_classes))
        col = self.matrix[:, annotator_id]
        for object_id, truth in truths.items():
            answer = col[object_id]
            if answer != UNANSWERED:
                counts[truth, answer] += 1
        return counts

    def copy(self) -> "LabellingHistory":
        """Deep copy (used to snapshot state between RL iterations).

        Listeners are deliberately *not* copied: a clone belongs to a new
        state whose caches subscribe themselves.
        """
        clone = LabellingHistory(self.n_objects, self.n_annotators, self.n_classes)
        clone.matrix = self.matrix.copy()
        return clone

    # ------------------------------------------------------------------
    # Internal
    # ------------------------------------------------------------------
    def _check_ids(self, object_id: int, annotator_id: int) -> None:
        if not 0 <= object_id < self.n_objects:
            raise ConfigurationError(
                f"object_id must be in [0, {self.n_objects}), got {object_id}"
            )
        if not 0 <= annotator_id < self.n_annotators:
            raise ConfigurationError(
                f"annotator_id must be in [0, {self.n_annotators}), got {annotator_id}"
            )
