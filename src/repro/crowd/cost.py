"""Monetary cost model and budget enforcement.

The problem definition (Section II-A) fixes a budget ``B``; every answer an
annotator provides consumes that annotator's cost.  :class:`BudgetManager`
is the single authority over spending — frameworks must ``charge`` through
it, so no baseline can accidentally overspend and comparisons stay fair.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crowd.annotator import Annotator
from repro.exceptions import BudgetExhaustedError, ConfigurationError


@dataclass(frozen=True)
class CostModel:
    """Default per-kind costs (paper Section VI-B1: worker 1, expert 10)."""

    worker_cost: float = 1.0
    expert_cost: float = 10.0

    def __post_init__(self) -> None:
        if self.worker_cost <= 0 or self.expert_cost <= 0:
            raise ConfigurationError(
                f"costs must be > 0, got worker={self.worker_cost}, "
                f"expert={self.expert_cost}"
            )

    def cost_of(self, annotator: Annotator) -> float:
        return self.expert_cost if annotator.is_expert else self.worker_cost


@dataclass
class BudgetManager:
    """Tracks remaining budget and the spend ledger."""

    total: float
    spent: float = 0.0
    _ledger: list[tuple[int, int, float]] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.total <= 0:
            raise ConfigurationError(f"budget must be > 0, got {self.total}")
        if self.spent < 0:
            raise ConfigurationError(f"spent must be >= 0, got {self.spent}")

    @property
    def remaining(self) -> float:
        return self.total - self.spent

    @property
    def exhausted(self) -> bool:
        return self.remaining <= 0

    def can_afford(self, amount: float) -> bool:
        return amount <= self.remaining + 1e-9

    def charge(self, amount: float, *, object_id: int = -1,
               annotator_id: int = -1) -> None:
        """Spend ``amount``; raises :class:`BudgetExhaustedError` if unaffordable."""
        if amount < 0:
            raise ConfigurationError(f"cannot charge a negative amount: {amount}")
        if not self.can_afford(amount):
            raise BudgetExhaustedError(
                f"cannot charge {amount}: only {self.remaining:.2f} of "
                f"{self.total:.2f} remaining"
            )
        self.spent += amount
        self._ledger.append((object_id, annotator_id, amount))

    def iteration_cost(self, since: int) -> float:
        """Total spend recorded after ledger position ``since``."""
        return sum(amount for _o, _a, amount in self._ledger[since:])

    def ledger_entries(self, since: int = 0) -> list[tuple[int, int, float]]:
        """Ledger rows ``(object_id, annotator_id, amount)`` from ``since``.

        Checkpointing journals these so a resumed run can replay the exact
        spend sequence, including partial charges for faulted work that
        never produced an answer record.
        """
        return list(self._ledger[since:])

    @property
    def ledger_length(self) -> int:
        return len(self._ledger)

    @property
    def spend_fraction(self) -> float:
        return self.spent / self.total
