"""Heterogeneous annotator pools and learning-side quality estimates.

The pool holds the simulated annotators (latent matrices) plus the
*estimated* confusion matrices Pi-hat that labelling frameworks are allowed
to see.  Estimates start uninformative and are refreshed from inferred
truths at the end of each labelling iteration, as the paper's State does.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.crowd.annotator import Annotator, AnnotatorKind
from repro.crowd.confusion import ConfusionMatrix
from repro.crowd.cost import CostModel
from repro.crowd.history import LabellingHistory
from repro.exceptions import ConfigurationError
from repro.utils.rng import SeedLike, as_rng, spawn_rngs


class AnnotatorPool:
    """An ordered collection of annotators with estimated qualities."""

    def __init__(self, annotators: Sequence[Annotator], n_classes: int) -> None:
        if not annotators:
            raise ConfigurationError("pool needs at least one annotator")
        ids = [a.annotator_id for a in annotators]
        if ids != list(range(len(annotators))):
            raise ConfigurationError(
                f"annotator ids must be 0..{len(annotators) - 1} in order, got {ids}"
            )
        for a in annotators:
            if a.confusion.n_classes != n_classes:
                raise ConfigurationError(
                    f"annotator {a.annotator_id} has {a.confusion.n_classes} "
                    f"classes, pool expects {n_classes}"
                )
        self.annotators = list(annotators)
        self.n_classes = n_classes
        # Learning-side estimates: start uninformative except for a mild
        # optimistic prior (frameworks know experts are hired as experts).
        self.estimates: list[ConfusionMatrix] = [
            ConfusionMatrix.from_accuracy(n_classes, 0.9 if a.is_expert else 0.6)
            for a in annotators
        ]
        #: Monotone counter bumped on every estimate mutation; feature
        #: caches compare it to decide whether quality columns are stale.
        self.estimates_version = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        n_classes: int,
        n_workers: int,
        n_experts: int,
        *,
        cost_model: Optional[CostModel] = None,
        worker_accuracy: tuple[float, float] = (0.55, 0.80),
        expert_accuracy: tuple[float, float] = (0.92, 0.995),
        rng: SeedLike = None,
    ) -> "AnnotatorPool":
        """Build a heterogeneous pool of workers then experts.

        Accuracy ranges default to plausible crowdsourcing values: noisy
        workers and near-perfect experts, matching the worked example in
        Tables II, IV and V of the paper (worker quality ~0.6-0.65, expert
        quality 0.985-1.0).
        """
        if n_workers < 0 or n_experts < 0 or n_workers + n_experts == 0:
            raise ConfigurationError(
                f"need a non-empty pool, got workers={n_workers}, experts={n_experts}"
            )
        cost_model = cost_model or CostModel()
        rng = as_rng(rng)
        streams = spawn_rngs(rng, n_workers + n_experts)
        annotators: list[Annotator] = []
        for i in range(n_workers + n_experts):
            is_expert = i >= n_workers
            low, high = expert_accuracy if is_expert else worker_accuracy
            confusion = ConfusionMatrix.random(
                n_classes, diagonal_low=low, diagonal_high=high, rng=streams[i]
            )
            annotators.append(
                Annotator(
                    annotator_id=i,
                    kind=AnnotatorKind.EXPERT if is_expert else AnnotatorKind.WORKER,
                    confusion=confusion,
                    cost=cost_model.expert_cost if is_expert else cost_model.worker_cost,
                    _rng=streams[i],
                )
            )
        return cls(annotators, n_classes)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.annotators)

    def __getitem__(self, annotator_id: int) -> Annotator:
        return self.annotators[annotator_id]

    def __iter__(self):
        return iter(self.annotators)

    @property
    def costs(self) -> np.ndarray:
        return np.array([a.cost for a in self.annotators])

    @property
    def expert_mask(self) -> np.ndarray:
        return np.array([a.is_expert for a in self.annotators])

    def estimated_qualities(self) -> np.ndarray:
        """Vector of scalar quality estimates ``tr(Pi-hat)/|C|`` (State column)."""
        return np.array([est.quality() for est in self.estimates])

    def true_qualities(self) -> np.ndarray:
        """Latent qualities, for evaluation/reporting only."""
        return np.array([a.true_quality for a in self.annotators])

    # ------------------------------------------------------------------
    # Estimate updates
    # ------------------------------------------------------------------
    def update_estimates(self, history: LabellingHistory,
                         truths: dict[int, int], *, smoothing: float = 1.0) -> None:
        """Refresh Pi-hat for every annotator from inferred truths."""
        for annotator in self.annotators:
            counts = history.confusion_counts(annotator.annotator_id, truths)
            if counts.sum() > 0:
                self.estimates[annotator.annotator_id] = (
                    ConfusionMatrix.estimate_from_counts(counts, smoothing)
                )
        self.estimates_version += 1

    def set_estimate(self, annotator_id: int, estimate: ConfusionMatrix) -> None:
        """Override one annotator's estimated confusion matrix."""
        if estimate.n_classes != self.n_classes:
            raise ConfigurationError(
                f"estimate has {estimate.n_classes} classes, pool expects "
                f"{self.n_classes}"
            )
        self.estimates[annotator_id] = estimate
        self.estimates_version += 1
