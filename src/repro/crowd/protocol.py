"""The ``Platform`` protocol: the answer-collection surface frameworks see.

Every layer of a platform stack — the base :class:`CrowdPlatform`, the
fault-injecting :class:`UnreliablePlatform`, the retrying
:class:`ResilientCollector`, the journalling ``CheckpointRecorder`` and the
serving-layer ``AsyncPlatform`` — exposes the same interface, historically
by convention (``PlatformWrapper.__getattr__`` delegation).  This module
makes the convention explicit: :class:`Platform` is a
:func:`typing.runtime_checkable` :class:`typing.Protocol` naming exactly
the surface a :class:`~repro.core.framework.LabellingFramework` may touch —
answer collection (``ask``/``ask_batch``), the affordability surface
(``at_capacity``/``cheapest_cost``), the shared books (``pool``,
``budget``, ``history``) and evaluation-only ground truth.

Wrapper chains are type-checked against it at composition time:
:func:`repro.crowd.wrap` refuses to wrap an object that does not satisfy
the protocol, so a mis-assembled stack fails loudly at construction
instead of deep inside an episode.  The protocol is exported lazily from
the top-level package (``repro.Platform``), like ``repro.StateFeaturizer``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Protocol, Sequence, runtime_checkable

import numpy as np

if TYPE_CHECKING:  # imported for annotations only; avoids import cycles
    from repro.crowd.cost import BudgetManager
    from repro.crowd.history import LabellingHistory
    from repro.crowd.platform import AnswerRecord
    from repro.crowd.pool import AnnotatorPool


@runtime_checkable
class Platform(Protocol):
    """Structural interface of every answer-collection layer.

    Declared (and tested) by :class:`~repro.crowd.platform.CrowdPlatform`,
    :class:`~repro.crowd.faults.PlatformWrapper` subclasses —
    :class:`~repro.crowd.faults.UnreliablePlatform`,
    :class:`~repro.crowd.resilient.ResilientCollector`,
    :class:`~repro.harness.checkpoint.CheckpointRecorder`,
    :class:`~repro.serve.platform.AsyncPlatform` — and satisfied
    structurally by any future layer that delegates the rest through
    :class:`~repro.crowd.faults.PlatformWrapper`.

    ``isinstance(obj, Platform)`` checks member presence (including the
    ``pool``/``budget``/``history`` attributes, which wrappers surface via
    delegation); it cannot check signatures — the conformance tests in
    ``tests/test_crowd_protocol.py`` pin those.
    """

    #: The shared annotator pool (costs, estimated qualities, capacity).
    pool: "AnnotatorPool"
    #: The budget the run charges every answer to.
    budget: "BudgetManager"
    #: The ``|O| x |W|`` answer matrix recorded so far.
    history: "LabellingHistory"

    def ask(self, object_id: int, annotator_id: int) -> "AnswerRecord":
        """Collect one answer for ``(object_id, annotator_id)``."""
        ...

    def ask_batch(
        self, assignments: Iterable[tuple]
    ) -> "Sequence[AnswerRecord]":
        """Collect answers for ``(object, [annotators])`` assignments."""
        ...

    def at_capacity(self, annotator_id: int) -> bool:
        """Whether the annotator has exhausted its answer capacity."""
        ...

    def cheapest_cost(self) -> float:
        """Cost of the cheapest annotator (the affordability threshold)."""
        ...

    def evaluation_labels(self) -> np.ndarray:
        """Ground truth — for metric computation only, never for learning."""
        ...


def check_platform(obj: object, *, context: str = "platform") -> None:
    """Raise ``ConfigurationError`` unless ``obj`` satisfies :class:`Platform`.

    Used by :func:`repro.crowd.wrap` and the serving layer to fail fast on
    mis-assembled wrapper chains; ``context`` names the argument being
    checked in the error message.
    """
    from repro.exceptions import ConfigurationError

    if not isinstance(obj, Platform):
        missing = sorted(
            name for name in (
                "ask", "ask_batch", "at_capacity", "cheapest_cost",
                "evaluation_labels", "pool", "budget", "history",
            )
            if not hasattr(obj, name)
        )
        raise ConfigurationError(
            f"{context} {type(obj).__name__!r} does not satisfy the "
            f"repro.crowd.Platform protocol (missing: {', '.join(missing)})"
        )


__all__ = ["Platform", "check_platform"]
