"""Annotators: crowd workers and domain experts.

An :class:`Annotator` owns a *latent* confusion matrix used for answer
simulation (invisible to learning algorithms, per the paper: "we do not know
the true value of Pi in advance") plus a per-answer cost.  Learning-side
estimates of the matrix live in :class:`repro.crowd.pool.AnnotatorPool` and
the inference algorithms, never here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.crowd.confusion import ConfusionMatrix
from repro.exceptions import ConfigurationError
from repro.utils.rng import SeedLike, as_rng


class AnnotatorKind(enum.Enum):
    """The two annotator types of the paper's heterogeneous pool."""

    WORKER = "worker"
    EXPERT = "expert"


@dataclass
class Annotator:
    """One annotator with latent expertise and a fixed cost.

    Attributes
    ----------
    annotator_id:
        Index of this annotator in the pool (column in the State matrix).
    kind:
        Worker or expert; experts get quality bounding in joint inference.
    confusion:
        The latent ground-truth confusion matrix used only for simulation.
    cost:
        Monetary cost of one answer ("the cost of each annotator is stable
        over the labelling process", Section III-B).
    capacity:
        Optional cap on how many answers this annotator will give in one
        campaign (``None`` = unlimited, the paper's model).  Real platforms
        impose per-worker task limits; the platform enforces the cap and
        the State masks exhausted annotators.
    """

    annotator_id: int
    kind: AnnotatorKind
    confusion: ConfusionMatrix
    cost: float
    capacity: Optional[int] = None
    #: Answer-simulation stream.  Callers that own a root seed should pass
    #: a child stream (``spawn_rngs``) or use :meth:`seeded`; when omitted
    #: the stream is derived from ``annotator_id`` so that constructing the
    #: same annotator twice yields identical answer sequences.
    _rng: Optional[np.random.Generator] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self._rng is None:
            self._rng = as_rng(self.annotator_id)
        if self.cost <= 0:
            raise ConfigurationError(f"annotator cost must be > 0, got {self.cost}")
        if self.capacity is not None and self.capacity <= 0:
            raise ConfigurationError(
                f"annotator capacity must be > 0 or None, got {self.capacity}"
            )

    @property
    def is_expert(self) -> bool:
        return self.kind is AnnotatorKind.EXPERT

    @property
    def true_quality(self) -> float:
        """Latent scalar quality ``tr(Pi)/|C|`` — for simulation/reporting only."""
        return self.confusion.quality()

    def answer(self, true_class: int, rng: SeedLike = None,
               difficulty: float = 0.0) -> int:
        """Produce a (noisy) label for an object with class ``true_class``.

        ``difficulty`` in [0, 1] interpolates the annotator's confusion
        matrix toward uniform: at 0 the annotator performs at their normal
        expertise, at 1 the object is so hard that every answer is a coin
        flip — the paper's Section II example of an object "all the
        annotators cannot correctly label".
        """
        if not 0.0 <= difficulty <= 1.0:
            raise ConfigurationError(
                f"difficulty must be in [0, 1], got {difficulty}"
            )
        generator = as_rng(rng) if rng is not None else self._rng
        if difficulty == 0.0:
            return self.confusion.sample_answer(true_class, generator)
        n = self.confusion.n_classes
        effective = ConfusionMatrix(
            (1.0 - difficulty) * self.confusion.matrix
            + difficulty * np.full((n, n), 1.0 / n)
        )
        return effective.sample_answer(true_class, generator)

    def seeded(self, rng: SeedLike) -> "Annotator":
        """Return a copy bound to a specific RNG stream (for reproducibility)."""
        return Annotator(
            annotator_id=self.annotator_id,
            kind=self.kind,
            confusion=self.confusion,
            cost=self.cost,
            capacity=self.capacity,
            _rng=as_rng(rng),
        )
