"""The simulated crowdsourcing platform.

:class:`CrowdPlatform` is the sole gateway through which any labelling
framework obtains human answers.  It couples the three invariants every
experiment must respect: (1) answers are sampled from the annotators'
*latent* confusion matrices, (2) each answer is charged to the shared
:class:`~repro.crowd.cost.BudgetManager`, and (3) each answer is recorded in
the :class:`~repro.crowd.history.LabellingHistory`.  Ground truth lives here
and is never exposed to frameworks — only to the evaluation code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.crowd.cost import BudgetManager
from repro.crowd.history import LabellingHistory
from repro.crowd.pool import AnnotatorPool
from repro.exceptions import BudgetExhaustedError, ConfigurationError


@dataclass(frozen=True)
class AnswerRecord:
    """One collected answer, as appended to the platform's answer log."""

    object_id: int
    annotator_id: int
    answer: int
    cost: float


class CrowdPlatform:
    """Couples answer simulation, budget charging and history recording."""

    def __init__(
        self,
        true_labels: np.ndarray,
        pool: AnnotatorPool,
        budget: BudgetManager,
        *,
        history: Optional[LabellingHistory] = None,
        difficulty: Optional[np.ndarray] = None,
    ) -> None:
        truths = np.asarray(true_labels, dtype=int)
        if truths.ndim != 1 or truths.size == 0:
            raise ConfigurationError(
                f"true_labels must be a non-empty 1-D array, got shape {truths.shape}"
            )
        if truths.min() < 0 or truths.max() >= pool.n_classes:
            raise ConfigurationError(
                f"true labels must be in [0, {pool.n_classes})"
            )
        self._true_labels = truths
        if difficulty is not None:
            difficulty = np.asarray(difficulty, dtype=float)
            if difficulty.shape != truths.shape:
                raise ConfigurationError(
                    f"difficulty must have shape {truths.shape}, got "
                    f"{difficulty.shape}"
                )
            if difficulty.min() < 0 or difficulty.max() > 1:
                raise ConfigurationError("difficulty must lie in [0, 1]")
        #: Optional per-object difficulty damping annotator expertise.
        self._difficulty = difficulty
        self.pool = pool
        self.budget = budget
        self.history = history or LabellingHistory(
            truths.size, len(pool), pool.n_classes
        )
        self.answer_log: list[AnswerRecord] = []

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def n_objects(self) -> int:
        return self._true_labels.size

    @property
    def n_classes(self) -> int:
        return self.pool.n_classes

    # ------------------------------------------------------------------
    # Answer collection
    # ------------------------------------------------------------------
    def ask(self, object_id: int, annotator_id: int) -> AnswerRecord:
        """Collect one answer, charging the budget.

        Raises :class:`BudgetExhaustedError` when the annotator's cost
        exceeds the remaining budget, and rejects duplicate (object,
        annotator) pairs — the paper masks those actions with ``Q = -inf``.
        """
        annotator = self.pool[annotator_id]
        if self.history.has_answered(object_id, annotator_id):
            raise ConfigurationError(
                f"duplicate request: annotator {annotator_id} already answered "
                f"object {object_id}"
            )
        if self.at_capacity(annotator_id):
            raise ConfigurationError(
                f"annotator {annotator_id} has reached its capacity of "
                f"{annotator.capacity} answers"
            )
        if not self.budget.can_afford(annotator.cost):
            raise BudgetExhaustedError(
                f"annotator {annotator_id} costs {annotator.cost}, remaining "
                f"budget {self.budget.remaining:.2f}"
            )
        difficulty = (
            float(self._difficulty[object_id])
            if self._difficulty is not None else 0.0
        )
        answer = annotator.answer(
            int(self._true_labels[object_id]), difficulty=difficulty
        )
        self.budget.charge(annotator.cost, object_id=object_id,
                           annotator_id=annotator_id)
        self.history.record(object_id, annotator_id, answer)
        record = AnswerRecord(object_id, annotator_id, answer, annotator.cost)
        self.answer_log.append(record)
        return record

    def ask_batch(
        self, assignments: Iterable[tuple[int, Sequence[int]]]
    ) -> list[AnswerRecord]:
        """Collect answers for ``(object, [annotators])`` assignments.

        Stops cleanly (returning what was collected) once the budget cannot
        afford the next answer, so frameworks can drain the budget exactly.
        Duplicate pairs are skipped rather than raising, because batch
        assignments may legitimately overlap earlier iterations.
        """
        collected: list[AnswerRecord] = []
        for object_id, annotator_ids in assignments:
            for annotator_id in annotator_ids:
                if self.history.has_answered(object_id, annotator_id):
                    continue
                if self.at_capacity(annotator_id):
                    continue
                if not self.budget.can_afford(self.pool[annotator_id].cost):
                    # This annotator is out of reach, but a cheaper one later
                    # in the batch may not be; only stop once even the
                    # cheapest annotator is unaffordable, so the budget
                    # drains exactly as promised.
                    if not self.budget.can_afford(self.cheapest_cost()):
                        return collected
                    continue
                collected.append(self.ask(object_id, annotator_id))
        return collected

    def at_capacity(self, annotator_id: int) -> bool:
        """Whether the annotator has exhausted its answer capacity."""
        capacity = self.pool[annotator_id].capacity
        if capacity is None:
            return False
        return self.history.annotator_load(annotator_id) >= capacity

    def cheapest_cost(self) -> float:
        """Cost of the cheapest annotator (the affordability threshold)."""
        return float(self.pool.costs.min())

    # ------------------------------------------------------------------
    # Evaluation-only access
    # ------------------------------------------------------------------
    def evaluation_labels(self) -> np.ndarray:
        """Ground truth — for metric computation only, never for learning."""
        return self._true_labels.copy()
