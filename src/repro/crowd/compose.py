"""Wrapper-chain composition: one blessed way to assemble a platform stack.

Before this module, three call sites (the harness runner, the fault
benchmark, and the CLI) each hand-assembled
``ResilientCollector(UnreliablePlatform(platform, model), ...)`` with
their own seed conventions.  :func:`wrap` is now the single composition
point: it validates every layer against the
:class:`~repro.crowd.protocol.Platform` protocol, applies the canonical
ordering (faults innermost, resilience outermost), and owns the seed
defaults.

Direct construction of :class:`~repro.crowd.faults.UnreliablePlatform`
and :class:`~repro.crowd.resilient.ResilientCollector` outside
:func:`wrap` is deprecated for one release (``DeprecationWarning``,
mirroring the ExperimentSpec kwargs migration of PR 3 -> PR 8); the
constructors consult :data:`_IN_WRAP` to tell sanctioned composition from
ad-hoc assembly.
"""

from __future__ import annotations

import contextvars
from typing import Optional, Union

from repro.crowd.faults import FaultModel, UnreliablePlatform
from repro.crowd.protocol import Platform, check_platform
from repro.crowd.resilient import ResiliencePolicy, ResilientCollector
from repro.exceptions import ConfigurationError
from repro.utils.rng import SeedLike

#: True while :func:`wrap` is constructing layers, so the deprecated
#: constructors know the call is sanctioned and skip their warning.
# repro: process-local — context-local re-entrancy flag consulted only on
# the constructing thread; never shared across processes.
_IN_WRAP: contextvars.ContextVar = contextvars.ContextVar(
    "repro-crowd-in-wrap", default=False
)

FaultsLike = Union[None, float, FaultModel]
ResilientLike = Union[None, bool, ResiliencePolicy]


def constructed_via_wrap() -> bool:
    """Whether the current constructor call was issued by :func:`wrap`."""
    return bool(_IN_WRAP.get())


def wrap(
    platform: Platform,
    *,
    faults: FaultsLike = None,
    resilient: ResilientLike = None,
    fault_seed: SeedLike = 0,
    resilience_seed: SeedLike = 0,
    policy: Optional[ResiliencePolicy] = None,
) -> Platform:
    """Compose the canonical platform wrapper chain.

    Parameters
    ----------
    platform:
        Any object satisfying the :class:`~repro.crowd.protocol.Platform`
        protocol — typically a bare
        :class:`~repro.crowd.platform.CrowdPlatform`.
    faults:
        ``None`` for a reliable platform, a float total fault rate
        (split per :meth:`FaultModel.from_rate`), or a pre-built
        :class:`FaultModel`.
    resilient:
        ``None`` adds a :class:`ResilientCollector` exactly when faults
        are injected; ``True``/``False`` force it on/off; a
        :class:`ResiliencePolicy` forces it on with that policy.
    fault_seed / resilience_seed:
        Seeds for the fault model built from a float rate and for the
        collector's backoff-jitter stream.
    policy:
        Collector policy when ``resilient`` is not itself a policy.

    Returns the outermost layer.  Callers that need a specific layer
    (the harness extracts the collector for checkpointing) walk the
    chain with ``isinstance`` / ``getattr`` rather than re-assembling it.
    """
    check_platform(platform, context="wrap() platform")
    if isinstance(resilient, ResiliencePolicy):
        if policy is not None:
            raise ConfigurationError(
                "pass the collector policy either as resilient=... or as "
                "policy=..., not both"
            )
        policy = resilient
        resilient = True
    fault_model = _resolve_faults(platform, faults, fault_seed)
    token = _IN_WRAP.set(True)
    try:
        if fault_model is not None:
            platform = UnreliablePlatform(platform, fault_model)
        if resilient is None:
            resilient = fault_model is not None
        if resilient:
            platform = ResilientCollector(
                platform, policy=policy, rng=resilience_seed
            )
        elif policy is not None:
            raise ConfigurationError(
                "policy=... was given but resilient=False disables the "
                "collector that would use it"
            )
    finally:
        _IN_WRAP.reset(token)
    check_platform(platform, context="wrap() result")
    return platform


def _resolve_faults(
    platform: Platform, faults: FaultsLike, fault_seed: SeedLike
) -> Optional[FaultModel]:
    """Normalise the ``faults`` argument to a model (or ``None``)."""
    if faults is None:
        return None
    if isinstance(faults, FaultModel):
        return faults
    if isinstance(faults, bool):  # bool subclasses int; reject explicitly
        raise ConfigurationError(
            f"faults must be None, a rate in [0, 1], or a FaultModel, "
            f"got {faults!r}"
        )
    if isinstance(faults, (int, float)):
        return FaultModel.from_rate(
            len(platform.pool), float(faults), rng=fault_seed
        )
    raise ConfigurationError(
        f"faults must be None, a rate in [0, 1], or a FaultModel, got "
        f"{type(faults).__name__!r}"
    )


__all__ = ["wrap", "constructed_via_wrap"]
