"""Fault injection for the simulated crowd platform.

The paper's platform model assumes every ``(object, annotator)`` request
returns an answer.  Real crowd platforms do not: workers time out, abandon
tasks, go offline mid-campaign, and occasionally return garbage.  This
module makes those regimes reproducible: a seeded :class:`FaultModel`
decides, per request, whether and how an annotator misbehaves, and
:class:`UnreliablePlatform` wraps a :class:`~repro.crowd.platform.CrowdPlatform`
so those decisions surface as typed exceptions from ``ask``/``ask_batch``
(while still charging the partial cost of wasted work where the fault model
says work was started).

Fault taxonomy (see DESIGN §7 for the handling policy of each):

``TIMEOUT``
    The annotator accepted the task but never delivered.  A fraction of the
    answer cost is charged as waste; :class:`AnswerTimeoutError` is raised.
``ABANDON``
    The annotator declined/abandoned immediately.  Nothing is charged;
    :class:`AnnotatorUnavailableError` is raised.
``OFFLINE``
    The annotator dropped off the platform.  Going offline opens a *burst
    outage*: the annotator stays unavailable for the next
    ``outage_length`` platform requests.  Nothing is charged.
``CORRUPT``
    The answer is delivered but malformed in transit; it is replaced by a
    uniformly random class.  Full cost is charged (the work was done) and
    no exception is raised — corruption is silent, as it is in the wild.
"""

from __future__ import annotations

import enum
import warnings
from typing import Optional, Union

import numpy as np

from repro.analysis.contracts import shaped
from repro.crowd.platform import AnswerRecord, CrowdPlatform
from repro.exceptions import (
    AnnotatorUnavailableError,
    AnswerTimeoutError,
    ConfigurationError,
)
from repro.utils.rng import SeedLike, as_rng

RateLike = Union[float, np.ndarray, list]


class FaultKind(enum.Enum):
    """The four ways a crowd request can misbehave."""

    TIMEOUT = "timeout"
    ABANDON = "abandon"
    OFFLINE = "offline"
    CORRUPT = "corrupt"


#: Column order of the per-annotator rate matrix.
FAULT_KINDS = (FaultKind.TIMEOUT, FaultKind.ABANDON, FaultKind.OFFLINE,
               FaultKind.CORRUPT)


class FaultModel:
    """Seeded per-annotator fault probabilities with burst outages.

    Each rate may be a scalar (shared by every annotator) or a length-
    ``n_annotators`` array.  On every request the model draws one uniform
    variate from its *own* RNG stream — annotator answer streams are never
    touched, so a fault model at rate 0 leaves a run bit-for-bit identical
    to an unwrapped platform.
    """

    def __init__(
        self,
        n_annotators: int,
        *,
        timeout: RateLike = 0.0,
        abandon: RateLike = 0.0,
        offline: RateLike = 0.0,
        corrupt: RateLike = 0.0,
        outage_length: int = 5,
        timeout_cost_fraction: float = 0.5,
        rng: SeedLike = 0,
    ) -> None:
        if n_annotators <= 0:
            raise ConfigurationError(
                f"n_annotators must be > 0, got {n_annotators}"
            )
        if outage_length <= 0:
            raise ConfigurationError(
                f"outage_length must be > 0, got {outage_length}"
            )
        if not 0.0 <= timeout_cost_fraction <= 1.0:
            raise ConfigurationError(
                f"timeout_cost_fraction must be in [0, 1], got "
                f"{timeout_cost_fraction}"
            )
        self.n_annotators = n_annotators
        self.outage_length = outage_length
        self.timeout_cost_fraction = timeout_cost_fraction
        rates = np.stack([
            self._broadcast(rate, n_annotators, kind.value)
            for kind, rate in zip(
                FAULT_KINDS, (timeout, abandon, offline, corrupt)
            )
        ], axis=1)
        totals = rates.sum(axis=1)
        if totals.max() > 1.0 + 1e-9:
            raise ConfigurationError(
                f"per-annotator fault rates must sum to <= 1, got max "
                f"{totals.max():.3f}"
            )
        self._rates = rates
        self._cumulative = np.cumsum(rates, axis=1)
        #: True when no fault can ever fire — wrappers use this to take a
        #: zero-overhead fast path (see ``UnreliablePlatform.ask_batch``).
        self.inert = bool(totals.max() <= 0.0)
        self._rng = as_rng(rng)
        self._clock = 0
        #: annotator_id -> clock tick at which its current outage ends.
        self._outages: dict[int, int] = {}

    # ------------------------------------------------------------------
    @staticmethod
    def _broadcast(rate: RateLike, n: int, name: str) -> np.ndarray:
        arr = np.asarray(rate, dtype=float)
        if arr.ndim == 0:
            arr = np.full(n, float(arr))
        if arr.shape != (n,):
            raise ConfigurationError(
                f"{name} rate must be a scalar or shape ({n},), got "
                f"{arr.shape}"
            )
        if arr.min() < 0.0 or arr.max() > 1.0:
            raise ConfigurationError(
                f"{name} rates must lie in [0, 1], got "
                f"[{arr.min():.3f}, {arr.max():.3f}]"
            )
        return arr

    @classmethod
    def from_rate(cls, n_annotators: int, rate: float, *,
                  rng: SeedLike = 0, **kwargs) -> "FaultModel":
        """A uniform model with total fault probability ``rate`` per request.

        The mass is split over the transient-to-persistent spectrum:
        half timeouts, a quarter abandons, an eighth each of offline drops
        and corruption — a plausible mix for a public crowd platform.
        """
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(f"rate must be in [0, 1], got {rate}")
        return cls(
            n_annotators,
            timeout=rate * 0.5,
            abandon=rate * 0.25,
            offline=rate * 0.125,
            corrupt=rate * 0.125,
            rng=rng,
            **kwargs,
        )

    # ------------------------------------------------------------------
    @property
    def clock(self) -> int:
        """Number of fault decisions made so far (the outage time base)."""
        return self._clock

    @shaped(result="(n_annotators, n_kinds)")
    def rates(self) -> np.ndarray:
        """The per-annotator rate matrix, columns in ``FAULT_KINDS`` order."""
        return self._rates.copy()

    def in_outage(self, annotator_id: int) -> bool:
        """Whether ``annotator_id`` is inside a burst outage right now."""
        end = self._outages.get(annotator_id)
        return end is not None and self._clock < end

    def draw(self, annotator_id: int) -> Optional[FaultKind]:
        """Decide the fate of one request to ``annotator_id``.

        Advances the platform clock, honours any open burst outage, and
        otherwise samples the annotator's fault distribution.  Returns
        ``None`` for a healthy request.
        """
        if not 0 <= annotator_id < self.n_annotators:
            raise ConfigurationError(
                f"annotator_id must be in [0, {self.n_annotators}), got "
                f"{annotator_id}"
            )
        self._clock += 1
        end = self._outages.get(annotator_id)
        if end is not None:
            if self._clock <= end:
                return FaultKind.OFFLINE
            del self._outages[annotator_id]
        if self.inert:
            return None
        u = self._rng.random()
        row = self._cumulative[annotator_id]
        if u >= row[-1]:
            return None
        kind = FAULT_KINDS[int(np.searchsorted(row, u, side="right"))]
        if kind is FaultKind.OFFLINE:
            self._outages[annotator_id] = self._clock + self.outage_length
        return kind

    def corrupt_answer(self, n_classes: int) -> int:
        """Sample the malformed answer a corrupted request delivers."""
        return int(self._rng.integers(n_classes))

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Mutable state (clock, outages, RNG) for checkpointing."""
        return {
            "clock": self._clock,
            "outages": {str(k): v for k, v in self._outages.items()},
            "rng": self._rng.bit_generator.state,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""
        try:
            self._clock = int(state["clock"])
            self._outages = {int(k): int(v)
                             for k, v in state["outages"].items()}
            self._rng.bit_generator.state = state["rng"]
        except (KeyError, TypeError) as exc:
            raise ConfigurationError(
                f"malformed fault-model state: {exc}"
            ) from exc


def _warn_unless_wrapped(cls_name: str, hint: str) -> None:
    """Deprecation shim: steer direct wrapper construction to ``wrap()``.

    Hand-assembled chains drift on layer order and seed conventions;
    :func:`repro.crowd.wrap` owns both.  Direct construction keeps
    working for one release, with a warning pointing at the ``wrap``
    keyword (``hint``) that replaces it.
    """
    from repro.crowd.compose import constructed_via_wrap

    if not constructed_via_wrap():
        warnings.warn(
            f"constructing {cls_name} directly is deprecated and will be "
            f"removed in the next release; compose the chain with "
            f"repro.crowd.wrap(platform, {hint}...) instead",
            DeprecationWarning,
            stacklevel=3,
        )


class PlatformWrapper:
    """Transparent delegation base for platform-decorating layers.

    Subclasses override the behaviour they change (``ask``, ``ask_batch``)
    and inherit everything else — ``pool``, ``budget``, ``history``,
    ``evaluation_labels`` and any future platform attribute — via
    ``__getattr__``, so frameworks cannot tell a wrapped platform from a
    bare one.
    """

    def __init__(self, inner) -> None:
        self.inner = inner

    def __getattr__(self, name: str):
        # Only called for attributes not found on the wrapper itself.
        return getattr(self.inner, name)


class UnreliablePlatform(PlatformWrapper):
    """A platform whose annotators fail according to a :class:`FaultModel`.

    ``ask`` raises :class:`AnswerTimeoutError` /
    :class:`AnnotatorUnavailableError` when the fault model says so;
    ``ask_batch`` propagates those faults, so an unprotected framework
    crashes on the first misbehaving request — wrap the result in a
    :class:`repro.crowd.resilient.ResilientCollector` to survive them.
    """

    def __init__(self, inner: CrowdPlatform, fault_model: FaultModel) -> None:
        _warn_unless_wrapped("UnreliablePlatform", "faults=")
        if fault_model.n_annotators != len(inner.pool):
            raise ConfigurationError(
                f"fault model covers {fault_model.n_annotators} annotators, "
                f"platform has {len(inner.pool)}"
            )
        super().__init__(inner)
        self.fault_model = fault_model

    # ------------------------------------------------------------------
    def ask(self, object_id: int, annotator_id: int) -> AnswerRecord:
        """Collect one answer, or raise the fault the model injects."""
        fault = self.fault_model.draw(annotator_id)
        if fault is FaultKind.TIMEOUT:
            self._charge_waste(object_id, annotator_id)
            raise AnswerTimeoutError(
                f"annotator {annotator_id} timed out on object {object_id}",
                object_id=object_id, annotator_id=annotator_id,
            )
        if fault is FaultKind.ABANDON or fault is FaultKind.OFFLINE:
            raise AnnotatorUnavailableError(
                f"annotator {annotator_id} is unavailable for object "
                f"{object_id} ({fault.value})",
                object_id=object_id, annotator_id=annotator_id,
            )
        record = self.inner.ask(object_id, annotator_id)
        if fault is FaultKind.CORRUPT:
            record = self._corrupt(record)
        return record

    def ask_batch(self, assignments) -> list[AnswerRecord]:
        """Batch collection with the platform's skip/stop semantics.

        Faults raised by individual requests propagate — resilience is the
        collector's job, not the platform's.
        """
        if self.fault_model.inert:
            return self.inner.ask_batch(assignments)
        collected: list[AnswerRecord] = []
        inner = self.inner
        for object_id, annotator_ids in assignments:
            for annotator_id in annotator_ids:
                if inner.history.has_answered(object_id, annotator_id):
                    continue
                if inner.at_capacity(annotator_id):
                    continue
                if not inner.budget.can_afford(inner.pool[annotator_id].cost):
                    if not inner.budget.can_afford(inner.cheapest_cost()):
                        return collected
                    continue
                collected.append(self.ask(object_id, annotator_id))
        return collected

    # ------------------------------------------------------------------
    def _charge_waste(self, object_id: int, annotator_id: int) -> None:
        """Charge the wasted fraction of a timed-out answer's cost."""
        waste = (self.fault_model.timeout_cost_fraction
                 * self.inner.pool[annotator_id].cost)
        waste = min(waste, max(self.inner.budget.remaining, 0.0))
        if waste > 0.0:
            self.inner.budget.charge(waste, object_id=object_id,
                                     annotator_id=annotator_id)

    def _corrupt(self, record: AnswerRecord) -> AnswerRecord:
        """Replace a delivered answer with transit garbage, everywhere.

        The history matrix and answer log must agree on the corrupted
        value — inference and checkpoint replay both read them.
        """
        bad = self.fault_model.corrupt_answer(self.inner.n_classes)
        self.inner.history.amend(record.object_id, record.annotator_id, bad)
        fixed = AnswerRecord(record.object_id, record.annotator_id, bad,
                             record.cost)
        self.inner.answer_log[-1] = fixed
        return fixed
