"""Adverse annotator behaviours for robustness experiments.

Real crowd platforms see more than honest-but-noisy workers: spammers who
answer uniformly at random, adversaries whose answers anti-correlate with
the truth, position-biased workers who favour one class, and workers whose
quality *drifts* as they fatigue.  The paper's model (a fixed confusion
matrix per annotator) captures the first three directly as special
matrices; drift violates the fixed-matrix assumption and is modelled by a
stateful annotator, which the tests use for failure injection.
"""

from __future__ import annotations

import numpy as np

from repro.crowd.annotator import Annotator, AnnotatorKind
from repro.crowd.confusion import ConfusionMatrix
from repro.exceptions import ConfigurationError
from repro.utils.rng import SeedLike, as_rng


def spammer_matrix(n_classes: int) -> ConfusionMatrix:
    """A spammer answers uniformly regardless of the truth."""
    return ConfusionMatrix.uniform(n_classes)


def adversary_matrix(n_classes: int, strength: float = 0.9) -> ConfusionMatrix:
    """An adversary answers a *wrong* class with probability ``strength``.

    For binary tasks this is the label-flipping attacker; for multi-class
    the wrong mass spreads uniformly over the incorrect labels.
    """
    if not 0.5 < strength <= 1.0:
        raise ConfigurationError(
            f"adversary strength must be in (0.5, 1], got {strength}"
        )
    correct = 1.0 - strength
    return ConfusionMatrix.from_accuracy(n_classes, correct)


def biased_matrix(n_classes: int, favoured_class: int,
                  bias: float = 0.8, accuracy: float = 0.6) -> ConfusionMatrix:
    """A worker who leans toward ``favoured_class`` whatever the truth.

    Each row is a mixture: with weight ``bias`` the answer is the favoured
    class; with the rest, the honest ``accuracy``-parameterised row.
    """
    if not 0 <= favoured_class < n_classes:
        raise ConfigurationError(
            f"favoured_class must be in [0, {n_classes}), got {favoured_class}"
        )
    if not 0.0 <= bias <= 1.0:
        raise ConfigurationError(f"bias must be in [0, 1], got {bias}")
    honest = ConfusionMatrix.from_accuracy(n_classes, accuracy).matrix
    favoured = np.zeros((n_classes, n_classes))
    favoured[:, favoured_class] = 1.0
    return ConfusionMatrix(bias * favoured + (1.0 - bias) * honest)


class DriftingAnnotator(Annotator):
    """An annotator whose accuracy decays as they answer (fatigue drift).

    Starts at ``start_accuracy``; after each answer the accuracy decays
    geometrically toward ``floor_accuracy`` with rate ``decay``.  Violates
    the paper's fixed-confusion-matrix assumption on purpose — used to test
    how gracefully inference degrades when the model is misspecified.
    """

    def __init__(self, annotator_id: int, n_classes: int, *,
                 start_accuracy: float = 0.9, floor_accuracy: float = 0.55,
                 decay: float = 0.97, cost: float = 1.0,
                 kind: AnnotatorKind = AnnotatorKind.WORKER,
                 rng: SeedLike = None) -> None:
        if not 0.0 < floor_accuracy <= start_accuracy <= 1.0:
            raise ConfigurationError(
                "need 0 < floor_accuracy <= start_accuracy <= 1, got "
                f"({floor_accuracy}, {start_accuracy})"
            )
        if not 0.0 < decay <= 1.0:
            raise ConfigurationError(f"decay must be in (0, 1], got {decay}")
        super().__init__(
            annotator_id=annotator_id,
            kind=kind,
            confusion=ConfusionMatrix.from_accuracy(n_classes, start_accuracy),
            cost=cost,
            _rng=as_rng(rng),
        )
        self.n_classes = n_classes
        self.floor_accuracy = floor_accuracy
        self.decay = decay
        self._accuracy = start_accuracy

    @property
    def current_accuracy(self) -> float:
        return self._accuracy

    def answer(self, true_class: int, rng: SeedLike = None,
               difficulty: float = 0.0) -> int:
        """Answer with the *current* (decayed) accuracy, then decay it.

        ``difficulty`` interpolates toward a coin flip exactly as for the
        base :class:`~repro.crowd.annotator.Annotator`.
        """
        if not 0.0 <= difficulty <= 1.0:
            raise ConfigurationError(
                f"difficulty must be in [0, 1], got {difficulty}"
            )
        generator = as_rng(rng) if rng is not None else self._rng
        effective_accuracy = (
            (1.0 - difficulty) * self._accuracy + difficulty / self.n_classes
        )
        current = ConfusionMatrix.from_accuracy(
            self.n_classes, effective_accuracy
        )
        result = current.sample_answer(true_class, generator)
        # Geometric decay toward the floor after each answer.
        self._accuracy = (
            self.floor_accuracy
            + (self._accuracy - self.floor_accuracy) * self.decay
        )
        return result


def contaminate_pool(annotators: list[Annotator], *,
                     n_spammers: int = 0, n_adversaries: int = 0,
                     rng: SeedLike = None) -> list[Annotator]:
    """Replace the *last* workers of a pool with spammers/adversaries.

    Returns a new annotator list with the same ids/costs/kinds, so a
    platform built from it is directly comparable to the clean pool.
    Experts are never contaminated (platforms vet them).
    """
    if n_spammers < 0 or n_adversaries < 0:
        raise ConfigurationError("contamination counts must be >= 0")
    rng = as_rng(rng)
    workers = [a for a in annotators if not a.is_expert]
    if n_spammers + n_adversaries > len(workers):
        raise ConfigurationError(
            f"cannot contaminate {n_spammers + n_adversaries} of "
            f"{len(workers)} workers"
        )
    n_classes = annotators[0].confusion.n_classes
    to_corrupt = [a.annotator_id for a in workers][::-1]
    replacements = {}
    for i in range(n_spammers):
        replacements[to_corrupt[i]] = spammer_matrix(n_classes)
    for i in range(n_spammers, n_spammers + n_adversaries):
        replacements[to_corrupt[i]] = adversary_matrix(n_classes)
    out = []
    for a in annotators:
        if a.annotator_id in replacements:
            out.append(Annotator(
                annotator_id=a.annotator_id, kind=a.kind,
                confusion=replacements[a.annotator_id], cost=a.cost,
                _rng=rng.spawn(1)[0],
            ))
        else:
            out.append(a)
    return out
