"""Crowdsourcing substrate: annotators, costs, answer logs, simulation.

The paper's annotator model (Section II-A) describes each annotator by a
latent ``|C| x |C|`` confusion matrix and a fixed per-answer cost.  This
package implements that model directly: :class:`ConfusionMatrix` holds and
estimates the matrix, :class:`Annotator` samples answers from the latent
matrix, :class:`AnnotatorPool` builds heterogeneous worker/expert pools,
:class:`BudgetManager` enforces the labelling budget B, and
:class:`LabellingHistory` stores the ``|O| x |W|`` answer matrix that forms
the first block of the RL State.
"""

from repro.crowd.annotator import Annotator, AnnotatorKind
from repro.crowd.compose import wrap
from repro.crowd.confusion import ConfusionMatrix
from repro.crowd.cost import BudgetManager, CostModel
from repro.crowd.faults import (
    FaultKind,
    FaultModel,
    PlatformWrapper,
    UnreliablePlatform,
)
from repro.crowd.history import UNANSWERED, LabellingHistory
from repro.crowd.platform import AnswerRecord, CrowdPlatform
from repro.crowd.pool import AnnotatorPool
from repro.crowd.protocol import Platform, check_platform
from repro.crowd.resilient import (
    CollectorStats,
    ResiliencePolicy,
    ResilientCollector,
)

__all__ = [
    "ConfusionMatrix",
    "Annotator",
    "AnnotatorKind",
    "AnnotatorPool",
    "CostModel",
    "BudgetManager",
    "LabellingHistory",
    "UNANSWERED",
    "CrowdPlatform",
    "AnswerRecord",
    "FaultKind",
    "FaultModel",
    "Platform",
    "PlatformWrapper",
    "UnreliablePlatform",
    "ResiliencePolicy",
    "ResilientCollector",
    "CollectorStats",
    "check_platform",
    "wrap",
]
