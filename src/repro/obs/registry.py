"""Process-local metrics: counters, gauges, histograms and phase timers.

The observability substrate the episode path is instrumented with.  One
:class:`MetricsRegistry` lives per process (installed with
:func:`set_registry` / :func:`use_registry`); instrumented code talks to
whatever registry is active *at call time* through :func:`get_registry`
and :func:`phase_timer`, so libraries carry no registry plumbing.

Determinism: histograms use **fixed bucket edges** chosen at creation, so
two runs observing the same values produce identical snapshots; the
registry clock is injectable (``clock=``), so tests swap the wall clock
for a counting clock and pin *fully* identical snapshots across same-seed
runs.  :meth:`MetricsRegistry.snapshot` sorts every key.

Disabled mode: the default active registry is a :class:`NullRegistry`
whose methods are no-ops and whose :func:`phase_timer` never reads the
clock — the same "off means free" pattern as ``REPRO_CONTRACTS=0``
(``benchmarks/bench_obs.py`` bounds the residual overhead under 5%).
Setting ``REPRO_METRICS=1`` makes :func:`metrics_enabled_by_default`
true, which ``run_experiment`` uses to switch collection on without code
changes.

Not thread-safe: the registry is process-local, like the rest of the
single-process simulation.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError

#: Default duration buckets (seconds) for phase histograms: microseconds
#: through tens of seconds, fixed so snapshots are structurally stable.
DEFAULT_TIME_EDGES: Tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0,
)


def monotonic() -> float:
    """Operational monotonic clock (seconds), for liveness decisions only.

    The sharded experiment engine times heartbeats, shard timeouts and
    retry backoff against this clock.  It lives in ``repro.obs`` — the
    sanctioned home for clocks (REPRO012) — because nothing data-bearing
    may depend on it: a different reading changes *when* a shard is
    retried, never *what* the shard computes.
    """
    return time.monotonic()


def metrics_enabled_by_default() -> bool:
    """Whether ``REPRO_METRICS`` asks for metrics on runs that don't choose."""
    return os.environ.get("REPRO_METRICS", "0").strip().lower() in (
        "1", "true", "on", "yes",
    )


class Counter:
    """A monotonically increasing float counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ConfigurationError(
                f"counters only go up; got increment {amount}"
            )
        self.value += amount


class Gauge:
    """A last-value-wins float gauge."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current level of the tracked quantity."""
        self.value = float(value)


class Histogram:
    """A fixed-bucket histogram (cumulative-free, one count per bucket).

    ``edges`` are the finite upper bounds; observations land in the first
    bucket whose edge is >= the value, or in the implicit overflow bucket,
    so ``counts`` has ``len(edges) + 1`` entries.  Edges are fixed at
    creation — snapshots of two runs observing the same values are
    identical.
    """

    __slots__ = ("edges", "counts", "total", "sum", "min", "max")

    def __init__(self, edges: Sequence[float]) -> None:
        edges = tuple(float(e) for e in edges)
        if not edges or any(b <= a for a, b in zip(edges, edges[1:])):
            raise ConfigurationError(
                f"histogram edges must be non-empty and increasing: {edges}"
            )
        self.edges = edges
        self.counts = [0] * (len(edges) + 1)
        self.total = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        bucket = len(self.edges)
        for index, edge in enumerate(self.edges):
            if value <= edge:
                bucket = index
                break
        self.counts[bucket] += 1
        self.total += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    def to_dict(self) -> dict:
        """JSON-safe snapshot of this histogram."""
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "total": self.total,
            "sum": self.sum,
            "min": self.min if self.total else 0.0,
            "max": self.max if self.total else 0.0,
        }


class PhaseStat:
    """Accumulated wall time and call count of one instrumented phase."""

    __slots__ = ("calls", "total", "histogram")

    def __init__(self, edges: Sequence[float] = DEFAULT_TIME_EDGES) -> None:
        self.calls = 0
        self.total = 0.0
        self.histogram = Histogram(edges)

    def record(self, elapsed: float) -> None:
        """Fold one completed phase execution into the stat."""
        self.calls += 1
        self.total += elapsed
        self.histogram.observe(elapsed)

    def to_dict(self) -> dict:
        """JSON-safe snapshot of this phase."""
        return {
            "calls": self.calls,
            "total_s": self.total,
            "histogram": self.histogram.to_dict(),
        }


class MetricsRegistry:
    """Process-local store of counters, gauges, histograms and phase stats.

    ``clock`` is any zero-argument callable returning seconds; the default
    is :func:`time.perf_counter`.  Tests inject a counting clock to make
    timings — and therefore whole snapshots — deterministic.

    ``events`` may be a :class:`repro.obs.events.JsonlEventLog`; every
    completed phase is then also emitted as a ``phase`` event, which is
    what ``python -m repro.obs report`` aggregates.
    """

    #: Instrumented code consults this before touching the clock.
    enabled: bool = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter,
                 *, events=None) -> None:
        self._clock = clock
        self.events = events
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._phases: Dict[str, PhaseStat] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: float = 1.0) -> None:
        """Increment counter ``name`` (created on first use)."""
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter()
        counter.inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` (created on first use)."""
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge()
        gauge.set(value)

    def observe(self, name: str, value: float,
                edges: Sequence[float] = DEFAULT_TIME_EDGES) -> None:
        """Observe ``value`` into histogram ``name``.

        ``edges`` only applies on first use; a histogram's buckets are
        fixed for its lifetime.
        """
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(edges)
        histogram.observe(value)

    def record_phase(self, name: str, elapsed: float) -> None:
        """Fold one completed timed phase into the per-phase stats."""
        stat = self._phases.get(name)
        if stat is None:
            stat = self._phases[name] = PhaseStat()
        stat.record(elapsed)
        if self.events is not None:
            self.events.emit("phase", name=name, elapsed_s=elapsed)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def counter_value(self, name: str) -> float:
        """Current value of counter ``name`` (0 if never incremented)."""
        counter = self._counters.get(name)
        return counter.value if counter is not None else 0.0

    def phase_stats(self) -> Dict[str, PhaseStat]:
        """Live view of the per-phase stats (keyed by phase name)."""
        return self._phases

    def snapshot(self) -> dict:
        """JSON-safe, deterministic (sorted-key) snapshot of everything."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value
                for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].to_dict()
                for name in sorted(self._histograms)
            },
            "phases": {
                name: self._phases[name].to_dict()
                for name in sorted(self._phases)
            },
        }


class NullRegistry(MetricsRegistry):
    """The disabled registry: every operation is a no-op.

    ``enabled`` is False, so :class:`phase_timer` never reads the clock;
    the remaining methods are overridden to plain ``pass`` so instrumented
    counter bumps cost one dynamic dispatch and nothing else.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def inc(self, name: str, amount: float = 1.0) -> None:
        """Discard the increment (disabled registry)."""

    def set_gauge(self, name: str, value: float) -> None:
        """Discard the gauge update (disabled registry)."""

    def observe(self, name: str, value: float,
                edges: Sequence[float] = DEFAULT_TIME_EDGES) -> None:
        """Discard the observation (disabled registry)."""

    def record_phase(self, name: str, elapsed: float) -> None:
        """Discard the phase record (disabled registry)."""


#: The process-wide disabled registry (shared; carries no state).
NULL_REGISTRY = NullRegistry()

_ACTIVE: MetricsRegistry = NULL_REGISTRY  # repro: process-local — observability sink; each worker wires its own registry at startup and metrics merge by aggregation, not shared state


def get_registry() -> MetricsRegistry:
    """The registry instrumented code should record into right now."""
    return _ACTIVE


def set_registry(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Install ``registry`` (``None`` = disable) and return the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry if registry is not None else NULL_REGISTRY
    return previous


class use_registry:
    """Context manager installing a registry for the duration of a block.

    >>> reg = MetricsRegistry()
    >>> with use_registry(reg):
    ...     instrumented_code()
    """

    def __init__(self, registry: Optional[MetricsRegistry]) -> None:
        self._registry = registry
        self._previous: Optional[MetricsRegistry] = None

    def __enter__(self) -> MetricsRegistry:
        """Install the registry, remembering the previously active one."""
        self._previous = set_registry(self._registry)
        return get_registry()

    def __exit__(self, exc_type, exc, tb) -> None:
        """Restore the previously active registry."""
        set_registry(self._previous)


class phase_timer:
    """Times a named phase into the *active* registry.

    Usable as a context manager::

        with phase_timer("featurize"):
            tensor = build()

    or as a decorator::

        @phase_timer("q_forward")
        def q_values(...): ...

    The active registry is resolved at ``__enter__`` time (not at
    decoration time), so one decorated function records into whatever
    registry each call runs under.  Under the :data:`NULL_REGISTRY` the
    clock is never read.
    """

    __slots__ = ("name", "_registry", "_start")

    def __init__(self, name: str) -> None:
        self.name = name
        self._registry: Optional[MetricsRegistry] = None
        self._start = 0.0

    def __enter__(self) -> "phase_timer":
        """Start timing if the active registry is enabled."""
        registry = _ACTIVE
        if registry.enabled:
            self._registry = registry
            self._start = registry._clock()
        else:
            self._registry = None
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Record the elapsed time (exceptions still count as a call)."""
        registry = self._registry
        if registry is not None:
            registry.record_phase(self.name, registry._clock() - self._start)
            self._registry = None

    def __call__(self, fn: Callable) -> Callable:
        """Decorator form: time every call of ``fn`` under this phase name."""
        import functools

        name = self.name

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with phase_timer(name):
                return fn(*args, **kwargs)

        return wrapper


class CountingClock:
    """A deterministic clock for tests: each reading advances by ``step``.

    Every ``phase_timer`` enter/exit pair therefore measures exactly
    ``step`` seconds, making timing-bearing snapshots reproducible.
    """

    __slots__ = ("step", "now")

    def __init__(self, step: float = 1.0) -> None:
        self.step = step
        self.now = 0.0

    def __call__(self) -> float:
        """Return the current reading and advance the clock."""
        self.now += self.step
        return self.now


def make_registry(events=None,
                  clock: Callable[[], float] = time.perf_counter
                  ) -> MetricsRegistry:
    """Convenience constructor used by the harness (`run_experiment`)."""
    return MetricsRegistry(clock, events=events)


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "PhaseStat",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "CountingClock",
    "DEFAULT_TIME_EDGES",
    "get_registry",
    "set_registry",
    "use_registry",
    "phase_timer",
    "make_registry",
    "metrics_enabled_by_default",
    "monotonic",
]
