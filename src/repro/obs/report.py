"""Render a per-phase time/call/budget table from a metrics JSONL file.

Backs ``python -m repro.obs report``: reads an event log written by
``run_experiment(..., metrics_out=...)`` (or any
:class:`~repro.obs.events.JsonlEventLog`), and summarises where the
episode's wall time and labelling budget went.

The final ``snapshot`` event is the preferred source (it carries the full
registry state: phase stats, counters, gauges); when a log carries only
raw ``phase`` events — e.g. a run killed before its final flush — the
report aggregates those instead.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.obs.events import PathLike, read_events
from repro.utils.tables import format_table

#: Counter namespace whose suffixes attribute budget units to a phase,
#: e.g. ``budget.collect`` -> the ``collect`` row.
BUDGET_PREFIX = "budget."


def summarize_snapshot(snapshot: dict) -> dict:
    """Reduce a registry snapshot to the report's ``{phases, counters, gauges}``.

    Accepts the dict :meth:`repro.obs.MetricsRegistry.snapshot` returns
    (e.g. :attr:`RunResult.metrics`) and keeps only what the report
    renders; ``phases`` maps phase name to ``{"calls": int, "total_s":
    float}``.
    """
    phases = {
        name: {"calls": stat["calls"], "total_s": stat["total_s"]}
        for name, stat in snapshot.get("phases", {}).items()
    }
    return {
        "phases": phases,
        "counters": dict(snapshot.get("counters", {})),
        "gauges": dict(snapshot.get("gauges", {})),
    }


def load_summary(path: PathLike) -> dict:
    """Extract ``{phases, counters, gauges}`` from a metrics JSONL file.

    ``phases`` maps phase name to ``{"calls": int, "total_s": float}``.
    """
    events = read_events(path)
    snapshot: Optional[dict] = None
    for event in reversed(events):
        if event.get("kind") == "snapshot":
            snapshot = event.get("metrics", {})
            break
    if snapshot is not None:
        return summarize_snapshot(snapshot)
    # Fallback: aggregate raw phase events (no final snapshot was written).
    phases: Dict[str, dict] = {}
    for event in events:
        if event.get("kind") != "phase":
            continue
        stat = phases.setdefault(event["name"], {"calls": 0, "total_s": 0.0})
        stat["calls"] += 1
        stat["total_s"] += float(event.get("elapsed_s", 0.0))
    return {"phases": phases, "counters": {}, "gauges": {}}


def budget_by_phase(counters: Dict[str, float]) -> Dict[str, float]:
    """Per-phase budget units from ``budget.<phase>`` counters."""
    return {
        name[len(BUDGET_PREFIX):]: value
        for name, value in counters.items()
        if name.startswith(BUDGET_PREFIX)
    }


def _phase_rows(summary: dict) -> List[List[object]]:
    phases = summary["phases"]
    budgets = budget_by_phase(summary["counters"])
    total_time = sum(s["total_s"] for s in phases.values()) or 1.0
    names = sorted(set(phases) | set(budgets))
    rows: List[List[object]] = []
    for name in names:
        stat = phases.get(name, {"calls": 0, "total_s": 0.0})
        calls = stat["calls"]
        total_s = stat["total_s"]
        mean_ms = (total_s / calls * 1000.0) if calls else 0.0
        rows.append([
            name,
            calls,
            f"{total_s:.4f}",
            f"{mean_ms:.3f}",
            f"{100.0 * total_s / total_time:.1f}%",
            f"{budgets.get(name, 0.0):.1f}",
        ])
    return rows


def render_report(summary: dict) -> str:
    """The plain-text per-phase time/call/budget report."""
    rows = _phase_rows(summary)
    lines = []
    if rows:
        lines.append(format_table(
            ["phase", "calls", "total s", "mean ms", "time %", "budget"],
            rows,
        ))
    else:
        lines.append("no phase records in this event log")

    gauges = summary["gauges"]
    spent = gauges.get("budget.spent")
    total = gauges.get("budget.total")
    if spent is not None:
        attributed = sum(budget_by_phase(summary["counters"]).values())
        # Offline cross-training episodes spend separate training budgets
        # but land in the same budget.* counters; split them back out.
        pretrain = gauges.get("budget.pretrain", 0.0)
        budget_line = f"budget: {spent:.1f} spent"
        if total is not None:
            budget_line += f" of {total:.1f}"
        budget_line += f" ({attributed - pretrain:.1f} attributed to phases"
        if pretrain:
            budget_line += f", +{pretrain:.1f} offline pretraining"
        budget_line += ")"
        lines.append("")
        lines.append(budget_line)

    interesting: List[Tuple[str, float]] = sorted(
        (name, value) for name, value in summary["counters"].items()
        if not name.startswith(BUDGET_PREFIX)
    )
    if interesting:
        lines.append("")
        lines.append(format_table(
            ["counter", "value"],
            [[name, f"{value:g}"] for name, value in interesting],
        ))
    return "\n".join(lines)


__all__ = [
    "BUDGET_PREFIX",
    "budget_by_phase",
    "load_summary",
    "render_report",
    "summarize_snapshot",
]
