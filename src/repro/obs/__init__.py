"""Observability: metrics registry, phase timers, JSONL event log.

The substrate behind ``run_experiment(..., metrics=...)``, the
``--metrics/--metrics-out`` CLI flags and ``python -m repro.obs report``:

* :class:`MetricsRegistry` — process-local counters, gauges and
  fixed-bucket histograms whose snapshots are deterministic;
* :func:`phase_timer` — context manager / decorator timing one named
  phase of the episode path into the active registry;
* :class:`JsonlEventLog` — structured run events with atomic flush
  (write-temp-then-rename, the checkpoint convention).

A disabled registry (:data:`NULL_REGISTRY`, the default) turns every
instrumentation point into a no-op — same philosophy as
``REPRO_CONTRACTS=0`` — so uninstrumented-speed runs stay the default;
``benchmarks/bench_obs.py`` pins the residual overhead under 5%.
"""

from repro.obs.baseline import (
    DEFAULT_TOLERANCE,
    PHASE_BASELINE_MAP,
    PhaseComparison,
    calibrate,
    compare_to_baseline,
    load_baseline,
    phase_minima,
    render_comparison,
    write_baseline,
)
from repro.obs.events import JsonlEventLog, read_events
from repro.obs.registry import (
    DEFAULT_TIME_EDGES,
    NULL_REGISTRY,
    Counter,
    CountingClock,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    PhaseStat,
    get_registry,
    make_registry,
    metrics_enabled_by_default,
    monotonic,
    phase_timer,
    set_registry,
    use_registry,
)
from repro.obs.report import load_summary, render_report, summarize_snapshot

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "PhaseStat",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "CountingClock",
    "DEFAULT_TIME_EDGES",
    "get_registry",
    "set_registry",
    "use_registry",
    "phase_timer",
    "make_registry",
    "metrics_enabled_by_default",
    "monotonic",
    "JsonlEventLog",
    "read_events",
    "load_summary",
    "render_report",
    "summarize_snapshot",
    "DEFAULT_TOLERANCE",
    "PHASE_BASELINE_MAP",
    "PhaseComparison",
    "calibrate",
    "compare_to_baseline",
    "load_baseline",
    "phase_minima",
    "render_comparison",
    "write_baseline",
]
