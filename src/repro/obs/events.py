"""JSONL event log with atomic flush.

Structured run events (phase completions, run lifecycle, metric
snapshots) accumulate in memory and flush to a ``.jsonl`` file — one JSON
object per line, each carrying a monotonically increasing ``seq`` — using
the same write-temp-then-``os.replace`` convention as the checkpoint
layer (:mod:`repro.harness.checkpoint`): a process killed mid-flush
leaves the previous complete file intact, never a torn line.

The file is rewritten in full on each flush (runs emit thousands of
events, not millions), which keeps flushes atomic without append-mode
bookkeeping.  :func:`read_events` is the matching reader the
``python -m repro.obs report`` subcommand uses.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from repro.exceptions import ConfigurationError

PathLike = Union[str, Path]


def _jsonable(value):
    """Best-effort conversion to JSON-safe types (numpy scalars/arrays)."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


class JsonlEventLog:
    """An append-in-memory, atomically-flushed JSONL event sink.

    Parameters
    ----------
    path:
        Destination ``.jsonl`` file.
    flush_every:
        Auto-flush after this many buffered (unflushed) events; ``0``
        disables auto-flush (explicit :meth:`flush`/:meth:`close` only).
    """

    def __init__(self, path: PathLike, *, flush_every: int = 256) -> None:
        if flush_every < 0:
            raise ConfigurationError(
                f"flush_every must be >= 0, got {flush_every}"
            )
        self.path = Path(path)
        self.flush_every = flush_every
        self._events: List[dict] = []
        self._pending = 0

    # ------------------------------------------------------------------
    def emit(self, kind: str, **fields) -> dict:
        """Record one event; returns the stored record (with its ``seq``).

        ``fields`` are converted to JSON-safe types eagerly so a later
        flush cannot fail on a value mutated or garbage-collected since.
        """
        record = {"seq": len(self._events), "kind": str(kind)}
        record.update(_jsonable(fields))
        self._events.append(record)
        self._pending += 1
        if self.flush_every and self._pending >= self.flush_every:
            self.flush()
        return record

    @property
    def events(self) -> List[dict]:
        """All events emitted so far (flushed or not), in order."""
        return list(self._events)

    def flush(self) -> None:
        """Atomically persist every event emitted so far.

        Write-temp-then-rename (the checkpoint convention): the rename is
        the commit point, so readers only ever see a complete file.
        """
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "w") as handle:
            for event in self._events:
                handle.write(json.dumps(event) + "\n")
        os.replace(tmp, self.path)
        self._pending = 0

    def close(self) -> None:
        """Flush any buffered events (idempotent)."""
        if self._pending or not self.path.exists():
            self.flush()


def read_events(path: PathLike, *, kind: Optional[str] = None) -> List[dict]:
    """Read a JSONL event file back, optionally filtering by ``kind``."""
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"no event log at {path}")
    events = []
    with open(path) as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"{path}:{line_no}: malformed event line: {exc}"
                ) from exc
            if kind is None or event.get("kind") == kind:
                events.append(event)
    return events


__all__ = ["JsonlEventLog", "read_events", "PathLike"]
