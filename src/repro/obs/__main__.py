"""Command-line front end: ``python -m repro.obs``.

Subcommands::

    python -m repro.obs report metrics.jsonl            # per-phase table
    python -m repro.obs report metrics.jsonl --format json
    python -m repro.obs report metrics.jsonl \
        --baseline benchmarks/results/BENCH_phase_baselines.json
    python -m repro.obs report metrics.jsonl \
        --baseline ... --write-baseline   # re-baseline intentionally

``report`` renders the per-phase wall-time / call-count / budget table
from a metrics JSONL file written by ``run_experiment(...,
metrics_out=...)`` (see :mod:`repro.obs.report`).  With ``--baseline``
it instead ratchets the run's per-phase minima against a committed
baseline (see :mod:`repro.obs.baseline`), exiting 1 on any regression
beyond ``--tolerance``; ``--write-baseline`` rewrites the baseline from
this run instead of comparing.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.exceptions import ReproError
from repro.obs.baseline import (
    DEFAULT_TOLERANCE,
    calibrate,
    compare_to_baseline,
    load_baseline,
    phase_minima,
    render_comparison,
    write_baseline,
)
from repro.obs.report import load_summary, render_report


def build_parser() -> argparse.ArgumentParser:
    """The ``repro.obs`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro.obs",
        description="Observability tooling for CrowdRL runs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    report = sub.add_parser(
        "report", help="summarise a metrics JSONL file per phase"
    )
    report.add_argument("path", help="metrics .jsonl file to summarise")
    report.add_argument("--format", choices=("text", "json"), default="text")
    report.add_argument(
        "--baseline",
        metavar="JSON",
        help="ratchet per-phase minima against this committed baseline "
        "instead of rendering the summary table (exit 1 on regression)",
    )
    report.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="normalised regression ratio that fails the ratchet "
        f"(default {DEFAULT_TOLERANCE}, i.e. >25%% slower)",
    )
    report.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite --baseline from this run's minima instead of comparing",
    )
    return parser


def _run_baseline_mode(args: argparse.Namespace) -> int:
    minima = phase_minima(args.path)
    calibration_s = calibrate()
    if args.write_baseline:
        doc = write_baseline(
            args.baseline, minima, calibration_s,
            note=f"phase minima from {args.path}",
        )
        print(f"wrote baseline for {len(doc['phases'])} phases "
              f"to {args.baseline} (calibration {calibration_s * 1e6:.1f}us)")
        return 0
    baseline = load_baseline(args.baseline)
    results = compare_to_baseline(
        minima, calibration_s, baseline, tolerance=args.tolerance
    )
    if args.format == "json":
        print(json.dumps(
            {
                "calibration_s": calibration_s,
                "tolerance": args.tolerance,
                "phases": {
                    r.phase: {
                        "baseline_norm": r.baseline_norm,
                        "current_norm": r.current_norm,
                        "ratio": r.ratio,
                        "regressed": r.regressed,
                        "missing": r.missing,
                    }
                    for r in results
                },
            },
            indent=2, sort_keys=True,
        ))
    else:
        print(render_comparison(results, args.tolerance))
    return 1 if any(r.regressed for r in results) else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.baseline:
            return _run_baseline_mode(args)
        summary = load_summary(args.path)
    except ReproError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(render_report(summary))
    return 0


if __name__ == "__main__":
    sys.exit(main())
