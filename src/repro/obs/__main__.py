"""Command-line front end: ``python -m repro.obs``.

Subcommands::

    python -m repro.obs report metrics.jsonl            # per-phase table
    python -m repro.obs report metrics.jsonl --format json

``report`` renders the per-phase wall-time / call-count / budget table
from a metrics JSONL file written by ``run_experiment(...,
metrics_out=...)`` (see :mod:`repro.obs.report`).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.exceptions import ReproError
from repro.obs.report import load_summary, render_report


def build_parser() -> argparse.ArgumentParser:
    """The ``repro.obs`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro.obs",
        description="Observability tooling for CrowdRL runs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    report = sub.add_parser(
        "report", help="summarise a metrics JSONL file per phase"
    )
    report.add_argument("path", help="metrics .jsonl file to summarise")
    report.add_argument("--format", choices=("text", "json"), default="text")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        summary = load_summary(args.path)
    except ReproError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(render_report(summary))
    return 0


if __name__ == "__main__":
    sys.exit(main())
