"""Per-phase performance baselines with a machine-normalised CI ratchet.

The episode hot path is instrumented with :func:`repro.obs.phase_timer`
blocks, and every call's duration lands in the run's metrics JSONL as a
raw ``phase`` event.  This module turns those durations into a committed
baseline (``benchmarks/results/BENCH_phase_baselines.json``) and a
comparison that CI can ratchet — the performance analogue of
``.repro-flow-baseline.json``:

* **minimum-over-calls** per phase is the statistic (an episode calls
  each phase tens of times; the minimum filters scheduler interference
  the way ``bench_obs.py``'s ``min(timeit.repeat(...))`` does);
* every duration is **normalised by a calibration kernel** timed on the
  same machine at comparison time, so a committed baseline from the
  reference VM transfers to a faster/slower CI box — only the *ratio*
  of phase time to calibration time is ratcheted;
* durations under :data:`FLOOR_S` are clamped before comparison: below
  that, timer noise dominates and a "regression" is meaningless;
* a phase regresses when its normalised duration exceeds
  ``tolerance`` × the baseline's (default :data:`DEFAULT_TOLERANCE`,
  the ISSUE's >25% bar).

Driven by ``python -m repro.obs report <run.jsonl> --baseline <json>``
(compare, exit 1 on regression) and ``--write-baseline`` (re-baseline
after an intentional change); ``benchmarks/bench_phase_ratchet.py``
produces the run deterministically.
"""

from __future__ import annotations

import json
import timeit
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.exceptions import ReproError
from repro.obs.events import PathLike, read_events
from repro.utils.tables import format_table

#: Ratcheted phase -> the ``phase_timer`` name carrying it in the JSONL.
#: (``e_step``/``m_step`` run inside the ``infer`` phase, hence the
#: namespaced names.)  DESIGN.md documents the map next to the featurizer.
PHASE_BASELINE_MAP: Dict[str, str] = {
    "featurize": "featurize",
    "q_forward": "q_forward",
    "select": "select",
    "collect": "collect",
    "e_step": "infer.e_step",
    "m_step": "infer.m_step",
    "enrich": "enrich",
    "dqn_train": "dqn_train",
}

#: Fail on a > 25% normalised regression of any ratcheted phase.
DEFAULT_TOLERANCE = 1.25

#: Durations below this are timer noise; clamped before comparison.
FLOOR_S = 50e-6

_CAL_SIZE = 160


def _calibration_workload() -> np.ndarray:
    """Deterministic numpy workload of the hot path's flavour."""
    base = np.arange(_CAL_SIZE * _CAL_SIZE, dtype=float) % 97.0
    return base.reshape(_CAL_SIZE, _CAL_SIZE) / 96.0 + 0.5


def calibration_kernel(work: Optional[np.ndarray] = None) -> float:
    """One pass of the calibration workload (matmul + sort + reduce).

    Mirrors what the instrumented phases actually do — dense linear
    algebra, ordering, reductions on a few-hundred-row matrix — so its
    runtime tracks theirs across machines.
    """
    if work is None:
        work = _calibration_workload()
    out = work @ work
    out = np.sort(out, axis=1)
    return float(np.log(out).sum())


def calibrate(repeats: int = 7, number: int = 5) -> float:
    """Seconds per calibration-kernel pass on this machine (min of repeats)."""
    work = _calibration_workload()
    calibration_kernel(work)  # warm caches / allocator before timing
    return min(
        timeit.repeat(lambda: calibration_kernel(work),
                      number=number, repeat=repeats)
    ) / number


def phase_minima(path: PathLike) -> Dict[str, dict]:
    """Per-ratcheted-phase ``{"min_s", "calls"}`` from a metrics JSONL.

    Reads the raw per-call ``phase`` events (not the aggregated
    snapshot), so the minimum over calls is available.
    """
    wanted = {jsonl: name for name, jsonl in PHASE_BASELINE_MAP.items()}
    stats: Dict[str, dict] = {}
    for event in read_events(path):
        if event.get("kind") != "phase":
            continue
        name = wanted.get(event.get("name"))
        if name is None:
            continue
        elapsed = float(event.get("elapsed_s", 0.0))
        stat = stats.setdefault(name, {"min_s": elapsed, "calls": 0})
        stat["calls"] += 1
        if elapsed < stat["min_s"]:
            stat["min_s"] = elapsed
    return stats


def merge_minima(runs: List[Dict[str, dict]]) -> Dict[str, dict]:
    """Minimum over repeated runs (the tight-loop-repeat of episodes)."""
    merged: Dict[str, dict] = {}
    for run in runs:
        for name, stat in run.items():
            seen = merged.get(name)
            if seen is None:
                merged[name] = dict(stat)
            else:
                seen["min_s"] = min(seen["min_s"], stat["min_s"])
                seen["calls"] += stat["calls"]
    return merged


def write_baseline(path: PathLike, minima: Dict[str, dict],
                   calibration_s: float, *, note: str = "") -> dict:
    """Write the committed baseline JSON; returns the written document."""
    doc = {
        "schema": "repro-phase-baseline-v1",
        "note": note,
        "calibration_s": calibration_s,
        "floor_s": FLOOR_S,
        "phases": {
            name: {"min_s": stat["min_s"], "calls": stat["calls"]}
            for name, stat in sorted(minima.items())
        },
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return doc


def load_baseline(path: PathLike) -> dict:
    """Load a baseline document written by :func:`write_baseline`."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        raise ReproError(f"cannot read phase baseline {path}: {err}") from err
    if doc.get("schema") != "repro-phase-baseline-v1":
        raise ReproError(
            f"{path} is not a phase baseline (schema "
            f"{doc.get('schema')!r})"
        )
    return doc


@dataclass(frozen=True)
class PhaseComparison:
    """One phase's ratchet verdict."""

    phase: str
    baseline_norm: float   # baseline min_s / baseline calibration_s (floored)
    current_norm: float    # current  min_s / current  calibration_s (floored)
    ratio: float           # current_norm / baseline_norm
    regressed: bool
    missing: bool = False  # phase in the baseline never ran in this log


def compare_to_baseline(
    minima: Dict[str, dict],
    calibration_s: float,
    baseline: dict,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[PhaseComparison]:
    """Ratchet ``minima`` against a committed baseline.

    Both sides are floored at the baseline's ``floor_s`` and normalised
    by their own machine's calibration time; a phase regresses when its
    normalised minimum exceeds ``tolerance`` times the baseline's.  A
    baseline phase absent from the current log counts as regressed (the
    deterministic ratchet workload must exercise every ratcheted phase).
    """
    if tolerance <= 1.0:
        raise ReproError(f"tolerance must be > 1.0, got {tolerance}")
    base_cal = float(baseline["calibration_s"])
    floor = float(baseline.get("floor_s", FLOOR_S))
    results: List[PhaseComparison] = []
    for phase, base_stat in sorted(baseline["phases"].items()):
        base_norm = max(float(base_stat["min_s"]), floor) / base_cal
        current = minima.get(phase)
        if current is None or current["calls"] == 0:
            results.append(PhaseComparison(
                phase=phase, baseline_norm=base_norm, current_norm=float("inf"),
                ratio=float("inf"), regressed=True, missing=True,
            ))
            continue
        cur_norm = max(float(current["min_s"]), floor) / calibration_s
        ratio = cur_norm / base_norm
        results.append(PhaseComparison(
            phase=phase, baseline_norm=base_norm, current_norm=cur_norm,
            ratio=ratio, regressed=ratio > tolerance,
        ))
    return results


def render_comparison(results: List[PhaseComparison],
                      tolerance: float = DEFAULT_TOLERANCE) -> str:
    """Plain-text ratchet table (normalised units: phase / calibration)."""
    rows = []
    for res in results:
        if res.missing:
            status = "MISSING"
        elif res.regressed:
            status = "REGRESSED"
        else:
            status = "ok"
        rows.append([
            res.phase,
            f"{res.baseline_norm:.3f}",
            "-" if res.missing else f"{res.current_norm:.3f}",
            "-" if res.missing else f"{res.ratio:.2f}x",
            status,
        ])
    table = format_table(
        ["phase", "baseline", "current", "ratio", "status"], rows
    )
    regressed = [r.phase for r in results if r.regressed]
    verdict = (
        f"perf ratchet FAILED (> {tolerance:.2f}x): {', '.join(regressed)}"
        if regressed
        else f"perf ratchet ok (all phases within {tolerance:.2f}x)"
    )
    return table + "\n\n" + verdict


__all__ = [
    "DEFAULT_TOLERANCE",
    "FLOOR_S",
    "PHASE_BASELINE_MAP",
    "PhaseComparison",
    "calibrate",
    "calibration_kernel",
    "compare_to_baseline",
    "load_baseline",
    "merge_minima",
    "phase_minima",
    "render_comparison",
    "write_baseline",
]
