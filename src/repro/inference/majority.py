"""Majority voting and quality-weighted majority voting.

The naive strategies of Section V-A1.  Plain MV treats every annotator
equally; the weighted variant weights each vote by a supplied scalar quality
(e.g. the State's estimated quality column), which is what "taking the
classifier as a special annotator" style aggregation reduces to.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.inference.base import AnswerMap, InferenceResult, TruthInference
from repro.utils.rng import SeedLike, as_rng


class MajorityVote(TruthInference):
    """Plain majority voting; ties broken deterministically or at random."""

    def __init__(self, *, tie_break: str = "lowest", rng: SeedLike = None) -> None:
        if tie_break not in ("lowest", "random"):
            raise ConfigurationError(
                f"tie_break must be 'lowest' or 'random', got {tie_break!r}"
            )
        self.tie_break = tie_break
        self._rng = as_rng(rng)

    def infer(self, answers: AnswerMap, n_classes: int,
              n_annotators: int) -> InferenceResult:
        """Aggregate by unweighted majority vote."""
        self._validate(answers, n_classes, n_annotators)
        posteriors: dict[int, np.ndarray] = {}
        labels: dict[int, int] = {}
        for object_id, votes in answers.items():
            counts = np.zeros(n_classes)
            for answer in votes.values():
                counts[answer] += 1
            posteriors[object_id] = counts / counts.sum()
            winners = np.flatnonzero(counts == counts.max())
            if len(winners) == 1 or self.tie_break == "lowest":
                labels[object_id] = int(winners[0])
            else:
                labels[object_id] = int(self._rng.choice(winners))
        return InferenceResult(posteriors=posteriors, labels=labels)


class WeightedMajorityVote(TruthInference):
    """Majority voting with per-annotator vote weights."""

    def __init__(self, weights: Sequence[float]) -> None:
        w = np.asarray(weights, dtype=float)
        if w.ndim != 1 or w.size == 0:
            raise ConfigurationError("weights must be a non-empty 1-D sequence")
        if np.any(w < 0):
            raise ConfigurationError("weights must be non-negative")
        self.weights = w

    def infer(self, answers: AnswerMap, n_classes: int,
              n_annotators: int) -> InferenceResult:
        """Aggregate by quality-weighted majority vote."""
        self._validate(answers, n_classes, n_annotators)
        if self.weights.size != n_annotators:
            raise ConfigurationError(
                f"expected {n_annotators} weights, got {self.weights.size}"
            )
        posteriors: dict[int, np.ndarray] = {}
        for object_id, votes in answers.items():
            scores = np.zeros(n_classes)
            for annotator_id, answer in votes.items():
                scores[answer] += self.weights[annotator_id]
            total = scores.sum()
            if total <= 0:
                # All voters carry zero weight; fall back to uniform.
                posteriors[object_id] = np.full(n_classes, 1.0 / n_classes)
            else:
                posteriors[object_id] = scores / total
        labels = self._posterior_to_labels(posteriors)
        return InferenceResult(posteriors=posteriors, labels=labels)
