"""GLAD-style one-parameter-per-annotator EM with task difficulty.

Whitehill et al.'s GLAD models ``p(correct) = sigmoid(alpha_j * beta_i)``
with annotator ability ``alpha_j`` and inverse task difficulty ``beta_i``.
We implement a symmetric multi-class variant: a correct answer has
probability ``sigma(alpha_j * beta_i)``, the remaining mass is uniform over
wrong classes.  Parameters are fitted by coordinate-wise gradient ascent on
the expected complete-data log likelihood.

Included to round out the inference substrate (the survey the paper builds
on, ref [48], evaluates GLAD alongside DS/PM/MV).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.inference.base import AnswerMap, InferenceResult, TruthInference


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x, dtype=float)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


class GladInference(TruthInference):
    """Simplified multi-class GLAD."""

    def __init__(self, *, max_iter: int = 50, grad_steps: int = 10,
                 learning_rate: float = 0.1, tol: float = 1e-4) -> None:
        if max_iter <= 0 or grad_steps <= 0:
            raise ConfigurationError("max_iter and grad_steps must be > 0")
        if learning_rate <= 0:
            raise ConfigurationError(
                f"learning_rate must be > 0, got {learning_rate}"
            )
        self.max_iter = max_iter
        self.grad_steps = grad_steps
        self.learning_rate = learning_rate
        self.tol = tol

    def infer(self, answers: AnswerMap, n_classes: int,
              n_annotators: int) -> InferenceResult:
        """Run GLAD's ability/difficulty EM over ``answers``."""
        self._validate(answers, n_classes, n_annotators)
        object_ids = sorted(answers)
        if not object_ids:
            return InferenceResult(posteriors={}, labels={})
        oid_index = {oid: i for i, oid in enumerate(object_ids)}

        alpha = np.ones(n_annotators)        # annotator ability
        log_beta = np.zeros(len(object_ids))  # log inverse difficulty

        # Initialise with majority voting.
        posteriors: dict[int, np.ndarray] = {}
        for oid in object_ids:
            counts = np.zeros(n_classes)
            for answer in answers[oid].values():
                counts[answer] += 1
            posteriors[oid] = counts / counts.sum()

        converged = False
        iteration = 0
        for iteration in range(1, self.max_iter + 1):
            # E-step.
            max_delta = 0.0
            for oid in object_ids:
                beta = np.exp(log_beta[oid_index[oid]])
                log_post = np.zeros(n_classes)
                for annotator_id, answer in answers[oid].items():
                    p_correct = float(_sigmoid(np.array([alpha[annotator_id] * beta]))[0])
                    p_correct = np.clip(p_correct, 1e-6, 1 - 1e-6)
                    p_wrong = (1.0 - p_correct) / (n_classes - 1)
                    contrib = np.full(n_classes, np.log(p_wrong))
                    contrib[answer] = np.log(p_correct)
                    log_post += contrib
                log_post -= log_post.max()
                post = np.exp(log_post)
                post /= post.sum()
                max_delta = max(max_delta, float(np.abs(post - posteriors[oid]).max()))
                posteriors[oid] = post

            # M-step: a few gradient ascent steps on alpha and log_beta.
            for _ in range(self.grad_steps):
                grad_alpha = np.zeros(n_annotators)
                grad_logbeta = np.zeros(len(object_ids))
                for oid in object_ids:
                    i = oid_index[oid]
                    beta = np.exp(log_beta[i])
                    for annotator_id, answer in answers[oid].items():
                        p_corr_soft = float(posteriors[oid][answer])
                        sig = float(_sigmoid(np.array([alpha[annotator_id] * beta]))[0])
                        # d/dz log p = (q_correct - sigma(z)) for the fused
                        # correct-vs-wrong Bernoulli with z = alpha * beta.
                        common = p_corr_soft - sig
                        grad_alpha[annotator_id] += common * beta
                        grad_logbeta[i] += common * alpha[annotator_id] * beta
                alpha += self.learning_rate * grad_alpha
                log_beta += self.learning_rate * grad_logbeta
                np.clip(alpha, -10.0, 10.0, out=alpha)
                np.clip(log_beta, -5.0, 5.0, out=log_beta)

            if max_delta < self.tol:
                converged = True
                break

        return InferenceResult(
            posteriors=posteriors,
            labels=self._posterior_to_labels(posteriors),
            iterations=iteration,
            converged=converged,
        )
