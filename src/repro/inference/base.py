"""Shared types for truth-inference algorithms.

All algorithms consume an :data:`AnswerMap` — ``{object_id: {annotator_id:
answer}}`` — which is exactly the per-object answer set y_i of the paper,
and produce an :class:`InferenceResult` with per-object posteriors, hard
labels, and (for EM-style methods) estimated annotator confusion matrices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.crowd.confusion import ConfusionMatrix
from repro.exceptions import ConfigurationError

AnswerMap = Dict[int, Dict[int, int]]


@dataclass
class InferenceResult:
    """Outcome of one truth-inference run."""

    posteriors: dict[int, np.ndarray]
    labels: dict[int, int]
    confusions: dict[int, ConfusionMatrix] = field(default_factory=dict)
    iterations: int = 0
    converged: bool = True

    def confidence(self, object_id: int) -> float:
        """Posterior probability of the inferred label for one object."""
        return float(self.posteriors[object_id].max())


class TruthInference:
    """Base class for aggregation algorithms."""

    def infer(self, answers: AnswerMap, n_classes: int,
              n_annotators: int) -> InferenceResult:
        """Aggregate ``answers`` into posteriors and hard labels."""
        raise NotImplementedError

    @staticmethod
    def _validate(answers: AnswerMap, n_classes: int, n_annotators: int) -> None:
        if n_classes < 2:
            raise ConfigurationError(f"n_classes must be >= 2, got {n_classes}")
        if n_annotators <= 0:
            raise ConfigurationError(
                f"n_annotators must be > 0, got {n_annotators}"
            )
        for object_id, votes in answers.items():
            if not votes:
                raise ConfigurationError(
                    f"object {object_id} has an empty answer set"
                )
            for annotator_id, answer in votes.items():
                if not 0 <= annotator_id < n_annotators:
                    raise ConfigurationError(
                        f"annotator id {annotator_id} out of range for object "
                        f"{object_id}"
                    )
                if not 0 <= answer < n_classes:
                    raise ConfigurationError(
                        f"answer {answer} out of range for object {object_id}"
                    )

    @staticmethod
    def _posterior_to_labels(posteriors: dict[int, np.ndarray]) -> dict[int, int]:
        return {oid: int(np.argmax(post)) for oid, post in posteriors.items()}
