"""CrowdRL joint truth inference (paper Section V).

Rather than treating the trained classifier as "just another annotator"
(which compounds annotator noise with model bias), the joint model runs one
EM over three coupled unknowns:

* the latent true labels ``y_i`` (E-step posterior ``q(y_i)``),
* each annotator's confusion matrix ``Pi^j`` (M-step soft counts), and
* the classifier parameters ``Theta`` (M-step: retrain on soft labels).

E-step (Eq. 8's posterior):  ``q(y_i = c)  propto  p(y_i = c | phi(x_i);
Theta_last) * prod_j p(yhat_i^j | y_i = c, Pi^j_last)``.

M-step confusion update uses soft counts (the paper's hard-indicator
formula in the soft-posterior limit), and expert rows are bounded below so
an EM run cannot demote an expert (Section V-A2; see DESIGN.md for how we
resolve the garbled printed formula).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.analysis.contracts import prob_simplex, row_stochastic, shaped
from repro.classifiers.base import Classifier
from repro.crowd.confusion import ConfusionMatrix
from repro.exceptions import ConfigurationError
from repro.inference.base import AnswerMap, InferenceResult, TruthInference
from repro.obs import get_registry, phase_timer


@shaped(counts="(n_annotators, n_classes, n_classes)")
@row_stochastic(result=True)
def _m_step_confusions(counts: np.ndarray) -> np.ndarray:
    """M-step confusion update: normalise soft counts row-wise (Eq. 7).

    ``counts[j, c, l]`` is the smoothed soft count of annotator ``j``
    answering ``l`` on objects of (posterior) class ``c``; the result is
    the stack of row-stochastic confusion matrices ``Pi^j``.
    """
    return counts / counts.sum(axis=-1, keepdims=True)


@shaped(clf_log="(n_objects, n_classes)", result="(n_objects, n_classes)")
@prob_simplex(result=True)
def _e_step_posteriors(
    answers: AnswerMap,
    object_ids: list,
    prior: np.ndarray,
    clf_log: np.ndarray,
    confusions: np.ndarray,
) -> np.ndarray:
    """E-step posterior ``q(y_i = c)`` for every object (Eq. 8).

    Combines the (possibly learned) class prior, the classifier's
    log-probabilities and each answering annotator's confusion column in
    log space, then normalises per object onto the probability simplex.
    """
    log_post = np.log(prior + 1e-12)[None, :] + clf_log
    for row, oid in enumerate(object_ids):
        for annotator_id, answer in answers[oid].items():
            log_post[row] += np.log(confusions[annotator_id][:, answer] + 1e-12)
    log_post -= log_post.max(axis=1, keepdims=True)
    post = np.exp(log_post)
    return post / post.sum(axis=1, keepdims=True)


class JointInference(TruthInference):
    """EM over classifier parameters, confusion matrices and truths.

    Parameters
    ----------
    classifier:
        Any :class:`~repro.classifiers.base.Classifier`; retrained on soft
        labels every M-step (its final fit is exposed as
        :attr:`fitted_classifier` and doubles as the framework's ``phi``).
    features:
        ``(n_objects, n_features)`` matrix indexed by object id.
    expert_mask:
        Boolean per-annotator vector; ``True`` rows get quality bounding.
    expert_floor:
        Minimum diagonal confusion entry for experts (``1 - epsilon`` in the
        paper's notation; default 0.9).
    classifier_weight:
        Multiplier on the classifier's log-likelihood contribution in the
        E-step.  ``1.0`` is the paper's model; ``0.0`` disables the
        classifier (useful for ablations).
    classifier_clip:
        The classifier's probabilities are clipped into
        ``[1-clip, clip]`` before entering the E-step, so the classifier
        contributes like one reasonably good annotator instead of an
        infinitely confident one.  Without this the EM feedback loop
        (classifier trained on posteriors that the classifier itself
        shaped) can amplify early mistakes — the very composite-bias
        problem Section V warns about.
    max_iter / tol / smoothing:
        EM controls, matching :class:`~repro.inference.dawid_skene.DawidSkene`.
    learn_prior:
        When False (default) the class prior stays uniform.  Learning the
        prior jointly with the classifier term invites a slow runaway —
        each EM sweep tilts the prior a little further toward the majority
        posterior until everything collapses onto one class — so it is off
        unless the caller knows the classes are genuinely imbalanced.
    """

    def __init__(
        self,
        classifier: Classifier,
        features: np.ndarray,
        *,
        expert_mask: Optional[Sequence[bool]] = None,
        expert_floor: float = 0.9,
        classifier_weight: float = 1.0,
        classifier_clip: float = 0.8,
        max_iter: int = 30,
        tol: float = 1e-4,
        smoothing: float = 1.0,
        refit_every: int = 1,
        learn_prior: bool = False,
    ) -> None:
        features = np.asarray(features, dtype=float)
        if features.ndim != 2:
            raise ConfigurationError(
                f"features must be 2-D, got shape {features.shape}"
            )
        if not 0.0 < expert_floor < 1.0:
            raise ConfigurationError(
                f"expert_floor must be in (0, 1), got {expert_floor}"
            )
        if classifier_weight < 0:
            raise ConfigurationError(
                f"classifier_weight must be >= 0, got {classifier_weight}"
            )
        if max_iter <= 0 or refit_every <= 0:
            raise ConfigurationError("max_iter and refit_every must be > 0")
        if not 0.5 < classifier_clip < 1.0:
            raise ConfigurationError(
                f"classifier_clip must be in (0.5, 1), got {classifier_clip}"
            )
        self.classifier_clip = classifier_clip
        self.classifier = classifier
        self.features = features
        self.expert_mask = (
            np.asarray(expert_mask, dtype=bool) if expert_mask is not None else None
        )
        self.expert_floor = expert_floor
        self.classifier_weight = classifier_weight
        self.max_iter = max_iter
        self.tol = tol
        self.smoothing = smoothing
        self.refit_every = refit_every
        self.learn_prior = learn_prior
        self.fitted_classifier: Optional[Classifier] = None

    # ------------------------------------------------------------------
    def infer(self, answers: AnswerMap, n_classes: int,
              n_annotators: int) -> InferenceResult:
        """Run the joint EM of Section V over ``answers`` (Eqs. 7-8)."""
        self._validate(answers, n_classes, n_annotators)
        if self.expert_mask is not None and self.expert_mask.size != n_annotators:
            raise ConfigurationError(
                f"expert_mask has {self.expert_mask.size} entries, expected "
                f"{n_annotators}"
            )
        object_ids = sorted(answers)
        if not object_ids:
            return InferenceResult(posteriors={}, labels={})
        for oid in object_ids:
            if not 0 <= oid < self.features.shape[0]:
                raise ConfigurationError(
                    f"object id {oid} has no feature row (features cover "
                    f"{self.features.shape[0]} objects)"
                )

        x = self.features[object_ids]

        # ---- Initialise q(y) with majority voting ----
        post = np.zeros((len(object_ids), n_classes))
        for row, oid in enumerate(object_ids):
            for answer in answers[oid].values():
                post[row, answer] += 1
        post /= post.sum(axis=1, keepdims=True)

        confusions = np.full(
            (n_annotators, n_classes, n_classes), 1.0 / n_classes
        )
        prior = np.full(n_classes, 1.0 / n_classes)
        clf_log = np.zeros((len(object_ids), n_classes))  # classifier term

        converged = False
        iteration = 0
        for iteration in range(1, self.max_iter + 1):
            # ---- M-step ----
            with phase_timer("infer.m_step"):
                # (a) Annotator confusion matrices from soft counts.
                counts = np.full(
                    (n_annotators, n_classes, n_classes), self.smoothing
                )
                prior_mass = np.full(n_classes, self.smoothing)
                for row, oid in enumerate(object_ids):
                    prior_mass += post[row]
                    for annotator_id, answer in answers[oid].items():
                        counts[annotator_id, :, answer] += post[row]
                confusions = _m_step_confusions(counts)
                if self.learn_prior:
                    prior = prior_mass / prior_mass.sum()

                # (b) Expert-quality bounding (Section V-A2).
                if self.expert_mask is not None:
                    for j in range(n_annotators):
                        if self.expert_mask[j]:
                            bounded = ConfusionMatrix(
                                confusions[j]
                            ).with_quality_floor(self.expert_floor)
                            confusions[j] = bounded.matrix

            # (c) Retrain the classifier on the soft posteriors.
            if self.classifier_weight > 0 and iteration % self.refit_every == 0:
                with phase_timer("infer.refit"):
                    self.classifier.fit_soft(x, post.copy())
                    self.fitted_classifier = self.classifier
                    proba = np.clip(
                        self.classifier.predict_proba(x),
                        1.0 - self.classifier_clip,
                        self.classifier_clip,
                    )
                    clf_log = self.classifier_weight * np.log(proba)

            # ---- E-step ----
            with phase_timer("infer.e_step"):
                new_post = _e_step_posteriors(
                    answers, object_ids, prior, clf_log, confusions
                )
            max_delta = float(np.abs(new_post - post).max())
            post = new_post

            if max_delta < self.tol:
                converged = True
                break

        registry = get_registry()
        registry.inc("infer.em_sweeps", iteration)
        if converged:
            registry.inc("infer.em_converged")
        else:
            registry.inc("infer.em_hit_max_iter")

        posteriors = {oid: post[row] for row, oid in enumerate(object_ids)}
        seen = {
            j for oid in object_ids for j in answers[oid]
        }
        return InferenceResult(
            posteriors=posteriors,
            labels=self._posterior_to_labels(posteriors),
            confusions={j: ConfusionMatrix(confusions[j]) for j in seen},
            iterations=iteration,
            converged=converged,
        )
