"""Dawid–Skene expectation-maximisation truth inference.

The classic confusion-matrix EM [Dawid & Skene 1979; paper ref 48 surveys
it].  E-step: posterior over each object's true label given current
confusion matrices and class prior.  M-step: re-estimate confusion matrices
from soft counts and the prior from posterior mass.  DLTA and IDLE use this
as their inference component.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.crowd.confusion import ConfusionMatrix
from repro.exceptions import ConfigurationError
from repro.inference.base import AnswerMap, InferenceResult, TruthInference


class DawidSkene(TruthInference):
    """Confusion-matrix EM.

    Parameters
    ----------
    max_iter:
        Iteration cap for the EM loop.
    tol:
        Convergence threshold on the max-abs change of posteriors.
    smoothing:
        Laplace smoothing added to the soft confusion counts so no entry
        collapses to zero probability.
    class_prior:
        Optional fixed class prior; learned from posteriors when omitted.
    """

    def __init__(self, *, max_iter: int = 100, tol: float = 1e-5,
                 smoothing: float = 0.1,
                 class_prior: Optional[np.ndarray] = None) -> None:
        if max_iter <= 0:
            raise ConfigurationError(f"max_iter must be > 0, got {max_iter}")
        if tol <= 0:
            raise ConfigurationError(f"tol must be > 0, got {tol}")
        if smoothing < 0:
            raise ConfigurationError(f"smoothing must be >= 0, got {smoothing}")
        self.max_iter = max_iter
        self.tol = tol
        self.smoothing = smoothing
        self.class_prior = class_prior

    def infer(self, answers: AnswerMap, n_classes: int,
              n_annotators: int) -> InferenceResult:
        """Run Dawid-Skene EM over ``answers``."""
        self._validate(answers, n_classes, n_annotators)
        object_ids = sorted(answers)
        if not object_ids:
            return InferenceResult(posteriors={}, labels={})

        # Initialise posteriors with majority voting.
        posteriors = {}
        for oid in object_ids:
            counts = np.zeros(n_classes)
            for answer in answers[oid].values():
                counts[answer] += 1
            posteriors[oid] = counts / counts.sum()

        prior = (
            np.asarray(self.class_prior, dtype=float)
            if self.class_prior is not None
            else np.full(n_classes, 1.0 / n_classes)
        )
        confusions = [
            np.full((n_classes, n_classes), 1.0 / n_classes)
            for _ in range(n_annotators)
        ]

        converged = False
        iteration = 0
        for iteration in range(1, self.max_iter + 1):
            # M-step: soft confusion counts and prior.
            counts = [
                np.full((n_classes, n_classes), self.smoothing)
                for _ in range(n_annotators)
            ]
            prior_mass = np.full(n_classes, self.smoothing)
            for oid in object_ids:
                post = posteriors[oid]
                prior_mass += post
                for annotator_id, answer in answers[oid].items():
                    counts[annotator_id][:, answer] += post
            confusions = [c / c.sum(axis=1, keepdims=True) for c in counts]
            if self.class_prior is None:
                prior = prior_mass / prior_mass.sum()

            # E-step: posterior per object.
            max_delta = 0.0
            for oid in object_ids:
                log_post = np.log(prior + 1e-12)
                for annotator_id, answer in answers[oid].items():
                    log_post += np.log(confusions[annotator_id][:, answer] + 1e-12)
                log_post -= log_post.max()
                post = np.exp(log_post)
                post /= post.sum()
                max_delta = max(max_delta, float(np.abs(post - posteriors[oid]).max()))
                posteriors[oid] = post

            if max_delta < self.tol:
                converged = True
                break

        result_confusions = {
            j: ConfusionMatrix(confusions[j]) for j in range(n_annotators)
            if any(j in answers[oid] for oid in object_ids)
        }
        return InferenceResult(
            posteriors=posteriors,
            labels=self._posterior_to_labels(posteriors),
            confusions=result_confusions,
            iterations=iteration,
            converged=converged,
        )
