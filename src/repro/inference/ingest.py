"""Helpers for bringing external answer data into the inference API.

Users with their own crowdsourcing logs (e.g. a CSV of
``object, annotator, answer`` rows or a dense matrix with a sentinel for
"unanswered") can convert them to the :data:`~repro.inference.base.AnswerMap`
every inference algorithm consumes.
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.inference.base import AnswerMap


def answers_from_matrix(matrix: np.ndarray, *,
                        unanswered: int = -1) -> AnswerMap:
    """Convert a dense ``(n_objects, n_annotators)`` answer matrix.

    Entries equal to ``unanswered`` are skipped; objects with no answers do
    not appear in the result (inference algorithms require non-empty
    answer sets).
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ConfigurationError(
            f"answer matrix must be 2-D, got shape {matrix.shape}"
        )
    answers: AnswerMap = {}
    for i in range(matrix.shape[0]):
        row = matrix[i]
        votes = {
            int(j): int(row[j])
            for j in np.nonzero(row != unanswered)[0]
        }
        if votes:
            answers[i] = votes
    return answers


def answers_from_records(
    records: Iterable[Tuple[int, int, int]]
) -> AnswerMap:
    """Convert ``(object_id, annotator_id, answer)`` triples.

    Duplicate (object, annotator) pairs are rejected — they would silently
    overwrite one another.
    """
    answers: AnswerMap = {}
    for object_id, annotator_id, answer in records:
        object_id, annotator_id, answer = (
            int(object_id), int(annotator_id), int(answer)
        )
        if object_id < 0 or annotator_id < 0 or answer < 0:
            raise ConfigurationError(
                f"ids and answers must be >= 0, got "
                f"({object_id}, {annotator_id}, {answer})"
            )
        votes = answers.setdefault(object_id, {})
        if annotator_id in votes:
            raise ConfigurationError(
                f"duplicate record for object {object_id}, annotator "
                f"{annotator_id}"
            )
        votes[annotator_id] = answer
    return answers


def answers_to_matrix(answers: AnswerMap, n_objects: int, n_annotators: int,
                      *, unanswered: int = -1) -> np.ndarray:
    """Inverse of :func:`answers_from_matrix`."""
    if n_objects <= 0 or n_annotators <= 0:
        raise ConfigurationError("n_objects and n_annotators must be > 0")
    matrix = np.full((n_objects, n_annotators), unanswered, dtype=int)
    for object_id, votes in answers.items():
        if not 0 <= object_id < n_objects:
            raise ConfigurationError(
                f"object id {object_id} out of range [0, {n_objects})"
            )
        for annotator_id, answer in votes.items():
            if not 0 <= annotator_id < n_annotators:
                raise ConfigurationError(
                    f"annotator id {annotator_id} out of range "
                    f"[0, {n_annotators})"
                )
            matrix[object_id, annotator_id] = answer
    return matrix
