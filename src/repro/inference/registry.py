"""Name-based truth-inference registry.

``get("dawid_skene")`` returns a ready :class:`TruthInference` instance,
mirroring :mod:`repro.datasets.registry` — the string names are stable
identifiers for experiment configs, CLI flags and comparison scripts.
Constructor arguments pass through ``get`` as keyword arguments, so
algorithms with required state (``joint`` needs ``classifier`` and
``features``; ``weighted_majority`` needs ``weights``) stay reachable.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.exceptions import ConfigurationError
from repro.inference.base import TruthInference
from repro.inference.catd import CATDInference
from repro.inference.dawid_skene import DawidSkene
from repro.inference.glad import GladInference
from repro.inference.joint import JointInference
from repro.inference.majority import MajorityVote, WeightedMajorityVote
from repro.inference.pm import PMInference
from repro.inference.zencrowd import ZenCrowd

_REGISTRY: Dict[str, Callable[..., TruthInference]] = {
    "majority": MajorityVote,
    "weighted_majority": WeightedMajorityVote,
    "dawid_skene": DawidSkene,
    "pm": PMInference,
    "glad": GladInference,
    "zencrowd": ZenCrowd,
    "catd": CATDInference,
    "joint": JointInference,
}

#: Every registered truth-inference algorithm name, in substrate order.
INFERENCE_NAMES = tuple(_REGISTRY)


def get(name: str, **kwargs) -> TruthInference:
    """Instantiate a truth-inference algorithm by name (case-insensitive).

    ``kwargs`` forward to the algorithm's constructor, e.g.
    ``get("dawid_skene", max_iter=50)`` or
    ``get("joint", classifier=clf, features=x)``.
    """
    key = name.strip().lower()
    if key not in _REGISTRY:
        raise ConfigurationError(
            f"unknown inference algorithm {name!r}; available: "
            f"{', '.join(INFERENCE_NAMES)}"
        )
    return _REGISTRY[key](**kwargs)


__all__ = ["INFERENCE_NAMES", "get"]
