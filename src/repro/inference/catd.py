"""CATD-style confidence-aware truth inference.

Li et al.'s CATD ("Confidence-Aware Truth Discovery") observes that an
annotator who has answered only a handful of tasks should not receive an
extreme weight, however well those few answers agree with the consensus.
Weights are therefore derived from the *upper confidence bound* of the
annotator's error rate: a chi-squared-style inflation that shrinks with
the number of answers.  Evaluated in the survey the paper builds on
(ref [48]) alongside MV/DS/PM/GLAD/ZenCrowd.

This implementation follows the PM-style alternation (truth update by
weighted vote, weight update from errors) but replaces the raw error rate
with its small-sample-inflated bound.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.inference.base import AnswerMap, InferenceResult, TruthInference


class CATDInference(TruthInference):
    """Weighted voting with small-sample-aware annotator weights."""

    def __init__(self, *, max_iter: int = 100, tol: float = 1e-6,
                 confidence_z: float = 1.0,
                 regulariser: float = 1e-3) -> None:
        if max_iter <= 0:
            raise ConfigurationError(f"max_iter must be > 0, got {max_iter}")
        if confidence_z < 0:
            raise ConfigurationError(
                f"confidence_z must be >= 0, got {confidence_z}"
            )
        if not 0 < regulariser < 0.5:
            raise ConfigurationError(
                f"regulariser must be in (0, 0.5), got {regulariser}"
            )
        self.max_iter = max_iter
        self.tol = tol
        self.confidence_z = confidence_z
        self.regulariser = regulariser
        #: Final per-annotator weights (populated by :meth:`infer`).
        self.weights: dict[int, float] = {}

    def infer(self, answers: AnswerMap, n_classes: int,
              n_annotators: int) -> InferenceResult:
        """Run CATD's confidence-aware iterative weighting over ``answers``."""
        self._validate(answers, n_classes, n_annotators)
        object_ids = sorted(answers)
        if not object_ids:
            return InferenceResult(posteriors={}, labels={})

        weights = np.ones(n_annotators)
        posteriors: dict[int, np.ndarray] = {}
        converged = False
        iteration = 0

        n_answers = np.zeros(n_annotators)
        for oid in object_ids:
            for j in answers[oid]:
                n_answers[j] += 1

        for iteration in range(1, self.max_iter + 1):
            for oid in object_ids:
                scores = np.zeros(n_classes)
                for annotator_id, answer in answers[oid].items():
                    scores[answer] += weights[annotator_id]
                total = scores.sum()
                posteriors[oid] = (
                    scores / total if total > 0
                    else np.full(n_classes, 1.0 / n_classes)
                )
            labels = self._posterior_to_labels(posteriors)

            new_weights = weights.copy()
            for j in range(n_annotators):
                if n_answers[j] == 0:
                    continue
                n_wrong = sum(
                    1 for oid in object_ids
                    if j in answers[oid] and answers[oid][j] != labels[oid]
                )
                err = n_wrong / n_answers[j]
                # Upper confidence bound on the error rate: the fewer the
                # answers, the larger the inflation — CATD's core idea.
                bound = err + self.confidence_z * np.sqrt(
                    err * (1.0 - err) / n_answers[j]
                    + 1.0 / (2.0 * n_answers[j])
                )
                bound = np.clip(bound, self.regulariser, 1.0 - self.regulariser)
                new_weights[j] = -np.log(bound)

            delta = float(np.abs(new_weights - weights).max())
            weights = new_weights
            if delta < self.tol:
                converged = True
                break

        self.weights = {
            j: float(weights[j]) for j in range(n_annotators)
            if n_answers[j] > 0
        }
        return InferenceResult(
            posteriors=posteriors,
            labels=self._posterior_to_labels(posteriors),
            iterations=iteration,
            converged=converged,
        )
