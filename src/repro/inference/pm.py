"""The PM (point-estimation / minimax entropy-style weighted) algorithm.

Paper reference [48] (Zheng et al., "Truth inference in crowdsourcing: Is
the problem solved?", PVLDB 2017) describes PM as iteratively alternating
between (a) estimating each object's truth as the weight-maximising label
and (b) re-estimating each annotator's weight from its distance to the
current truths, until both converge.  The Hybrid baseline and the paper's
M3 ablation use PM as their truth-inference component.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.inference.base import AnswerMap, InferenceResult, TruthInference


class PMInference(TruthInference):
    """Iterative weighted voting with distance-based annotator weights.

    Annotator weight update follows the PM scheme: ``w_j = -log(err_j)``
    where ``err_j`` is the (regularised) fraction of annotator j's answers
    that disagree with the current truth estimates.
    """

    def __init__(self, *, max_iter: int = 100, tol: float = 1e-6,
                 regulariser: float = 1e-3) -> None:
        if max_iter <= 0:
            raise ConfigurationError(f"max_iter must be > 0, got {max_iter}")
        if tol <= 0:
            raise ConfigurationError(f"tol must be > 0, got {tol}")
        if not 0 < regulariser < 0.5:
            raise ConfigurationError(
                f"regulariser must be in (0, 0.5), got {regulariser}"
            )
        self.max_iter = max_iter
        self.tol = tol
        self.regulariser = regulariser

    def infer(self, answers: AnswerMap, n_classes: int,
              n_annotators: int) -> InferenceResult:
        """Run PM's distance-based iterative weighting over ``answers``."""
        self._validate(answers, n_classes, n_annotators)
        object_ids = sorted(answers)
        if not object_ids:
            return InferenceResult(posteriors={}, labels={})

        weights = np.ones(n_annotators)
        posteriors: dict[int, np.ndarray] = {}
        converged = False
        iteration = 0

        for iteration in range(1, self.max_iter + 1):
            # Truth update: weighted votes.
            for oid in object_ids:
                scores = np.zeros(n_classes)
                for annotator_id, answer in answers[oid].items():
                    scores[answer] += weights[annotator_id]
                total = scores.sum()
                posteriors[oid] = (
                    scores / total if total > 0
                    else np.full(n_classes, 1.0 / n_classes)
                )
            labels = self._posterior_to_labels(posteriors)

            # Weight update: w_j = -log(regularised error rate).
            new_weights = weights.copy()
            for j in range(n_annotators):
                n_seen = 0
                n_wrong = 0
                for oid in object_ids:
                    if j in answers[oid]:
                        n_seen += 1
                        if answers[oid][j] != labels[oid]:
                            n_wrong += 1
                if n_seen == 0:
                    continue
                err = np.clip(
                    n_wrong / n_seen, self.regulariser, 1.0 - self.regulariser
                )
                new_weights[j] = -np.log(err)

            delta = float(np.abs(new_weights - weights).max())
            weights = new_weights
            if delta < self.tol:
                converged = True
                break

        return InferenceResult(
            posteriors=posteriors,
            labels=self._posterior_to_labels(posteriors),
            iterations=iteration,
            converged=converged,
        )
