"""Truth inference: aggregating noisy answers into true labels.

Implements the aggregation algorithms the paper uses or compares against:

* :class:`MajorityVote` / weighted variant — the naive baseline (Section V-A1).
* :class:`DawidSkene` — classic confusion-matrix EM, used by DLTA/IDLE.
* :class:`PMInference` — the PM algorithm of Zheng et al. [48], used by the
  Hybrid baseline and the M3 ablation.
* :class:`GladInference` — one-parameter-per-annotator EM with task
  difficulty, included for completeness of the inference substrate.
* :class:`JointInference` — the paper's contribution (Section V): EM over
  classifier parameters, annotator confusion matrices and latent truths
  simultaneously, with expert-quality bounding.
"""

from repro.inference.base import AnswerMap, InferenceResult, TruthInference
from repro.inference.catd import CATDInference
from repro.inference.dawid_skene import DawidSkene
from repro.inference.glad import GladInference
from repro.inference.joint import JointInference
from repro.inference.majority import MajorityVote, WeightedMajorityVote
from repro.inference.ingest import (
    answers_from_matrix,
    answers_from_records,
    answers_to_matrix,
)
from repro.inference.pm import PMInference
from repro.inference.registry import INFERENCE_NAMES, get
from repro.inference.zencrowd import ZenCrowd

__all__ = [
    "INFERENCE_NAMES",
    "get",
    "answers_from_matrix",
    "answers_from_records",
    "answers_to_matrix",
    "AnswerMap",
    "InferenceResult",
    "TruthInference",
    "MajorityVote",
    "WeightedMajorityVote",
    "DawidSkene",
    "PMInference",
    "GladInference",
    "ZenCrowd",
    "CATDInference",
    "JointInference",
]
