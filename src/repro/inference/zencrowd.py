"""ZenCrowd-style EM: one reliability scalar per annotator.

Demartini et al.'s ZenCrowd models each annotator with a single reliability
``p_j`` (probability of answering correctly; wrong answers uniform over the
other classes) instead of a full confusion matrix.  It sits between
majority voting and Dawid-Skene: more robust than DS at low redundancy
(far fewer parameters), less expressive with class-dependent biases.
Included because the truth-inference survey the paper builds on (ref [48])
evaluates it alongside MV/DS/PM/GLAD.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.inference.base import AnswerMap, InferenceResult, TruthInference


class ZenCrowd(TruthInference):
    """Single-reliability EM."""

    def __init__(self, *, max_iter: int = 100, tol: float = 1e-6,
                 initial_reliability: float = 0.7,
                 smoothing: float = 1.0) -> None:
        if max_iter <= 0:
            raise ConfigurationError(f"max_iter must be > 0, got {max_iter}")
        if not 0.0 < initial_reliability < 1.0:
            raise ConfigurationError(
                f"initial_reliability must be in (0, 1), got "
                f"{initial_reliability}"
            )
        if smoothing < 0:
            raise ConfigurationError(f"smoothing must be >= 0, got {smoothing}")
        self.max_iter = max_iter
        self.tol = tol
        self.initial_reliability = initial_reliability
        self.smoothing = smoothing
        #: Final per-annotator reliabilities (populated by :meth:`infer`).
        self.reliabilities: dict[int, float] = {}

    def infer(self, answers: AnswerMap, n_classes: int,
              n_annotators: int) -> InferenceResult:
        """Run ZenCrowd's reliability EM over ``answers``."""
        self._validate(answers, n_classes, n_annotators)
        object_ids = sorted(answers)
        if not object_ids:
            return InferenceResult(posteriors={}, labels={})

        reliability = np.full(n_annotators, self.initial_reliability)
        posteriors: dict[int, np.ndarray] = {}
        converged = False
        iteration = 0

        for iteration in range(1, self.max_iter + 1):
            # E-step: posterior per object from per-annotator reliabilities.
            for oid in object_ids:
                log_post = np.zeros(n_classes)
                for annotator_id, answer in answers[oid].items():
                    p = np.clip(reliability[annotator_id], 1e-6, 1 - 1e-6)
                    wrong = (1.0 - p) / (n_classes - 1)
                    contrib = np.full(n_classes, np.log(wrong))
                    contrib[answer] = np.log(p)
                    log_post += contrib
                log_post -= log_post.max()
                post = np.exp(log_post)
                posteriors[oid] = post / post.sum()

            # M-step: reliability = expected fraction of correct answers.
            correct_mass = np.full(n_annotators, self.smoothing)
            total_mass = np.full(n_annotators, 2.0 * self.smoothing)
            for oid in object_ids:
                post = posteriors[oid]
                for annotator_id, answer in answers[oid].items():
                    correct_mass[annotator_id] += post[answer]
                    total_mass[annotator_id] += 1.0
            new_reliability = correct_mass / total_mass
            delta = float(np.abs(new_reliability - reliability).max())
            reliability = new_reliability
            if delta < self.tol:
                converged = True
                break

        self.reliabilities = {
            j: float(reliability[j]) for j in range(n_annotators)
            if any(j in answers[oid] for oid in object_ids)
        }
        return InferenceResult(
            posteriors=posteriors,
            labels=self._posterior_to_labels(posteriors),
            iterations=iteration,
            converged=converged,
        )
