"""A sequential feed-forward network with manual backpropagation."""

from __future__ import annotations

import copy
from typing import Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.nn.layers import Dense, Layer, ReLU, Tanh
from repro.nn.losses import Loss
from repro.nn.optimizers import Optimizer
from repro.utils.rng import SeedLike, as_rng


class Network:
    """An ordered stack of layers trained by backpropagation.

    The class is deliberately small: ``forward`` / ``backward`` plumbing, a
    single-batch ``train_batch`` step, weight get/set for target-network
    synchronisation (DQN), and deep copying.
    """

    def __init__(self, layers: Sequence[Layer]) -> None:
        if not layers:
            raise ConfigurationError("Network needs at least one layer")
        self.layers = list(layers)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def mlp(
        cls,
        in_features: int,
        hidden: Sequence[int],
        out_features: int,
        *,
        activation: str = "relu",
        rng: SeedLike = None,
    ) -> "Network":
        """Build a plain MLP: Dense/activation pairs then a linear head."""
        activations = {"relu": ReLU, "tanh": Tanh}
        if activation not in activations:
            raise ConfigurationError(
                f"unknown activation {activation!r}; choose from {sorted(activations)}"
            )
        rng = as_rng(rng)
        sizes = [in_features, *hidden]
        layers: list[Layer] = []
        for fan_in, fan_out in zip(sizes, sizes[1:]):
            layers.append(Dense(fan_in, fan_out, rng=rng))
            layers.append(activations[activation]())
        layers.append(Dense(sizes[-1], out_features, rng=rng))
        return cls(layers)

    # ------------------------------------------------------------------
    # Forward / backward
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the layer stack; 1-D input is promoted to a single row."""
        out = np.asarray(x, dtype=float)
        if out.ndim == 1:
            out = out[None, :]
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    __call__ = forward

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backpropagate through the stack, accumulating parameter grads."""
        grad = np.asarray(grad_out, dtype=float)
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def zero_grads(self) -> None:
        for layer in self.layers:
            layer.zero_grads()

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def params_and_grads(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """Flat ``(param, grad)`` pairs across all layers, in layer order."""
        pairs: list[tuple[np.ndarray, np.ndarray]] = []
        for layer in self.layers:
            params, grads = layer.params, layer.grads
            pairs.extend((params[name], grads[name]) for name in params)
        return pairs

    def train_batch(
        self,
        x: np.ndarray,
        target: np.ndarray,
        loss: Loss,
        optimizer: Optimizer,
        sample_weights: Optional[np.ndarray] = None,
    ) -> float:
        """One forward/backward/update step; returns the batch loss."""
        self.zero_grads()
        pred = self.forward(x, training=True)
        value = loss.value(pred, target, sample_weights)
        self.backward(loss.grad(pred, target, sample_weights))
        optimizer.step(self.params_and_grads())
        return value

    # ------------------------------------------------------------------
    # Weight management (target-network sync, checkpointing)
    # ------------------------------------------------------------------
    def get_weights(self) -> list[dict[str, np.ndarray]]:
        """Copies of every layer's parameters, in layer order."""
        return [
            {name: param.copy() for name, param in layer.params.items()}
            for layer in self.layers
        ]

    def set_weights(self, weights: list[dict[str, np.ndarray]]) -> None:
        """Load parameter dicts produced by :meth:`get_weights`."""
        if len(weights) != len(self.layers):
            raise ConfigurationError(
                f"expected weights for {len(self.layers)} layers, got {len(weights)}"
            )
        for layer, layer_weights in zip(self.layers, weights):
            params = layer.params
            if set(params) != set(layer_weights):
                raise ConfigurationError(
                    f"weight keys {sorted(layer_weights)} do not match layer "
                    f"params {sorted(params)}"
                )
            for name, value in layer_weights.items():
                if params[name].shape != value.shape:
                    raise ConfigurationError(
                        f"shape mismatch for {name}: {params[name].shape} "
                        f"vs {value.shape}"
                    )
                params[name][...] = value

    def clone(self) -> "Network":
        """Deep copy (fresh parameter arrays), e.g. for a DQN target network."""
        return copy.deepcopy(self)

    def n_parameters(self) -> int:
        return sum(p.size for layer in self.layers for p in layer.params.values())
