"""First-order optimizers for the numpy neural-net substrate."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError


class Optimizer:
    """Base optimizer: updates a list of (param, grad) pairs in place."""

    def __init__(self, learning_rate: float) -> None:
        if learning_rate <= 0:
            raise ConfigurationError(f"learning_rate must be > 0, got {learning_rate}")
        self.learning_rate = learning_rate

    def step(self, params_and_grads: list[tuple[np.ndarray, np.ndarray]]) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.0,
                 weight_decay: float = 0.0) -> None:
        super().__init__(learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0.0:
            raise ConfigurationError(f"weight_decay must be >= 0, got {weight_decay}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: dict[int, np.ndarray] = {}

    def step(self, params_and_grads: list[tuple[np.ndarray, np.ndarray]]) -> None:
        for param, grad in params_and_grads:
            update = grad + self.weight_decay * param
            if self.momentum > 0.0:
                vel = self._velocity.setdefault(id(param), np.zeros_like(param))
                vel *= self.momentum
                vel += update
                update = vel
            param -= self.learning_rate * update


class RMSProp(Optimizer):
    """RMSProp, the optimizer used in the original DQN paper."""

    def __init__(self, learning_rate: float = 0.001, decay: float = 0.99,
                 eps: float = 1e-8) -> None:
        super().__init__(learning_rate)
        if not 0.0 < decay < 1.0:
            raise ConfigurationError(f"decay must be in (0, 1), got {decay}")
        self.decay = decay
        self.eps = eps
        self._avg_sq: dict[int, np.ndarray] = {}

    def step(self, params_and_grads: list[tuple[np.ndarray, np.ndarray]]) -> None:
        for param, grad in params_and_grads:
            avg = self._avg_sq.setdefault(id(param), np.zeros_like(param))
            avg *= self.decay
            avg += (1.0 - self.decay) * grad ** 2
            param -= self.learning_rate * grad / (np.sqrt(avg) + self.eps)


class Adam(Optimizer):
    """Adam with bias correction."""

    def __init__(self, learning_rate: float = 0.001, beta1: float = 0.9,
                 beta2: float = 0.999, eps: float = 1e-8) -> None:
        super().__init__(learning_rate)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ConfigurationError(
                f"betas must be in [0, 1), got ({beta1}, {beta2})"
            )
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: dict[int, np.ndarray] = {}
        self._v: dict[int, np.ndarray] = {}
        self._t = 0

    def step(self, params_and_grads: list[tuple[np.ndarray, np.ndarray]]) -> None:
        """Apply one bias-corrected Adam update to every (param, grad) pair."""
        self._t += 1
        bc1 = 1.0 - self.beta1 ** self._t
        bc2 = 1.0 - self.beta2 ** self._t
        for param, grad in params_and_grads:
            m = self._m.setdefault(id(param), np.zeros_like(param))
            v = self._v.setdefault(id(param), np.zeros_like(param))
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad ** 2
            m_hat = m / bc1
            v_hat = v / bc2
            param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.eps)
