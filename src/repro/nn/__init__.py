"""Minimal dense neural-network substrate on numpy.

The paper implements its classifier ``phi`` and the Deep Q-Network with
PyTorch; this environment has no deep-learning framework available, so the
library ships its own small, fully tested substrate: dense layers with
manual backpropagation, standard activations, losses, and first-order
optimizers.  Only what the paper needs — feed-forward nets — is implemented,
but it is implemented completely (training loop, early stopping, weight
serialization).
"""

from repro.nn.initializers import he_init, xavier_init, zeros_init
from repro.nn.layers import Dense, Dropout, Layer, ReLU, Sigmoid, Softmax, Tanh
from repro.nn.losses import (
    HuberLoss,
    Loss,
    MeanSquaredError,
    SoftmaxCrossEntropy,
)
from repro.nn.network import Network
from repro.nn.optimizers import SGD, Adam, Optimizer, RMSProp
from repro.nn.train import TrainResult, train_network

__all__ = [
    "he_init",
    "xavier_init",
    "zeros_init",
    "Layer",
    "Dense",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Softmax",
    "Dropout",
    "Loss",
    "MeanSquaredError",
    "SoftmaxCrossEntropy",
    "HuberLoss",
    "Network",
    "Optimizer",
    "SGD",
    "RMSProp",
    "Adam",
    "TrainResult",
    "train_network",
]
