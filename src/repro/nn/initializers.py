"""Weight initialization schemes for dense layers."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, as_rng


def xavier_init(fan_in: int, fan_out: int, rng: SeedLike = None) -> np.ndarray:
    """Glorot/Xavier uniform initialization, suited to tanh/sigmoid layers."""
    rng = as_rng(rng)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def he_init(fan_in: int, fan_out: int, rng: SeedLike = None) -> np.ndarray:
    """He normal initialization, suited to ReLU layers."""
    rng = as_rng(rng)
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=(fan_in, fan_out))


def zeros_init(fan_in: int, fan_out: int, rng: SeedLike = None) -> np.ndarray:
    """All-zero initialization (used for biases and in tests)."""
    del rng  # deterministic by construction
    return np.zeros((fan_in, fan_out))
