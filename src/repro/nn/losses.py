"""Loss functions with analytic gradients.

Each loss exposes ``value(pred, target)`` and ``grad(pred, target)`` where
``grad`` is the derivative of the *mean* loss w.r.t. ``pred``.  All losses
support optional per-sample weights, which the CrowdRL joint inference model
uses to train the classifier on soft posterior labels.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

_EPS = 1e-12


def _weights(weights: Optional[np.ndarray], n: int) -> np.ndarray:
    if weights is None:
        return np.full(n, 1.0 / n)
    w = np.asarray(weights, dtype=float)
    if w.shape != (n,):
        raise ValueError(f"weights must have shape ({n},), got {w.shape}")
    total = w.sum()
    if total <= 0:
        raise ValueError("sample weights must have positive sum")
    return w / total


class Loss:
    """Base class for losses."""

    def value(self, pred: np.ndarray, target: np.ndarray,
              weights: Optional[np.ndarray] = None) -> float:
        raise NotImplementedError

    def grad(self, pred: np.ndarray, target: np.ndarray,
             weights: Optional[np.ndarray] = None) -> np.ndarray:
        raise NotImplementedError


class MeanSquaredError(Loss):
    """0.5 * mean squared error (the 0.5 cancels in the gradient)."""

    def value(self, pred, target, weights=None) -> float:
        """Weighted 0.5-MSE over the batch."""
        pred = np.asarray(pred, float)
        target = np.asarray(target, float)
        w = _weights(weights, pred.shape[0])
        per_sample = 0.5 * ((pred - target) ** 2).sum(axis=1)
        return float((w * per_sample).sum())

    def grad(self, pred, target, weights=None) -> np.ndarray:
        """Gradient of the weighted MSE w.r.t. predictions."""
        pred = np.asarray(pred, float)
        target = np.asarray(target, float)
        w = _weights(weights, pred.shape[0])
        return (pred - target) * w[:, None]


class HuberLoss(Loss):
    """Huber loss, the standard choice for stabilising DQN TD errors."""

    def __init__(self, delta: float = 1.0) -> None:
        if delta <= 0:
            raise ValueError(f"delta must be > 0, got {delta}")
        self.delta = delta

    def value(self, pred, target, weights=None) -> float:
        """Weighted Huber loss over the batch."""
        pred = np.asarray(pred, float)
        target = np.asarray(target, float)
        w = _weights(weights, pred.shape[0])
        err = pred - target
        small = np.abs(err) <= self.delta
        per_elem = np.where(
            small, 0.5 * err ** 2, self.delta * (np.abs(err) - 0.5 * self.delta)
        )
        return float((w * per_elem.sum(axis=1)).sum())

    def grad(self, pred, target, weights=None) -> np.ndarray:
        """Gradient of the Huber loss: the clipped error, weighted."""
        pred = np.asarray(pred, float)
        target = np.asarray(target, float)
        w = _weights(weights, pred.shape[0])
        err = pred - target
        clipped = np.clip(err, -self.delta, self.delta)
        return clipped * w[:, None]


class SoftmaxCrossEntropy(Loss):
    """Softmax + cross-entropy fused for stability.

    ``pred`` are raw logits; ``target`` is either a matrix of soft label
    distributions (rows sum to one) or a 1-D vector of integer class ids.
    The gradient w.r.t. the logits is the familiar ``softmax(pred) - target``.
    """

    @staticmethod
    def _softmax(logits: np.ndarray) -> np.ndarray:
        shifted = logits - logits.max(axis=1, keepdims=True)
        ex = np.exp(shifted)
        return ex / ex.sum(axis=1, keepdims=True)

    @staticmethod
    def _to_soft(target: np.ndarray, n_classes: int) -> np.ndarray:
        target = np.asarray(target)
        if target.ndim == 1:
            onehot = np.zeros((target.shape[0], n_classes))
            onehot[np.arange(target.shape[0]), target.astype(int)] = 1.0
            return onehot
        return np.asarray(target, dtype=float)

    def value(self, pred, target, weights=None) -> float:
        """Weighted cross-entropy of softmaxed logits against targets."""
        logits = np.asarray(pred, float)
        soft = self._to_soft(target, logits.shape[1])
        w = _weights(weights, logits.shape[0])
        log_probs = np.log(self._softmax(logits) + _EPS)
        per_sample = -(soft * log_probs).sum(axis=1)
        return float((w * per_sample).sum())

    def grad(self, pred, target, weights=None) -> np.ndarray:
        """Gradient w.r.t. logits: ``softmax(pred) - target``, weighted."""
        logits = np.asarray(pred, float)
        soft = self._to_soft(target, logits.shape[1])
        w = _weights(weights, logits.shape[0])
        return (self._softmax(logits) - soft) * w[:, None]
