"""Mini-batch training loop with early stopping."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.nn.losses import Loss
from repro.nn.network import Network
from repro.nn.optimizers import Optimizer
from repro.utils.rng import SeedLike, as_rng


@dataclass
class TrainResult:
    """Outcome of :func:`train_network`."""

    epochs_run: int
    final_loss: float
    loss_history: list[float] = field(default_factory=list)
    stopped_early: bool = False


def train_network(
    network: Network,
    x: np.ndarray,
    target: np.ndarray,
    loss: Loss,
    optimizer: Optimizer,
    *,
    epochs: int = 50,
    batch_size: int = 32,
    sample_weights: Optional[np.ndarray] = None,
    patience: Optional[int] = None,
    min_delta: float = 1e-5,
    shuffle: bool = True,
    rng: SeedLike = None,
) -> TrainResult:
    """Train ``network`` on ``(x, target)`` by shuffled mini-batch SGD.

    ``patience`` enables early stopping: training halts once the epoch loss
    has not improved by at least ``min_delta`` for ``patience`` consecutive
    epochs.  Per-sample ``sample_weights`` flow through to the loss, which
    is how the joint inference model trains on soft posterior labels.
    """
    x = np.asarray(x, dtype=float)
    target = np.asarray(target)
    if x.ndim != 2:
        raise ConfigurationError(f"x must be 2-D, got shape {x.shape}")
    n = x.shape[0]
    if target.shape[0] != n:
        raise ConfigurationError(
            f"x has {n} rows but target has {target.shape[0]}"
        )
    if epochs <= 0:
        raise ConfigurationError(f"epochs must be > 0, got {epochs}")
    if batch_size <= 0:
        raise ConfigurationError(f"batch_size must be > 0, got {batch_size}")
    if sample_weights is not None:
        sample_weights = np.asarray(sample_weights, dtype=float)
        if sample_weights.shape != (n,):
            raise ConfigurationError(
                f"sample_weights must have shape ({n},), got {sample_weights.shape}"
            )

    rng = as_rng(rng)
    history: list[float] = []
    best = np.inf
    stale = 0
    stopped_early = False

    for epoch in range(epochs):
        order = rng.permutation(n) if shuffle else np.arange(n)
        epoch_loss = 0.0
        n_batches = 0
        for start in range(0, n, batch_size):
            idx = order[start:start + batch_size]
            batch_w = sample_weights[idx] if sample_weights is not None else None
            epoch_loss += network.train_batch(
                x[idx], target[idx], loss, optimizer, batch_w
            )
            n_batches += 1
        epoch_loss /= max(n_batches, 1)
        history.append(epoch_loss)

        if patience is not None:
            if epoch_loss < best - min_delta:
                best = epoch_loss
                stale = 0
            else:
                stale += 1
                if stale >= patience:
                    stopped_early = True
                    break

    return TrainResult(
        epochs_run=len(history),
        final_loss=history[-1] if history else float("nan"),
        loss_history=history,
        stopped_early=stopped_early,
    )
