"""Feed-forward layers with manual backpropagation.

Every layer exposes ``forward(x, training)`` and ``backward(grad_out)``;
``backward`` must be called with the gradient of the loss w.r.t. the layer's
output and returns the gradient w.r.t. its input, accumulating parameter
gradients in ``grads`` along the way.  Shapes are always ``(batch, features)``.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.nn.initializers import he_init, zeros_init
from repro.utils.rng import SeedLike, as_rng


class Layer:
    """Base class: a differentiable transformation with optional parameters."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    @property
    def params(self) -> dict[str, np.ndarray]:
        """Trainable parameters by name (empty for parameter-free layers)."""
        return {}

    @property
    def grads(self) -> dict[str, np.ndarray]:
        """Gradients matching :attr:`params`, populated by ``backward``."""
        return {}

    def zero_grads(self) -> None:
        for g in self.grads.values():
            g.fill(0.0)


class Dense(Layer):
    """Affine layer ``y = x @ W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        weight_init: Callable[[int, int, SeedLike], np.ndarray] = he_init,
        rng: SeedLike = None,
    ) -> None:
        if in_features <= 0 or out_features <= 0:
            raise ConfigurationError(
                f"Dense needs positive sizes, got ({in_features}, {out_features})"
            )
        rng = as_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = np.asarray(weight_init(in_features, out_features, rng), float)
        self.bias = np.zeros(out_features)
        self._grad_w = np.zeros_like(self.weight)
        self._grad_b = np.zeros_like(self.bias)
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Affine transform of a ``(batch, in_features)`` input."""
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ConfigurationError(
                f"Dense expected input (batch, {self.in_features}), got {x.shape}"
            )
        self._x = x if training else None
        return x @ self.weight + self.bias

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Accumulate weight/bias gradients; return the input gradient."""
        if self._x is None:
            raise RuntimeError("backward called before a training-mode forward")
        self._grad_w += self._x.T @ grad_out
        self._grad_b += grad_out.sum(axis=0)
        return grad_out @ self.weight.T

    @property
    def params(self) -> dict[str, np.ndarray]:
        return {"weight": self.weight, "bias": self.bias}

    @property
    def grads(self) -> dict[str, np.ndarray]:
        return {"weight": self._grad_w, "bias": self._grad_b}


class ReLU(Layer):
    """Rectified linear activation."""

    def __init__(self) -> None:
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Zero out negative activations."""
        x = np.asarray(x, dtype=float)
        mask = x > 0
        self._mask = mask if training else None
        return x * mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Pass gradients only where the forward input was positive."""
        if self._mask is None:
            raise RuntimeError("backward called before a training-mode forward")
        return grad_out * self._mask


class Tanh(Layer):
    """Hyperbolic tangent activation."""

    def __init__(self) -> None:
        self._out: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Apply elementwise tanh."""
        out = np.tanh(np.asarray(x, dtype=float))
        self._out = out if training else None
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Scale gradients by ``1 - tanh(x)^2``."""
        if self._out is None:
            raise RuntimeError("backward called before a training-mode forward")
        return grad_out * (1.0 - self._out ** 2)


class Sigmoid(Layer):
    """Logistic sigmoid activation (the paper's classifier output layer)."""

    def __init__(self) -> None:
        self._out: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Numerically stable elementwise logistic sigmoid."""
        x = np.asarray(x, dtype=float)
        out = np.empty_like(x)
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        out[~pos] = ex / (1.0 + ex)
        self._out = out if training else None
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Scale gradients by ``sigmoid(x) * (1 - sigmoid(x))``."""
        if self._out is None:
            raise RuntimeError("backward called before a training-mode forward")
        return grad_out * self._out * (1.0 - self._out)


class Softmax(Layer):
    """Row-wise softmax.

    For classification prefer :class:`repro.nn.losses.SoftmaxCrossEntropy`,
    which fuses softmax with the loss for numerical stability; this layer
    exists for inference-time probability outputs and for Q-value weighting.
    """

    def __init__(self) -> None:
        self._out: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Row-wise softmax over logits."""
        x = np.asarray(x, dtype=float)
        shifted = x - x.max(axis=1, keepdims=True)
        ex = np.exp(shifted)
        out = ex / ex.sum(axis=1, keepdims=True)
        self._out = out if training else None
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Jacobian-vector product of the row-wise softmax."""
        if self._out is None:
            raise RuntimeError("backward called before a training-mode forward")
        s = self._out
        dot = (grad_out * s).sum(axis=1, keepdims=True)
        return s * (grad_out - dot)


class Dropout(Layer):
    """Inverted dropout; a no-op outside training mode."""

    def __init__(self, rate: float, rng: SeedLike = None) -> None:
        if not 0.0 <= rate < 1.0:
            raise ConfigurationError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = as_rng(rng)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Randomly drop units (training only), rescaled by ``1/keep``."""
        x = np.asarray(x, dtype=float)
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Propagate gradients through the surviving units."""
        if self._mask is None:
            return grad_out
        return grad_out * self._mask
