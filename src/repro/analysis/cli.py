"""Command-line front end: ``python -m repro.analysis``.

Subcommands::

    python -m repro.analysis lint src            # exit 1 on any finding
    python -m repro.analysis lint src --format json
    python -m repro.analysis lint src --select REPRO001,REPRO005
    python -m repro.analysis flow src/repro      # interprocedural rules
    python -m repro.analysis flow src/repro --fail-on-new
    python -m repro.analysis flow src/repro --write-baseline
    python -m repro.analysis contracts-report --format json

``lint`` prints ``path:line:col: RULE message`` lines (or a JSON document)
and exits non-zero when findings survive suppression, so it slots
directly into CI; its ``--select`` accepts the same single ids and
inclusive ranges (``REPRO001-REPRO006``) as ``flow``.  ``flow`` runs
the interprocedural dataflow rules (REPRO007-024; ``--select`` accepts
single ids and inclusive ranges like ``REPRO019-REPRO024``, and
``--stats`` appends a per-rule hit count over the selected rules, zeros
included, for CI job logs) with committed-baseline ratcheting:
findings recorded in
a ``.repro-flow-baseline.json`` (auto-discovered by walking up from the
analyzed path, like ``.gitignore``) are reported but do not fail the
run; ``--fail-on-new`` additionally *requires* a baseline so CI breaks
loudly if the file goes missing.  ``contracts-report`` imports the
modules that carry runtime contracts and lists every decorator
application with its active/inactive status under the current
``REPRO_CONTRACTS`` setting.
"""

from __future__ import annotations

import argparse
import importlib
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.contracts import contract_registry, contracts_active
from repro.analysis.flow import (
    BASELINE_FILENAME,
    FLOW_RULES,
    analyze_paths,
    discover_baseline,
    load_baseline,
    split_by_baseline,
    write_baseline,
)
from repro.analysis.lint.engine import (
    Finding,
    all_rules,
    expand_rule_ranges,
    lint_paths,
)
from repro.exceptions import ReproError

#: Modules importing these registers the library's contract decorations.
_CONTRACT_MODULES = (
    "repro.inference.joint",
    "repro.rl.qnetwork",
    "repro.rl.dqn",
    "repro.rl.selection",
    "repro.core.agent",
)


def build_parser() -> argparse.ArgumentParser:
    """The ``repro.analysis`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description="Static lint rules and runtime-contract reporting "
                    "for the CrowdRL reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lint = sub.add_parser("lint", help="run the REPRO lint rules")
    lint.add_argument("paths", nargs="+", help="files or directories to lint")
    lint.add_argument("--format", choices=("text", "json"), default="text")
    lint.add_argument("--select", default=None,
                      help="comma-separated rule ids or inclusive ranges "
                           "like REPRO001-REPRO006 (default: all rules)")
    lint.add_argument("--statistics", action="store_true",
                      help="append a per-rule finding count summary")

    flow = sub.add_parser(
        "flow", help="run the interprocedural dataflow rules (REPRO007-024)"
    )
    flow.add_argument("paths", nargs="+", help="files or directories to analyze")
    flow.add_argument("--format", choices=("text", "json"), default="text")
    flow.add_argument("--select", default=None,
                      help="comma-separated rule ids or inclusive ranges "
                           "like REPRO013-REPRO018 (default: all flow rules)")
    flow.add_argument(
        "--baseline", default=None, metavar="PATH",
        help=f"baseline file (default: the nearest {BASELINE_FILENAME} "
             f"above the analyzed path)")
    flow.add_argument("--no-baseline", action="store_true",
                      help="ignore any baseline; report every finding")
    flow.add_argument(
        "--write-baseline", nargs="?", const="", default=None, metavar="PATH",
        help="accept the current findings as the new baseline (default "
             f"target: the discovered baseline, else ./{BASELINE_FILENAME})")
    flow.add_argument(
        "--stats", action="store_true",
        help="append a per-rule hit count over the selected rules "
             "(new + baselined findings, zeros included)")
    flow.add_argument(
        "--fail-on-new", action="store_true",
        help="require a baseline and fail only on findings not in it "
             "(comparison against a present baseline always applies; this "
             "flag makes a *missing* baseline a hard error for CI)")

    report = sub.add_parser("contracts-report",
                            help="list runtime contract decorations")
    report.add_argument("--format", choices=("text", "json"), default="text")
    return parser


def _render_lint_text(findings: List[Finding], statistics: bool) -> str:
    lines = [finding.format() for finding in findings]
    if statistics and findings:
        lines.append("")
        by_rule: dict = {}
        for finding in findings:
            by_rule[finding.rule_id] = by_rule.get(finding.rule_id, 0) + 1
        for rule_id in sorted(by_rule):
            lines.append(f"{rule_id}: {by_rule[rule_id]}")
    n_files = len({finding.path for finding in findings})
    lines.append(
        f"{len(findings)} finding(s) in {n_files} file(s)"
        if findings else "no findings"
    )
    return "\n".join(lines)


def _run_lint(args: argparse.Namespace) -> int:
    select = args.select.split(",") if args.select else None
    findings = lint_paths(args.paths, rules=all_rules(select))
    if args.format == "json":
        payload = {
            "findings": [finding.to_dict() for finding in findings],
            "count": len(findings),
        }
        print(json.dumps(payload, indent=2))
    else:
        print(_render_lint_text(findings, args.statistics))
    return 1 if findings else 0


def _flow_stats(select: Optional[List[str]],
                *finding_lists: List[Finding]) -> dict:
    """Per-rule hit counts over the selected rules, zeros included.

    Zero rows matter: the CI job log uses this to show which rules
    actually ran, not just which ones fired.
    """
    if select is None:
        selected: List[str] = list(FLOW_RULES)
    else:
        selected = expand_rule_ranges(select, FLOW_RULES, kind="flow rule")
    counts = {rule_id: 0 for rule_id in selected}
    for findings in finding_lists:
        for finding in findings:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
    return counts


def _run_flow(args: argparse.Namespace) -> int:
    select = args.select.split(",") if args.select else None
    findings = analyze_paths(args.paths, select=select)

    if args.write_baseline is not None:
        if args.write_baseline:
            target = Path(args.write_baseline)
        elif args.baseline:
            target = Path(args.baseline)
        else:
            target = discover_baseline(args.paths) or Path(BASELINE_FILENAME)
        write_baseline(target, findings)
        print(f"baseline with {len(findings)} finding(s) written to {target}")
        return 0

    baseline_path: Optional[Path] = None
    if not args.no_baseline:
        baseline_path = (Path(args.baseline) if args.baseline
                         else discover_baseline(args.paths))
    if args.fail_on_new and baseline_path is None:
        print(f"error: --fail-on-new requires a baseline "
              f"({BASELINE_FILENAME} not found above the analyzed paths)",
              file=sys.stderr)
        return 2

    baselined: List[Finding] = []
    if baseline_path is not None:
        accepted = load_baseline(baseline_path)
        findings, baselined = split_by_baseline(
            findings, accepted, baseline_path.resolve().parent
        )

    if args.format == "json":
        payload = {
            "rules": dict(FLOW_RULES),
            "findings": [finding.to_dict() for finding in findings],
            "count": len(findings),
            "baseline": str(baseline_path) if baseline_path else None,
            "baselined": [finding.to_dict() for finding in baselined],
            "baselined_count": len(baselined),
        }
        if args.stats:
            payload["stats"] = _flow_stats(select, findings, baselined)
        print(json.dumps(payload, indent=2))
    else:
        lines = [finding.format() for finding in findings]
        if args.stats:
            lines.append("rule hits (new + baselined):")
            for rule_id, count in _flow_stats(select, findings,
                                              baselined).items():
                lines.append(f"  {rule_id}: {count}")
        summary = (f"{len(findings)} finding(s)" if findings
                   else "no new findings")
        if baseline_path is not None:
            summary += (f" ({len(baselined)} baselined via {baseline_path})")
        lines.append(summary)
        print("\n".join(lines))
    return 1 if findings else 0


def _run_contracts_report(args: argparse.Namespace) -> int:
    for module in _CONTRACT_MODULES:
        importlib.import_module(module)
    records = contract_registry()
    if args.format == "json":
        payload = {
            "contracts_active": contracts_active(),
            "contracts": [record.to_dict() for record in records],
            "count": len(records),
        }
        print(json.dumps(payload, indent=2))
        return 0
    state = "active" if contracts_active() else "inactive (REPRO_CONTRACTS=0)"
    print(f"runtime contracts: {state}")
    width = max((len(f"{r.module}.{r.qualname}") for r in records), default=0)
    for record in records:
        name = f"{record.module}.{record.qualname}"
        flag = "on " if record.active else "off"
        print(f"  [{flag}] {name:<{width}}  {record.kind}({record.detail})")
    print(f"{len(records)} contract(s) registered")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "lint":
            return _run_lint(args)
        if args.command == "flow":
            return _run_flow(args)
        return _run_contracts_report(args)
    except ReproError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
