"""Static analysis and runtime contracts for the CrowdRL reproduction.

Two halves, both reachable through ``python -m repro.analysis``:

* :mod:`repro.analysis.lint` — a stdlib-``ast`` rule engine with
  project-specific rules (REPRO001..REPRO006) guarding the invariants the
  Python type system cannot see: seeded randomness, validated inputs,
  no in-place mutation of shared run state, no swallowed exceptions.
* :mod:`repro.analysis.contracts` — toggleable runtime decorators
  (``@shaped``, ``@row_stochastic``, ``@prob_simplex``) asserting the
  paper's array invariants (Eqs. 7-8 row-stochasticity, the ``|O| x |W|``
  answer-matrix orientation) on the joint-inference and DQN hot paths.
  Set ``REPRO_CONTRACTS=0`` to compile them all to no-ops.
"""

from repro.analysis.contracts import (
    ContractViolation,
    contract_registry,
    contracts_active,
    prob_simplex,
    row_stochastic,
    shaped,
)
from repro.analysis.lint.engine import Finding, LintRule, lint_paths

__all__ = [
    "ContractViolation",
    "contract_registry",
    "contracts_active",
    "prob_simplex",
    "row_stochastic",
    "shaped",
    "Finding",
    "LintRule",
    "lint_paths",
]
