"""Toggleable runtime array contracts for hot numerical paths.

The decorators assert the paper's array invariants at function boundaries:

* :func:`shaped` — dimension counts and symbolic dimension consistency
  (``@shaped(answers="(n_objects, n_workers)")``; the same symbol must
  bind to the same size across every checked argument and the result);
* :func:`row_stochastic` — last-axis sums equal one with non-negative
  entries, the Eq. 7-8 confusion-matrix invariant;
* :func:`prob_simplex` — a probability vector (or stack of vectors).

Activation is decided **once, at decoration time**, from the
``REPRO_CONTRACTS`` environment variable (default: active; set
``REPRO_CONTRACTS=0`` before importing ``repro`` to disable).  When
inactive a decorator returns the function object unchanged, so disabled
contracts are literal zero-overhead pass-throughs and benchmarks are
unaffected.  Every application is recorded in a registry either way, which
``python -m repro.analysis contracts-report`` renders.

Violations raise :class:`ContractViolation` (a :class:`repro.exceptions.ReproError`).
"""

from __future__ import annotations

import functools
import inspect
import os
import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.exceptions import ConfigurationError, ReproError

_ATOL = 1e-4
_DIM_TOKEN = re.compile(r"^(?:[A-Za-z_][A-Za-z0-9_]*|\d+)$")


class ContractViolation(ReproError):
    """A runtime array contract was violated at a function boundary."""


@dataclass(frozen=True)
class ContractRecord:
    """One decorator application, as listed by ``contracts-report``."""

    module: str
    qualname: str
    kind: str
    detail: str
    active: bool

    def to_dict(self) -> dict:
        """JSON-serialisable representation for the report CLI."""
        return {
            "module": self.module,
            "function": self.qualname,
            "kind": self.kind,
            "detail": self.detail,
            "active": self.active,
        }


_REGISTRY: List[ContractRecord] = []  # repro: process-local — append-only decoration registry rebuilt identically by import in every process


def contracts_active() -> bool:
    """Whether contracts are enabled (``REPRO_CONTRACTS`` unset / not 0)."""
    return os.environ.get("REPRO_CONTRACTS", "1").strip().lower() not in (
        "0", "false", "off", "no",
    )


def contract_registry() -> Tuple[ContractRecord, ...]:
    """Every contract applied so far, in application order."""
    return tuple(_REGISTRY)


def _register(fn: Callable, kind: str, detail: str, active: bool) -> None:
    _REGISTRY.append(
        ContractRecord(
            module=getattr(fn, "__module__", "?") or "?",
            qualname=getattr(fn, "__qualname__", fn.__name__),
            kind=kind,
            detail=detail,
            active=active,
        )
    )


# ----------------------------------------------------------------------
# Shape specs
# ----------------------------------------------------------------------
def parse_shape(spec: str) -> Tuple[str, ...]:
    """Parse ``"(n_objects, n_workers)"`` into dimension tokens.

    Tokens are symbolic names (bound consistently within one call),
    integer literals (exact sizes) or ``_`` (wildcard).
    """
    text = spec.strip()
    if text.startswith("(") and text.endswith(")"):
        text = text[1:-1]
    tokens = tuple(tok.strip() for tok in text.split(",") if tok.strip())
    for token in tokens:
        if not _DIM_TOKEN.match(token):
            raise ConfigurationError(f"bad dimension token {token!r} in {spec!r}")
    return tokens


def _check_shape(value, dims: Tuple[str, ...], bindings: Dict[str, int],
                 where: str, label: str) -> None:
    arr = np.asarray(value)
    if arr.ndim != len(dims):
        raise ContractViolation(
            f"{where}: {label} must be {len(dims)}-D "
            f"({', '.join(dims)}), got shape {arr.shape}"
        )
    for token, actual in zip(dims, arr.shape):
        if token == "_":
            continue
        if token.isdigit():
            if actual != int(token):
                raise ContractViolation(
                    f"{where}: {label} dimension {token} expected, got "
                    f"{actual} (shape {arr.shape})"
                )
            continue
        bound = bindings.setdefault(token, actual)
        if bound != actual:
            raise ContractViolation(
                f"{where}: {label} binds {token}={actual} but {token}="
                f"{bound} elsewhere in the call (shape {arr.shape}); "
                f"is the array transposed?"
            )


def _first_checkable_param(sig: inspect.Signature) -> str:
    for name in sig.parameters:
        if name not in ("self", "cls"):
            return name
    raise ConfigurationError("function has no parameter to apply a contract to")


def _where(fn: Callable) -> str:
    return f"{getattr(fn, '__module__', '?')}.{getattr(fn, '__qualname__', fn.__name__)}"


# ----------------------------------------------------------------------
# Decorators
# ----------------------------------------------------------------------
def shaped(spec: Optional[str] = None, *, result: Optional[str] = None,
           enabled: Optional[bool] = None, **param_specs: str) -> Callable:
    """Assert array shapes of named parameters (and optionally the result).

    ``@shaped("(n, k)")`` checks the first parameter; keyword form checks
    several at once with a shared symbol table, e.g.
    ``@shaped(features="(n, f)", result="(n,)")``.
    """
    active = contracts_active() if enabled is None else bool(enabled)

    def decorate(fn: Callable) -> Callable:
        sig = inspect.signature(fn)
        specs = dict(param_specs)
        if spec is not None:
            specs.setdefault(_first_checkable_param(sig), spec)
        for name in specs:
            if name not in sig.parameters:
                raise ConfigurationError(
                    f"{_where(fn)} has no parameter {name!r} to check"
                )
        detail_parts = [f"{name}={shape}" for name, shape in specs.items()]
        if result is not None:
            detail_parts.append(f"result={result}")
        _register(fn, "shaped", ", ".join(detail_parts), active)
        if not active:
            return fn

        parsed = {name: parse_shape(shape) for name, shape in specs.items()}
        result_dims = parse_shape(result) if result is not None else None
        where = _where(fn)

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            bound = sig.bind_partial(*args, **kwargs)
            bindings: Dict[str, int] = {}
            for name, dims in parsed.items():
                if name in bound.arguments and bound.arguments[name] is not None:
                    _check_shape(bound.arguments[name], dims, bindings,
                                 where, f"argument '{name}'")
            out = fn(*args, **kwargs)
            if result_dims is not None and out is not None:
                _check_shape(out, result_dims, bindings, where, "return value")
            return out

        return wrapper

    return decorate


def _stochastic_decorator(kind: str, min_ndim: int) -> Callable:
    """Factory for the two probability contracts (shared machinery)."""

    def contract(param: Union[Callable, str, None] = None, *,
                 result: bool = False, atol: float = _ATOL,
                 enabled: Optional[bool] = None) -> Callable:
        # Support bare application: @row_stochastic \n def f(matrix): ...
        if callable(param) and not isinstance(param, str):
            return contract()(param)
        active = contracts_active() if enabled is None else bool(enabled)

        def decorate(fn: Callable) -> Callable:
            sig = inspect.signature(fn)
            target = None if result else (param or _first_checkable_param(sig))
            if target is not None and target not in sig.parameters:
                raise ConfigurationError(
                    f"{_where(fn)} has no parameter {target!r} to check"
                )
            detail = "result" if result else f"argument '{target}'"
            _register(fn, kind, detail, active)
            if not active:
                return fn
            where = _where(fn)

            @functools.wraps(fn)
            def wrapper(*args, **kwargs):
                if target is not None:
                    bound = sig.bind_partial(*args, **kwargs)
                    if target in bound.arguments:
                        _check_stochastic(bound.arguments[target], kind,
                                          min_ndim, atol, where,
                                          f"argument '{target}'")
                out = fn(*args, **kwargs)
                if result:
                    _check_stochastic(out, kind, min_ndim, atol, where,
                                      "return value")
                return out

            return wrapper

        return decorate

    return contract


def _check_stochastic(value, kind: str, min_ndim: int, atol: float,
                      where: str, label: str) -> None:
    arr = np.asarray(value, dtype=float)
    if arr.ndim < min_ndim:
        raise ContractViolation(
            f"{where}: {label} must be at least {min_ndim}-D for "
            f"{kind}, got shape {arr.shape}"
        )
    if arr.size == 0:
        return
    if np.any(arr < -atol):
        raise ContractViolation(
            f"{where}: {label} has negative entries (min {arr.min():.6g}); "
            f"not a probability {kind}"
        )
    sums = arr.sum(axis=-1)
    if not np.allclose(sums, 1.0, atol=max(atol, 1e-8)):
        bad = np.asarray(sums).ravel()
        raise ContractViolation(
            f"{where}: {label} rows must sum to 1 ({kind}); got sums in "
            f"[{bad.min():.6g}, {bad.max():.6g}]"
        )


#: Eq. 7-8 invariant: every row of a confusion matrix (or a stack of
#: confusion matrices) is a probability distribution over answers.
row_stochastic = _stochastic_decorator("row_stochastic", min_ndim=2)

#: A probability vector — or, for >=2-D input, a stack of vectors whose
#: last axis lies on the simplex (e.g. per-object posteriors).
prob_simplex = _stochastic_decorator("prob_simplex", min_ndim=1)
