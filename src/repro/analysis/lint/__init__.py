"""Project lint engine: an ``ast``-based rule framework plus REPRO rules."""

from repro.analysis.lint.engine import (
    Finding,
    LintContext,
    LintRule,
    all_rules,
    lint_file,
    lint_paths,
    lint_source,
    register_rule,
)

__all__ = [
    "Finding",
    "LintContext",
    "LintRule",
    "all_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
    "register_rule",
]
