"""Rule framework for the project linter.

A :class:`LintRule` inspects one parsed module (:class:`LintContext`) and
yields :class:`Finding` records.  The engine owns everything rule-agnostic:
discovering ``*.py`` files, parsing, dispatching rules, and honouring
per-line suppression comments of the form::

    risky_call()  # repro: noqa REPRO001
    another()     # repro: noqa            (suppresses every rule)

Rules register themselves via :func:`register_rule` when their module is
imported; :func:`all_rules` imports :mod:`repro.analysis.lint.rules` so
callers always see the full REPRO rule set.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Type

from repro.exceptions import ConfigurationError

#: Severity levels, in increasing order of gravity.
SEVERITIES = ("warning", "error")

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?P<codes>(?:[ \t,]+REPRO\d+)*)", re.IGNORECASE
)


@dataclass(frozen=True, order=True)
class Finding:
    """One structured lint finding, sortable into report order."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    severity: str = "error"

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ConfigurationError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )

    def format(self) -> str:
        """Render as the conventional ``path:line:col: ID message`` line."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.severity}] {self.message}"
        )

    def to_dict(self) -> dict:
        """JSON-serialisable representation (the ``--format json`` payload)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
            "severity": self.severity,
        }


@dataclass
class LintContext:
    """Everything a rule may inspect about one module."""

    path: str
    tree: ast.Module
    source: str
    lines: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()

    @property
    def parts(self) -> tuple:
        """Path components, used by rules scoped to sub-packages."""
        return Path(self.path).parts

    def in_package(self, *names: str) -> bool:
        """Whether the module lives under any directory named in ``names``."""
        return any(name in self.parts[:-1] for name in names)

    def is_module(self, *tail: str) -> bool:
        """Whether the path ends with the given components (e.g. core/state.py)."""
        return self.parts[-len(tail):] == tuple(tail)


class LintRule:
    """Base class for REPRO rules.

    Subclasses set :attr:`rule_id`, :attr:`severity` and
    :attr:`description`, and implement :meth:`check` as a generator of
    :class:`Finding` records.
    """

    rule_id: str = ""
    severity: str = "error"
    description: str = ""

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        """Yield findings for one module; the base class yields nothing."""
        raise NotImplementedError

    def finding(self, ctx: LintContext, node: ast.AST, message: str) -> Finding:
        """Convenience constructor anchoring a finding to an AST node."""
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=self.rule_id,
            message=message,
            severity=self.severity,
        )


_REGISTRY: Dict[str, Type[LintRule]] = {}  # repro: process-local — rule-class registry populated at import time by decorators; identical in every process


def register_rule(cls: Type[LintRule]) -> Type[LintRule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.rule_id:
        raise ConfigurationError(f"{cls.__name__} does not define a rule_id")
    if cls.rule_id in _REGISTRY and _REGISTRY[cls.rule_id] is not cls:
        raise ConfigurationError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls
    return cls


#: Inclusive rule-id range, e.g. ``REPRO001-REPRO006`` or ``REPRO001-006``.
_SELECT_RANGE_RE = re.compile(r"^(REPRO)(\d+)-(?:REPRO)?(\d+)$", re.IGNORECASE)


def expand_rule_ranges(select: Iterable[str],
                       known: Iterable[str],
                       kind: str = "rule") -> List[str]:
    """Expand ``--select`` tokens (ids and inclusive ranges) against ``known``.

    The one parser behind both the lint and the flow CLIs: a token is
    either a single id (``REPRO005``) or an inclusive range
    (``REPRO001-REPRO006``, short form ``REPRO001-006``); every expanded
    id must exist in ``known`` or the whole selection is rejected.
    """
    known = set(known)
    chosen: List[str] = []
    for token in select:
        token = token.strip().upper()
        match = _SELECT_RANGE_RE.match(token)
        if match is not None:
            lo, hi = int(match.group(2)), int(match.group(3))
            if hi < lo:
                raise ConfigurationError(f"empty {kind} range {token!r}")
            expanded = [f"REPRO{i:03d}" for i in range(lo, hi + 1)]
        else:
            expanded = [token]
        for rule_id in expanded:
            if rule_id not in known:
                raise ConfigurationError(
                    f"unknown {kind} {rule_id!r}; known: "
                    f"{', '.join(sorted(known))}"
                )
            chosen.append(rule_id)
    return chosen


def all_rules(select: Optional[Iterable[str]] = None) -> List[LintRule]:
    """Instantiate the registered rules, optionally restricted to ``select``.

    ``select`` accepts single ids and inclusive ranges
    (``REPRO001-REPRO006``), the same syntax as the flow CLI.
    """
    # Importing the rules package triggers registration of the REPRO rules.
    import repro.analysis.lint.rules  # noqa: F401  (import for side effect)

    if select is None:
        chosen: List[str] = sorted(_REGISTRY)
    else:
        chosen = expand_rule_ranges(select, _REGISTRY, kind="rule")
    return [_REGISTRY[rule_id]() for rule_id in chosen]


# ----------------------------------------------------------------------
# Suppression comments
# ----------------------------------------------------------------------
def suppressed_rules(lines: Sequence[str]) -> Dict[int, Optional[Set[str]]]:
    """Map 1-based line numbers to suppressed rule ids.

    A value of ``None`` suppresses every rule on that line; a set
    suppresses only the listed ids.
    """
    suppressions: Dict[int, Optional[Set[str]]] = {}
    for lineno, text in enumerate(lines, start=1):
        match = _NOQA_RE.search(text)
        if match is None:
            continue
        codes = {
            code.upper()
            for code in re.findall(r"REPRO\d+", match.group("codes") or "",
                                   re.IGNORECASE)
        }
        suppressions[lineno] = codes or None
    return suppressions


def _is_suppressed(finding: Finding,
                   suppressions: Dict[int, Optional[Set[str]]]) -> bool:
    codes = suppressions.get(finding.line, False)
    if codes is False:
        return False
    return codes is None or finding.rule_id in codes


# ----------------------------------------------------------------------
# Running
# ----------------------------------------------------------------------
def iter_python_files(paths: Iterable[str]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``*.py`` paths."""
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise ConfigurationError(f"no such file or directory: {raw}")
        if path.is_dir():
            yield from sorted(p for p in path.rglob("*.py") if p.is_file())
        else:
            yield path


def lint_source(source: str, path: str,
                rules: Sequence[LintRule]) -> List[Finding]:
    """Lint already-loaded source text (the unit the tests exercise)."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as err:
        return [
            Finding(
                path=path,
                line=err.lineno or 1,
                col=(err.offset or 0) + 1,
                rule_id="REPRO000",
                message=f"syntax error: {err.msg}",
                severity="error",
            )
        ]
    ctx = LintContext(path=path, tree=tree, source=source)
    suppressions = suppressed_rules(ctx.lines)
    findings = [
        finding
        for rule in rules
        for finding in rule.check(ctx)
        if not _is_suppressed(finding, suppressions)
    ]
    return sorted(findings)


def lint_file(path: Path, rules: Sequence[LintRule]) -> List[Finding]:
    """Lint one file from disk."""
    source = Path(path).read_text(encoding="utf-8")
    return lint_source(source, str(path), rules)


def lint_paths(paths: Iterable[str],
               rules: Optional[Sequence[LintRule]] = None) -> List[Finding]:
    """Lint every ``*.py`` file under ``paths`` with ``rules`` (default: all)."""
    if rules is None:
        rules = all_rules()
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, rules))
    return sorted(findings)
