"""REPRO006: docstring presence on the public API.

Modules, public classes, public module-level functions and public methods
need a docstring.  Trivial single-statement bodies (delegators, property
getters, ``raise NotImplementedError`` stubs) are exempt: forcing a
docstring onto ``return self._x`` adds noise, not information.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.lint.engine import Finding, LintContext, LintRule, register_rule
from repro.analysis.lint.rules._ast_utils import (
    decorator_name,
    is_public,
    iter_functions,
)


def _effective_body(fn) -> list:
    body = list(fn.body)
    if body and isinstance(body[0], ast.Expr) and isinstance(
            body[0].value, ast.Constant) and isinstance(body[0].value.value, str):
        body = body[1:]  # strip an existing docstring
    return body


def _is_trivial(fn) -> bool:
    return len(_effective_body(fn)) <= 1


@register_rule
class PublicDocstringRule(LintRule):
    """Flag missing docstrings on modules, public classes and functions."""

    rule_id = "REPRO006"
    severity = "warning"
    description = "docstrings required on the public API"

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        """Yield this rule's findings for one parsed module."""
        tree = ctx.tree
        if tree.body and ast.get_docstring(tree) is None:
            yield self.finding(ctx, tree.body[0], "module is missing a docstring")

        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and is_public(node.name):
                if ast.get_docstring(node) is None:
                    yield self.finding(
                        ctx, node,
                        f"public class '{node.name}' is missing a docstring",
                    )

        seen_nested = set()
        for fn, cls in iter_functions(tree):
            if id(fn) in seen_nested:
                continue
            for inner, _ in iter_functions(fn):
                seen_nested.add(id(inner))
            if not is_public(fn.name):
                continue
            if cls is not None and not is_public(cls.name):
                continue
            if any(decorator_name(d) == "overload" for d in fn.decorator_list):
                continue
            if ast.get_docstring(fn) is not None or _is_trivial(fn):
                continue
            where = f"{cls.name}.{fn.name}" if cls is not None else fn.name
            yield self.finding(
                ctx, fn, f"public function '{where}' is missing a docstring"
            )
