"""The REPRO rule set.

Importing this package registers every rule with the engine registry:

* REPRO001 — no global ``np.random.*`` calls (thread a seeded Generator)
* REPRO002 — no mutable default arguments
* REPRO003 — public inference/rl/core functions must validate array inputs
* REPRO004 — no bare ``except:`` / silently swallowed exceptions
* REPRO005 — no in-place mutation of ``state``/``history``/``answers`` args
* REPRO006 — docstrings on the public API
"""

from repro.analysis.lint.rules.seeded_rng import GlobalNumpyRandomRule
from repro.analysis.lint.rules.mutable_defaults import MutableDefaultRule
from repro.analysis.lint.rules.validated_inputs import ValidatedInputsRule
from repro.analysis.lint.rules.exception_hygiene import ExceptionHygieneRule
from repro.analysis.lint.rules.state_mutation import StateMutationRule
from repro.analysis.lint.rules.docstrings import PublicDocstringRule

__all__ = [
    "GlobalNumpyRandomRule",
    "MutableDefaultRule",
    "ValidatedInputsRule",
    "ExceptionHygieneRule",
    "StateMutationRule",
    "PublicDocstringRule",
]
