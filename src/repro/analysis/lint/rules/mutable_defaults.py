"""REPRO002: no mutable default arguments.

A mutable default is evaluated once at definition time and then shared by
every call — the classic source of cross-run state leakage, which in this
codebase would silently couple experiment repetitions that must be
independent.  Use ``None`` plus an in-body default instead.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint.engine import Finding, LintContext, LintRule, register_rule
from repro.analysis.lint.rules._ast_utils import iter_functions

_MUTABLE_CALLS = {
    "list", "dict", "set", "bytearray", "deque",
    "defaultdict", "OrderedDict", "Counter",
}
_MUTABLE_NP_CALLS = {"zeros", "ones", "empty", "full", "array", "arange"}
_MUTABLE_LITERALS = (
    ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp,
)


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in _MUTABLE_CALLS:
            return True
        if isinstance(func, ast.Attribute) and func.attr in _MUTABLE_NP_CALLS:
            return True
    return False


@register_rule
class MutableDefaultRule(LintRule):
    """Flag list/dict/set/ndarray literals used as parameter defaults."""

    rule_id = "REPRO002"
    severity = "error"
    description = "no mutable default arguments"

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for fn, _cls in iter_functions(ctx.tree):
            defaults = list(fn.args.defaults) + [
                d for d in fn.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    yield self.finding(
                        ctx, default,
                        f"mutable default argument in '{fn.name}' is shared "
                        f"across calls; default to None and create it in the "
                        f"body",
                    )
