"""REPRO005: no in-place mutation of ``state``/``history``/``answers`` args.

The labelling history matrix and the RL state are shared, long-lived run
structures; frameworks, featurizers and inference all read them.  A
function that receives one as an *argument* and mutates it in place
creates action-at-a-distance between components that the paper's model
treats as independent.  Only :mod:`repro.core.state` — the designated
owner of state transitions — may mutate them.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.lint.engine import Finding, LintContext, LintRule, register_rule
from repro.analysis.lint.rules._ast_utils import (
    FUNCTION_NODES,
    all_parameters,
    iter_functions,
    root_name,
)

#: Argument names treated as shared run state.
_PROTECTED = {"state", "history", "answers"}

#: Method names that mutate their receiver in place.
_MUTATORS = {
    "append", "extend", "insert", "pop", "popitem", "clear", "update",
    "setdefault", "remove", "discard", "add", "sort", "reverse",
    "fill", "resize", "put", "itemset",
}


def _protected_params(fn) -> Set[str]:
    return {p.arg for p in all_parameters(fn) if p.arg in _PROTECTED}


@register_rule
class StateMutationRule(LintRule):
    """Flag writes through protected parameters outside core/state.py."""

    rule_id = "REPRO005"
    severity = "error"
    description = (
        "no in-place mutation of state/history/answers arguments outside "
        "core/state.py"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        """Yield this rule's findings for one parsed module."""
        if ctx.is_module("core", "state.py"):
            return
        for fn, _cls in iter_functions(ctx.tree):
            protected = _protected_params(fn)
            if not protected:
                continue
            yield from self._check_body(ctx, fn, protected)

    def _check_body(self, ctx: LintContext, fn, protected: Set[str]
                    ) -> Iterator[Finding]:
        for node in ast.walk(fn):
            # Nested defs that rebind a protected name get their own pass.
            if node is not fn and isinstance(node, FUNCTION_NODES):
                continue
            targets = []
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [
                    node.target
                ]
            elif isinstance(node, ast.Delete):
                targets = node.targets
            for target in targets:
                if not isinstance(target, (ast.Subscript, ast.Attribute)):
                    continue
                name = root_name(target)
                if name in protected:
                    yield self.finding(
                        ctx, node,
                        f"in-place write to argument '{name}' leaks state "
                        f"outside core/state.py; copy it first",
                    )
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr in _MUTATORS:
                    name = root_name(node.func.value)
                    if name in protected:
                        yield self.finding(
                            ctx, node,
                            f"call to mutating method '.{node.func.attr}' on "
                            f"argument '{name}'; copy it first",
                        )
