"""REPRO001: no calls through the global numpy RNG.

Reproducibility end-to-end is a core claim of this reproduction (the
harness seeds one generator and spawns child streams per component), so
``np.random.rand()``-style calls through numpy's *global* state are
forbidden: they make results depend on import order and call count.
Construct or thread a seeded :class:`numpy.random.Generator` instead
(see :func:`repro.utils.rng.as_rng`).
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.lint.engine import Finding, LintContext, LintRule, register_rule

#: Attributes of ``numpy.random`` that do NOT touch global RNG state.
_ALLOWED = {
    "default_rng",
    "Generator",
    "BitGenerator",
    "SeedSequence",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
    "RandomState",  # an explicit legacy *instance* is still seeded state
}


def _numpy_aliases(tree: ast.Module) -> tuple:
    """Names bound to the numpy module and to the numpy.random module."""
    numpy_names: Set[str] = set()
    random_names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    numpy_names.add(alias.asname or "numpy")
                elif alias.name == "numpy.random" and alias.asname:
                    random_names.add(alias.asname)
                elif alias.name == "numpy.random":
                    numpy_names.add("numpy")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "numpy":
                for alias in node.names:
                    if alias.name == "random":
                        random_names.add(alias.asname or "random")
    return numpy_names, random_names


@register_rule
class GlobalNumpyRandomRule(LintRule):
    """Flag ``np.random.<fn>(...)`` calls and global-state imports."""

    rule_id = "REPRO001"
    severity = "error"
    description = "no global np.random.* calls; thread a seeded Generator"

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        """Yield this rule's findings for one parsed module."""
        numpy_names, random_names = _numpy_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "numpy.random":
                for alias in node.names:
                    if alias.name not in _ALLOWED:
                        yield self.finding(
                            ctx, node,
                            f"'from numpy.random import {alias.name}' binds the "
                            f"global RNG; use a seeded np.random.Generator "
                            f"(repro.utils.rng.as_rng)",
                        )
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) or func.attr in _ALLOWED:
                continue
            value = func.value
            is_np_random = (
                isinstance(value, ast.Attribute)
                and value.attr == "random"
                and isinstance(value.value, ast.Name)
                and value.value.id in numpy_names
            ) or (
                isinstance(value, ast.Name) and value.id in random_names
            )
            if is_np_random:
                yield self.finding(
                    ctx, node,
                    f"call to global 'np.random.{func.attr}' breaks seeded "
                    f"reproducibility; thread a np.random.Generator instead",
                )
