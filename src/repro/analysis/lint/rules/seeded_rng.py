"""REPRO001: no calls through the global numpy RNG.

Reproducibility end-to-end is a core claim of this reproduction (the
harness seeds one generator and spawns child streams per component), so
``np.random.rand()``-style calls through numpy's *global* state are
forbidden: they make results depend on import order and call count.
Construct or thread a seeded :class:`numpy.random.Generator` instead
(see :func:`repro.utils.rng.as_rng`).

Unseeded construction hides behind three indirections this rule also
flags (the flow analyzer's REPRO007 catches the fully interprocedural
forms):

* ``field(default_factory=np.random.default_rng)`` — the dataclass
  machinery calls the factory with zero arguments, minting a fresh
  entropy stream per instance;
* ``field(default_factory=lambda: np.random.default_rng())`` — same
  hazard, one lambda deep;
* ``def f(rng=np.random.default_rng())`` — one unseeded stream frozen
  at import time and shared by every call.

The coercion helpers in :mod:`repro.utils.rng` are exempt: ``as_rng``
exists to turn loose seeds into generators and is allowed to construct
from ``None`` when the caller explicitly asked for an arbitrary stream.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.analysis.lint.engine import Finding, LintContext, LintRule, register_rule

#: Attributes of ``numpy.random`` that do NOT touch global RNG state.
_ALLOWED = {
    "default_rng",
    "Generator",
    "BitGenerator",
    "SeedSequence",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
    "RandomState",  # an explicit legacy *instance* is still seeded state
}


def _numpy_aliases(tree: ast.Module) -> tuple:
    """Names bound to the numpy module and to the numpy.random module."""
    numpy_names: Set[str] = set()
    random_names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    numpy_names.add(alias.asname or "numpy")
                elif alias.name == "numpy.random" and alias.asname:
                    random_names.add(alias.asname)
                elif alias.name == "numpy.random":
                    numpy_names.add("numpy")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "numpy":
                for alias in node.names:
                    if alias.name == "random":
                        random_names.add(alias.asname or "random")
    return numpy_names, random_names


#: Names that construct a generator and accept an optional seed.
_CONSTRUCTOR_NAMES = {"default_rng", "as_rng", "RandomState"}


def _constructor_name(node: ast.expr) -> Optional[str]:
    """The generator-constructor name a reference points at, if any."""
    if isinstance(node, ast.Attribute) and node.attr in _CONSTRUCTOR_NAMES:
        return node.attr
    if isinstance(node, ast.Name) and node.id in _CONSTRUCTOR_NAMES:
        return node.id
    return None


def _unseeded_construction(node: ast.expr) -> Optional[str]:
    """Constructor name if ``node`` mints an unseeded generator.

    Covers a bare reference (called with no arguments by whoever receives
    it), a zero-argument / literal-``None`` call, and a lambda wrapping
    either.
    """
    if isinstance(node, ast.Lambda):
        return _unseeded_construction(node.body)
    name = _constructor_name(node)
    if name is not None:
        return name
    if isinstance(node, ast.Call):
        name = _constructor_name(node.func)
        if name is None:
            return None
        seed = node.args[0] if node.args else None
        if seed is None:
            for keyword in node.keywords:
                if keyword.arg in ("seed", "rng"):
                    seed = keyword.value
        if seed is None or (isinstance(seed, ast.Constant)
                            and seed.value is None):
            return name
    return None


@register_rule
class GlobalNumpyRandomRule(LintRule):
    """Flag ``np.random.<fn>(...)`` calls and global-state imports."""

    rule_id = "REPRO001"
    severity = "error"
    description = ("no global np.random.* calls or unseeded Generator "
                   "defaults; thread a seeded Generator")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        """Yield this rule's findings for one parsed module."""
        if ctx.is_module("utils", "rng.py"):
            return  # the blessed seed-coercion point
        yield from self._check_global_calls(ctx)
        yield from self._check_unseeded_defaults(ctx)

    def _check_unseeded_defaults(self, ctx: LintContext) -> Iterator[Finding]:
        """Flag default_factory / parameter-default unseeded construction."""
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                func = node.func
                is_field = (isinstance(func, ast.Name) and func.id == "field") \
                    or (isinstance(func, ast.Attribute) and func.attr == "field")
                if not is_field:
                    continue
                for keyword in node.keywords:
                    if keyword.arg != "default_factory":
                        continue
                    name = _unseeded_construction(keyword.value)
                    if name is not None:
                        yield self.finding(
                            ctx, keyword.value,
                            f"default_factory mints an unseeded generator "
                            f"via '{name}'; accept an explicit "
                            f"np.random.Generator and thread the seed "
                            f"(repro.utils.rng.spawn_rngs)",
                        )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defaults = list(node.args.defaults) + [
                    d for d in node.args.kw_defaults if d is not None
                ]
                for default in defaults:
                    if isinstance(default, (ast.Name, ast.Attribute)):
                        continue  # a reference default is not constructed here
                    name = _unseeded_construction(default)
                    if name is not None:
                        yield self.finding(
                            ctx, default,
                            f"parameter default constructs an unseeded "
                            f"generator via '{name}' once at import time; "
                            f"default to None and coerce with "
                            f"repro.utils.rng.as_rng inside the function",
                        )

    def _check_global_calls(self, ctx: LintContext) -> Iterator[Finding]:
        """The original REPRO001 check: global numpy RNG usage."""
        numpy_names, random_names = _numpy_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "numpy.random":
                for alias in node.names:
                    if alias.name not in _ALLOWED:
                        yield self.finding(
                            ctx, node,
                            f"'from numpy.random import {alias.name}' binds the "
                            f"global RNG; use a seeded np.random.Generator "
                            f"(repro.utils.rng.as_rng)",
                        )
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) or func.attr in _ALLOWED:
                continue
            value = func.value
            is_np_random = (
                isinstance(value, ast.Attribute)
                and value.attr == "random"
                and isinstance(value.value, ast.Name)
                and value.value.id in numpy_names
            ) or (
                isinstance(value, ast.Name) and value.id in random_names
            )
            if is_np_random:
                yield self.finding(
                    ctx, node,
                    f"call to global 'np.random.{func.attr}' breaks seeded "
                    f"reproducibility; thread a np.random.Generator instead",
                )
