"""Small AST helpers shared by the REPRO rules."""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]
FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def iter_functions(tree: ast.Module) -> Iterator[Tuple[FunctionNode, Optional[ast.ClassDef]]]:
    """Yield every function in a module with its enclosing class (if any).

    Nested functions are yielded too (with the class of their outermost
    enclosing method); rules that only care about top-level definitions can
    filter on :func:`is_nested`.
    """
    def walk(node: ast.AST, cls: Optional[ast.ClassDef]) -> Iterator[
            Tuple[FunctionNode, Optional[ast.ClassDef]]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, FUNCTION_NODES):
                yield child, cls
                yield from walk(child, cls)
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, child)
            else:
                yield from walk(child, cls)

    yield from walk(tree, None)


def all_parameters(fn: FunctionNode) -> list:
    """Every parameter node of ``fn`` (positional, keyword-only, *args, **kw)."""
    args = fn.args
    params = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    if args.vararg is not None:
        params.append(args.vararg)
    if args.kwarg is not None:
        params.append(args.kwarg)
    return params


def decorator_name(node: ast.expr) -> str:
    """The rightmost name of a decorator expression (``a.b.c()`` -> ``c``)."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def root_name(node: ast.expr) -> Optional[str]:
    """The base ``Name`` of an attribute/subscript chain, or ``None``.

    ``answers[i].x`` and ``state.history`` both root at their left-most name.
    """
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def is_public(name: str) -> bool:
    """Public per PEP 8: no leading underscore (dunders are not public API)."""
    return not name.startswith("_")


def annotation_text(node: Optional[ast.expr]) -> str:
    """Best-effort source text of an annotation (empty when absent)."""
    if node is None:
        return ""
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse failure is cosmetic
        return ""
