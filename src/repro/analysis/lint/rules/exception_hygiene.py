"""REPRO004: no bare ``except:`` and no silently swallowed exceptions.

Swallowing an exception in an EM loop or an experiment harness converts a
crash into a silently wrong number — the worst failure mode for a
reproduction whose outputs are compared against published figures.
Handlers must name the exception class and must *do* something (handle,
log, or re-raise).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint.engine import Finding, LintContext, LintRule, register_rule


def _is_noop(stmt: ast.stmt) -> bool:
    if isinstance(stmt, (ast.Pass, ast.Continue)):
        return True
    if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
        return True  # bare string/Ellipsis expression
    return False


@register_rule
class ExceptionHygieneRule(LintRule):
    """Flag bare ``except:`` clauses and handlers whose body is a no-op."""

    rule_id = "REPRO004"
    severity = "error"
    description = "no bare 'except:' or silently swallowed exceptions"

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    ctx, node,
                    "bare 'except:' catches SystemExit/KeyboardInterrupt too; "
                    "name the exception class",
                )
                continue
            if all(_is_noop(stmt) for stmt in node.body):
                yield self.finding(
                    ctx, node,
                    "exception caught and silently swallowed; handle, log, "
                    "or re-raise it",
                )
