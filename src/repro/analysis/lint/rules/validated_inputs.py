"""REPRO003: public inference/rl/core functions must validate array inputs.

The EM-style joint inference (Eqs. 7-8) and the DQN paths consume arrays
whose invariants the type system cannot express: the ``|O| x |W|`` answer
matrix, row-stochastic confusion matrices, finite Q-vectors.  A shape or
probability drift here produces plausible-but-wrong labels rather than a
crash, so every *public entry point* into those packages that accepts an
array-like contract-bearing argument must show evidence of validation:
a ``check_*`` call (:mod:`repro.utils.validation`), a ``_validate*``
helper, an explicit ``raise``, or a :mod:`repro.analysis.contracts`
decorator.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.lint.engine import Finding, LintContext, LintRule, register_rule
from repro.analysis.lint.rules._ast_utils import (
    all_parameters,
    annotation_text,
    decorator_name,
    is_public,
    iter_functions,
)

#: Packages whose public API carries array contracts.
_SCOPED_PACKAGES = ("inference", "rl", "core")

#: Parameter names that carry an array contract in this codebase.
_ARRAY_PARAM_NAMES = {
    "answers", "features", "action_features", "next_features",
    "matrix", "mat", "counts", "proba", "posteriors", "q_values",
    "confusion", "confusions", "targets", "scores", "vec",
}

#: Annotation fragments that mark a parameter as array-like.
_ARRAY_ANNOTATIONS = ("ndarray", "ArrayLike", "AnswerMap")

#: Decorators that delegate validation to the runtime contract layer.
_CONTRACT_DECORATORS = {"shaped", "row_stochastic", "prob_simplex"}

#: Methods always considered entry points of a public class.
_CONSTRUCTORS = {"__init__", "__post_init__", "__call__"}


def _contract_params(fn) -> list:
    names = []
    for param in all_parameters(fn):
        if param.arg in ("self", "cls"):
            continue
        annotation = annotation_text(param.annotation)
        if param.arg in _ARRAY_PARAM_NAMES or any(
            fragment in annotation for fragment in _ARRAY_ANNOTATIONS
        ):
            names.append(param.arg)
    return names


def _has_validation_evidence(fn) -> bool:
    for deco in fn.decorator_list:
        if decorator_name(deco) in _CONTRACT_DECORATORS:
            return True
    for node in ast.walk(fn):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = ""
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name.startswith(("check_", "validate", "_validate")):
                return True
    return False


def _is_entry_point(fn, cls: Optional[ast.ClassDef]) -> bool:
    if cls is not None and not is_public(cls.name):
        return False
    if is_public(fn.name):
        return True
    return cls is not None and fn.name in _CONSTRUCTORS


@register_rule
class ValidatedInputsRule(LintRule):
    """Flag unvalidated array-contract parameters on public entry points."""

    rule_id = "REPRO003"
    severity = "error"
    description = (
        "public inference/rl/core functions must validate array inputs "
        "(repro.utils.validation or repro.analysis.contracts)"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        """Yield this rule's findings for one parsed module."""
        if not ctx.in_package(*_SCOPED_PACKAGES):
            return
        seen_nested = set()
        for fn, cls in iter_functions(ctx.tree):
            # Skip nested defs: only module/class level defs are entry points.
            if id(fn) in seen_nested:
                continue
            for inner, _ in iter_functions(fn):
                seen_nested.add(id(inner))
            if not _is_entry_point(fn, cls):
                continue
            params = _contract_params(fn)
            if not params or _has_validation_evidence(fn):
                continue
            where = f"{cls.name}.{fn.name}" if cls is not None else fn.name
            yield self.finding(
                ctx, fn,
                f"public function '{where}' takes array-contract parameter(s) "
                f"{', '.join(repr(p) for p in params)} but shows no input "
                f"validation (use repro.utils.validation or a contracts "
                f"decorator)",
            )
