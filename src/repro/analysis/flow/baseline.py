"""Finding baselines: ratchet semantics for the flow analyzer.

A baseline is a committed JSON file recording the findings a team has
consciously deferred.  The CLI compares a fresh run against it and only
*new* findings fail the build (``--fail-on-new``), so the analyzer can
land with known debt without blocking CI, while the debt itself stays
visible (and :mod:`ROADMAP.md` tracks burning it down).

Keys are line-number-free — ``rule | relative path | message`` — so
unrelated edits that shift code down a file do not invalidate the
baseline, while moving/fixing the flagged code does.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.lint.engine import Finding
from repro.exceptions import ConfigurationError

#: Filename auto-discovered by walking up from the analyzed paths.
BASELINE_FILENAME = ".repro-flow-baseline.json"

_FORMAT_VERSION = 1


def finding_key(finding: Finding, root: Path) -> str:
    """Stable identity of a finding, independent of its line number."""
    try:
        rel = Path(finding.path).resolve().relative_to(root.resolve())
    except ValueError:
        rel = Path(finding.path)
    return f"{finding.rule_id}|{rel.as_posix()}|{finding.message}"


def discover_baseline(paths: Sequence[str]) -> Optional[Path]:
    """Walk up from the first analyzed path looking for the baseline file.

    Returns the nearest :data:`BASELINE_FILENAME` on the way to the
    filesystem root, or ``None`` — which makes ``python -m repro.analysis
    flow src/repro`` honour the repository's committed baseline without
    any flag, exactly like ``.gitignore`` discovery.
    """
    if not paths:
        return None
    start = Path(paths[0]).resolve()
    if start.is_file():
        start = start.parent
    for directory in [start] + list(start.parents):
        candidate = directory / BASELINE_FILENAME
        if candidate.is_file():
            return candidate
    return None


def write_baseline(path: Path, findings: Iterable[Finding]) -> None:
    """Serialise ``findings`` as the new baseline at ``path`` (atomic)."""
    root = path.resolve().parent
    keys = sorted({finding_key(f, root) for f in findings})
    payload = {
        "version": _FORMAT_VERSION,
        "comment": (
            "Accepted repro-flow findings; regenerate with "
            "`python -m repro.analysis flow <paths> --write-baseline`. "
            "New findings not listed here fail --fail-on-new."
        ),
        "findings": keys,
    }
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    os.replace(tmp, path)


def load_baseline(path: Path) -> Set[str]:
    """The set of accepted finding keys stored at ``path``."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as err:
        raise ConfigurationError(f"cannot read baseline {path}: {err}") from err
    if not isinstance(payload, dict) or "findings" not in payload:
        raise ConfigurationError(
            f"baseline {path} is not a repro-flow baseline document"
        )
    version = payload.get("version")
    if version != _FORMAT_VERSION:
        raise ConfigurationError(
            f"baseline {path} has unsupported version {version!r}"
        )
    keys = payload["findings"]
    if not isinstance(keys, list) or not all(isinstance(k, str) for k in keys):
        raise ConfigurationError(f"baseline {path}: 'findings' must be strings")
    return set(keys)


def split_by_baseline(
    findings: Sequence[Finding], baseline: Set[str], root: Path
) -> Tuple[List[Finding], List[Finding]]:
    """Partition findings into ``(new, baselined)`` against ``baseline``."""
    new: List[Finding] = []
    accepted: List[Finding] = []
    for finding in findings:
        if finding_key(finding, root) in baseline:
            accepted.append(finding)
        else:
            new.append(finding)
    return new, accepted
