"""RNG provenance engine: REPRO007, REPRO008, REPRO009.

Reproducibility in this codebase rests on one convention: every
stochastic draw comes from a :class:`numpy.random.Generator` that traces
back to an explicit seed through ``repro.utils.rng.as_rng`` /
``spawn_rngs`` / ``Generator.spawn``.  Three things silently break that
chain, and each gets a rule:

* **REPRO007 — unseeded generator construction.**  ``default_rng()``
  with no argument (or a literal ``None``) mints a fresh OS-entropy
  stream, so two identical runs diverge.  The flow pass follows the
  indirect forms the single-module linter cannot: a dataclass
  ``field(default_factory=...)`` whose factory — directly, via a lambda,
  or via a project helper function — bottoms out in an unseeded
  constructor, and call/parameter defaults resolved through imports.
* **REPRO008 — global numpy RNG state escaping into dataflow.**
  Binding the ``np.random`` *module object* to a variable, passing it as
  an argument, or calling ``np.random.seed``/``set_state``/``get_state``
  reintroduces process-global state that REPRO001 only catches at direct
  call sites.
* **REPRO009 — one stream shared across phases.**  Handing the *same*
  generator variable to two or more distinct components couples their
  draw sequences: adding one draw in component A silently perturbs
  component B.  Derive child streams with ``spawn_rngs`` /
  ``Generator.spawn`` instead.

The blessed coercion point ``repro.utils.rng`` is exempt from REPRO007 —
``as_rng(None)`` *is* the documented "give me an arbitrary stream"
escape hatch, and flagging its implementation would flag the cure.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from repro.analysis.lint.engine import Finding
from repro.analysis.flow.project import (
    ModuleInfo,
    Project,
    bound_names,
    call_keyword,
    enclosing_scopes,
    iter_scope_nodes,
)

#: Fully qualified constructors that mint a generator from a seed argument.
_GENERATOR_CONSTRUCTORS = {
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "repro.utils.rng.as_rng",
}

#: Callables that legitimately *receive* a stream without "consuming a phase".
_COERCION_FUNCTIONS = {
    "repro.utils.rng.as_rng",
    "repro.utils.rng.spawn_rngs",
    "isinstance",
    "id",
    "repr",
    "str",
}

#: Parameter names that mean "this argument is an RNG stream".
RNG_PARAM_NAMES = {"rng", "_rng", "seed", "generator", "random_state"}

#: The module whose job is to construct generators from loose seeds.
_EXEMPT_MODULES = {"repro.utils.rng"}


def _is_none(node: Optional[ast.expr]) -> bool:
    return node is None or (
        isinstance(node, ast.Constant) and node.value is None
    )


def _finding(rule_id: str, module: ModuleInfo, node: ast.AST,
             message: str) -> Finding:
    return Finding(
        path=module.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0) + 1,
        rule_id=rule_id,
        message=message,
        severity="error",
    )


# ----------------------------------------------------------------------
# REPRO007 — unseeded generator construction
# ----------------------------------------------------------------------
def _unseeded_call(module: ModuleInfo, node: ast.expr) -> Optional[str]:
    """Constructor name if ``node`` is an unseeded generator call."""
    if not isinstance(node, ast.Call):
        return None
    target = module.resolve(node.func)
    if target not in _GENERATOR_CONSTRUCTORS:
        return None
    seed = node.args[0] if node.args else call_keyword(node, "seed")
    if seed is None:
        for keyword in node.keywords:  # as_rng's parameter is named 'seed'
            if keyword.arg in RNG_PARAM_NAMES:
                seed = keyword.value
    if _is_none(seed):
        return target
    return None


def _factory_is_unseeded(project: Project, module: ModuleInfo,
                         factory: ast.expr,
                         _seen: Optional[Set[str]] = None) -> Optional[str]:
    """Whether a ``default_factory`` expression yields an unseeded stream.

    Handles the three indirections: a bare reference to a constructor
    (called with zero arguments by the dataclass machinery), a lambda
    whose body constructs unseeded, and a project function whose return
    expressions do.  The walk is unbounded in depth but cycle-guarded:
    each project function is followed at most once per chain, so
    mutually recursive factories terminate quietly.
    """
    seen = set() if _seen is None else _seen

    def follow(record) -> Optional[str]:
        name = record.full_name()
        if name in seen:
            return None
        seen.add(name)
        for expr in project.return_expressions(record):
            verdict = _factory_is_unseeded(project, record.module, expr, seen)
            if verdict is None and isinstance(expr, ast.Call):
                verdict = _unseeded_call(record.module, expr)
            if verdict is not None:
                return verdict
        return None

    # Bare reference: dataclasses call it with no arguments.
    if isinstance(factory, (ast.Name, ast.Attribute)):
        target = module.resolve(factory)
        if target in _GENERATOR_CONSTRUCTORS:
            return target
        record = project.lookup_function(module, factory)
        if record is not None and not record.parameters():
            return follow(record)
        return None
    if isinstance(factory, ast.Lambda):
        return _factory_is_unseeded(project, module, factory.body, seen)
    if isinstance(factory, ast.Call):
        direct = _unseeded_call(module, factory)
        if direct is not None:
            return direct
        record = project.lookup_function(module, factory.func)
        if record is not None and not factory.args and not factory.keywords:
            return follow(record)
    return None


def _check_unseeded(project: Project, module: ModuleInfo) -> Iterator[Finding]:
    if module.name in _EXEMPT_MODULES:
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        target = _unseeded_call(module, node)
        if target is not None:
            yield _finding(
                "REPRO007", module, node,
                f"unseeded '{target.rsplit('.', 1)[-1]}()' mints a fresh "
                f"entropy stream; thread a seed via repro.utils.rng.as_rng "
                f"or spawn_rngs",
            )
            continue
        # field(default_factory=...) resolving to an unseeded factory.
        if module.resolve(node.func) in ("dataclasses.field", "field"):
            factory = call_keyword(node, "default_factory")
            if factory is None:
                continue
            verdict = _factory_is_unseeded(project, module, factory)
            if verdict is not None:
                yield _finding(
                    "REPRO007", module, node,
                    f"default_factory resolves to unseeded "
                    f"'{verdict.rsplit('.', 1)[-1]}'; construction order "
                    f"then decides the stream — accept an explicit "
                    f"Generator instead",
                )


# ----------------------------------------------------------------------
# REPRO008 — the np.random module object escaping into dataflow
# ----------------------------------------------------------------------
_GLOBAL_STATE_CALLS = {"seed", "set_state", "get_state"}


def _is_np_random_module(module: ModuleInfo, node: ast.expr) -> bool:
    return module.resolve(node) == "numpy.random"


def _check_global_state(module: ModuleInfo) -> Iterator[Finding]:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            target = module.resolve(node.func)
            if target is not None and target.startswith("numpy.random."):
                tail = target.rsplit(".", 1)[-1]
                if tail in _GLOBAL_STATE_CALLS:
                    yield _finding(
                        "REPRO008", module, node,
                        f"'np.random.{tail}' manipulates process-global RNG "
                        f"state; results then depend on import/call order",
                    )
            for arg in list(node.args) + [k.value for k in node.keywords]:
                if _is_np_random_module(module, arg):
                    yield _finding(
                        "REPRO008", module, arg,
                        "the global 'np.random' module object is passed as "
                        "an argument; pass a seeded np.random.Generator",
                    )
        elif isinstance(node, ast.Assign):
            if _is_np_random_module(module, node.value):
                # ``import numpy.random`` style aliases are import nodes,
                # not assigns, so anything here is a real rebinding.
                yield _finding(
                    "REPRO008", module, node,
                    "binding the global 'np.random' module as a value "
                    "smuggles process-global state past the linter; bind "
                    "a seeded Generator instead",
                )
        elif isinstance(node, ast.Return) and node.value is not None:
            if _is_np_random_module(module, node.value):
                yield _finding(
                    "REPRO008", module, node,
                    "returning the global 'np.random' module hands callers "
                    "process-global state; return a seeded Generator",
                )


# ----------------------------------------------------------------------
# REPRO009 — one stream handed to several components
# ----------------------------------------------------------------------
def _rng_locals(module: ModuleInfo, fn: ast.AST) -> Set[str]:
    """Names in ``fn``'s own scope that (likely) hold a generator stream.

    A parameter named like an RNG, or a local assigned from a generator
    constructor.  Children of ``spawn_rngs``/``.spawn`` are *distinct*
    streams, so subscripted/unpacked spawn results are excluded — handing
    two different children to two components is the sanctioned pattern.
    Nested defs/lambdas track their own locals (and capture this scope's
    via :func:`_visible_streams`).
    """
    names: Set[str] = set()
    args = getattr(fn, "args", None)
    if args is not None:
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if arg.arg in RNG_PARAM_NAMES:
                names.add(arg.arg)
    for node in iter_scope_nodes(fn):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        value = node.value
        if isinstance(value, ast.Call):
            resolved = module.resolve(value.func)
            if resolved in _GENERATOR_CONSTRUCTORS:
                names.add(target.id)
            elif resolved == "repro.utils.rng.spawn_rngs" or (
                isinstance(value.func, ast.Attribute)
                and value.func.attr == "spawn"
            ):
                names.discard(target.id)  # a *list* of independent children
        elif isinstance(value, ast.Name) and value.id in names:
            names.add(target.id)
    return names


def _visible_streams(module: ModuleInfo, fn: ast.AST) -> Set[str]:
    """Streams ``fn`` can hand off: its own plus ones captured by closure.

    A nested def/lambda that closes over an enclosing function's stream
    shares that *one* stream with whatever else uses it — exactly the
    hand-off the PR 5 analyzer could not see.  Names the nested scope
    re-binds locally shadow the capture and are excluded.
    """
    names = _rng_locals(module, fn)
    shadowed = bound_names(fn) - names
    for enclosing in enclosing_scopes(module, fn):
        names |= _rng_locals(module, enclosing) - shadowed
    return names


def _in_nested_scope(module: ModuleInfo, node: ast.AST, fn: ast.AST) -> bool:
    """Whether ``node`` sits inside a lambda/def nested under ``fn``.

    Hand-offs inside a nested scope (e.g. a dispatch table of lambdas,
    of which one is called per invocation) execute under that scope's
    own control flow, so the enclosing function's scan skips them.
    """
    for ancestor in module.ancestors(node):
        if ancestor is fn:
            return False
        if isinstance(ancestor, (ast.Lambda, ast.FunctionDef,
                                 ast.AsyncFunctionDef)):
            return True
    return False


def _branch_arms(module: ModuleInfo, node: ast.AST,
                 fn: ast.AST) -> Dict[int, str]:
    """Map each ``if`` ancestor of ``node`` (within ``fn``) to its arm."""
    arms: Dict[int, str] = {}
    child = node
    for ancestor in module.ancestors(node):
        if isinstance(ancestor, ast.If):
            in_body = any(
                child is stmt or any(child is d for d in ast.walk(stmt))
                for stmt in ancestor.body
            )
            arms[id(ancestor)] = "body" if in_body else "orelse"
        if ancestor is fn:
            break
        child = ancestor
    return arms


def _in_return(module: ModuleInfo, node: ast.AST, fn: ast.AST) -> bool:
    """Whether ``node`` is part of a ``return`` statement inside ``fn``."""
    for ancestor in module.ancestors(node):
        if isinstance(ancestor, ast.Return):
            return True
        if ancestor is fn:
            break
    return False


def _mutually_exclusive(a: "_Consumer", b: "_Consumer") -> bool:
    """Whether at most one of the two hand-offs can run per invocation."""
    for if_id, arm in a.arms.items():
        other = b.arms.get(if_id)
        if other is not None and other != arm:
            return True  # different arms of one if/elif/else
    # Two returns: the first one taken ends the function.
    return a.in_return and b.in_return


class _Consumer:
    """One call site receiving a stream, with its control-flow context."""

    def __init__(self, module: ModuleInfo, fn: ast.AST, call: ast.Call,
                 label: str) -> None:
        self.call = call
        self.label = label
        self.arms = _branch_arms(module, call, fn)
        self.in_return = _in_return(module, call, fn)


def _consumers(module: ModuleInfo, project: Project, fn: ast.AST,
               name: str) -> List[_Consumer]:
    """Call sites inside ``fn`` that receive local ``name`` as an RNG.

    A consumer is a call taking the variable as a keyword named like an
    RNG, or positionally where the resolved project callee's parameter
    at that position is named like an RNG.  Calls to the coercion
    helpers and methods *on* the stream itself (``rng.integers``) are
    draws by the owner, not hand-offs.
    """
    consumers: List[_Consumer] = []
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        if _in_nested_scope(module, node, fn):
            continue
        resolved = module.resolve(node.func)
        if resolved in _COERCION_FUNCTIONS:
            continue
        if isinstance(node.func, ast.Attribute):
            base = node.func.value
            if isinstance(base, ast.Name) and base.id == name:
                continue  # a draw on the stream, not a hand-off
        callee_label = resolved or (
            node.func.attr if isinstance(node.func, ast.Attribute)
            else getattr(node.func, "id", "<call>")
        )
        matched = False
        for keyword in node.keywords:
            if (keyword.arg in RNG_PARAM_NAMES
                    and isinstance(keyword.value, ast.Name)
                    and keyword.value.id == name):
                matched = True
        if not matched:
            record = project.lookup_function(module, node.func)
            if record is not None:
                params = record.parameters()
                for index, arg in enumerate(node.args):
                    if (index < len(params)
                            and params[index] in RNG_PARAM_NAMES
                            and isinstance(arg, ast.Name)
                            and arg.id == name):
                        matched = True
        if matched:
            consumers.append(_Consumer(module, fn, node, callee_label))
    return consumers


def _shared_in_scope(project: Project, module: ModuleInfo, fn: ast.AST,
                     where: str) -> Iterator[Finding]:
    """Findings for one scope, captured streams included."""
    for name in sorted(_visible_streams(module, fn)):
        consumers = _consumers(module, project, fn, name)
        shared: Dict[str, ast.Call] = {}
        for i, first in enumerate(consumers):
            for second in consumers[i + 1:]:
                if first.label == second.label:
                    continue  # one component, e.g. called in a loop
                if _mutually_exclusive(first, second):
                    continue  # dispatch arms; only one runs
                shared.setdefault(first.label, first.call)
                shared.setdefault(second.label, second.call)
        if len(shared) >= 2:
            labels = ", ".join(sorted(shared))
            anchor = min(shared.values(), key=lambda c: c.lineno)
            yield _finding(
                "REPRO009", module, anchor,
                f"in {where}: stream '{name}' is handed to "
                f"{len(shared)} components ({labels}); adding a draw "
                f"in one perturbs the others — derive children via "
                f"spawn_rngs/Generator.spawn",
            )


def _check_shared_stream(project: Project,
                         module: ModuleInfo) -> Iterator[Finding]:
    for record in (r for rs in project.functions_by_short.values()
                   for r in rs if r.module is module):
        fn = record.node
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield from _shared_in_scope(project, module, fn, record.qualname)
    # Lambdas are scopes of their own; a dispatch-table lambda that
    # closes over one stream and feeds it to two components is a
    # hand-off the function scan above deliberately skips.
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Lambda):
            enclosing = enclosing_scopes(module, node)
            owner = next(
                (getattr(scope, "name", "<lambda>") for scope in enclosing
                 if not isinstance(scope, ast.Lambda)),
                "<module>",
            )
            yield from _shared_in_scope(
                project, module, node, f"{owner}.<lambda>"
            )


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def check_rng(project: Project) -> Iterator[Finding]:
    """Run the three RNG provenance rules over the whole project."""
    for module in project.modules:
        yield from _check_unseeded(project, module)
        yield from _check_global_state(module)
        yield from _check_shared_stream(project, module)
