"""Static shape-contract verification: REPRO010.

PR 1's ``@shaped`` decorators assert the paper's array orientations at
*runtime*.  This pass promotes those decorations to **interface specs**
and verifies them *statically*: the symbolic dimension names
(``n_objects``, ``n_workers``, ``n_actions``, ...) declared in ``nn/``,
``rl/`` and ``inference/`` are propagated through assignments and call
sites, and a call that passes an array whose known symbolic shape is a
*permutation* of the declared one — the classic transposed
``(n_workers, n_objects)`` where ``(n_objects, n_workers)`` is declared
— is rejected before any test runs.

The propagation is deliberately modest and sound-by-silence:

* a variable assigned from a call to a ``@shaped(result=...)`` function
  adopts the declared result dims;
* a parameter of a ``@shaped``-decorated function adopts its declared
  dims inside that function's body;
* ``x.T`` / ``np.transpose(x)`` reverse known dims; plain name
  assignment copies them; elementwise arithmetic (``x + y``, ``x * 2``)
  preserves them; tuple unpacking (``a, b = f(x)``, ``a, b = x, y.T``)
  propagates elementwise through the callee's return tuples;
* container round-trips keep dims alive: ``list(x)`` / ``tuple(x)``
  preserve the element structure numpy sees when the value is consumed
  as an array again, and storing under a *constant* subscript key
  (``cache["w"] = x.T`` ... ``f(cache["w"])``) is tracked like a named
  binding — as is building the container in one literal
  (``cache = {"w": x.T}``, ``pair = [x, y.T]``), whose constant-keyed
  entries land in the same slots; rebinding the container wholesale
  forgets its entries;
* anything else forgets them.

A mismatch is only reported when *both* sides are known and definitely
incompatible: different arity, or the same symbol multiset in a
different order.  Two functions naming the same dimension differently
(``n`` vs ``n_samples``) stay silent — there is no cross-naming oracle.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.contracts import parse_shape
from repro.analysis.lint.engine import Finding
from repro.exceptions import ConfigurationError
from repro.analysis.flow.project import (
    FunctionRecord,
    ModuleInfo,
    Project,
)

Dims = Tuple[str, ...]

#: Resolutions of the decorator that declares a shape contract.
_SHAPED_NAMES = {
    "repro.analysis.contracts.shaped",
    "repro.analysis.shaped",
    "shaped",
}


@dataclass
class ShapeSpec:
    """The declared shape interface of one decorated function."""

    record: FunctionRecord
    params: Dict[str, Dims] = field(default_factory=dict)
    result: Optional[Dims] = None

    def full_name(self) -> str:
        return self.record.full_name()


def _parse_spec_string(node: ast.expr) -> Optional[Dims]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            return parse_shape(node.value)
        except ConfigurationError:
            return None
    return None


def _first_checkable_param(record: FunctionRecord) -> Optional[str]:
    params = record.parameters()
    return params[0] if params else None


def collect_specs(project: Project) -> Dict[str, List[ShapeSpec]]:
    """Scan every module for ``@shaped`` decorations, keyed by short name."""
    specs: Dict[str, List[ShapeSpec]] = {}
    for records in project.functions_by_short.values():
        for record in records:
            node = record.node
            for decorator in getattr(node, "decorator_list", []):
                if not isinstance(decorator, ast.Call):
                    continue
                resolved = record.module.resolve(decorator.func)
                if resolved not in _SHAPED_NAMES:
                    continue
                spec = ShapeSpec(record=record)
                if decorator.args:
                    dims = _parse_spec_string(decorator.args[0])
                    first = _first_checkable_param(record)
                    if dims is not None and first is not None:
                        spec.params[first] = dims
                for keyword in decorator.keywords:
                    dims = _parse_spec_string(keyword.value)
                    if dims is None or keyword.arg is None:
                        continue
                    if keyword.arg == "result":
                        spec.result = dims
                    elif keyword.arg != "enabled":
                        spec.params[keyword.arg] = dims
                if spec.params or spec.result is not None:
                    specs.setdefault(record.short_name, []).append(spec)
    return specs


def _lookup_spec(specs: Dict[str, List[ShapeSpec]], module: ModuleInfo,
                 func: ast.expr) -> Optional[ShapeSpec]:
    """The unique spec a call target resolves to, else ``None``."""
    if isinstance(func, ast.Attribute):
        short = func.attr
    elif isinstance(func, ast.Name):
        short = func.id
    else:
        return None
    candidates = specs.get(short, [])
    if len(candidates) == 1:
        return candidates[0]
    if not candidates:
        return None
    full = module.resolve(func)
    for candidate in candidates:
        if full is not None and candidate.full_name().endswith(full):
            return candidate
    return None


# ----------------------------------------------------------------------
# Per-function symbolic propagation
# ----------------------------------------------------------------------
def _transposed(dims: Dims) -> Dims:
    return tuple(reversed(dims))


#: Builtin container constructors that preserve the element structure an
#: array regains when the value is consumed as an array again:
#: ``np.asarray(list(x))`` has exactly ``x``'s shape, so a transposed
#: matrix laundered through ``list(...)`` is still transposed.
_SHAPE_PRESERVING_CONTAINERS = ("list", "tuple")


def _const_subscript_key(node: ast.expr) -> Optional[str]:
    """The environment key for ``name[<constant>]``, else ``None``.

    Constant-key subscripts (``cache["w"]``, ``weights[0]``) behave like
    named slots, so their dims are tracked under a composite key; the
    bracket in the key keeps it disjoint from every plain variable name.
    """
    if not isinstance(node, ast.Subscript):
        return None
    base = node.value
    if not isinstance(base, ast.Name):
        return None
    key = node.slice
    if isinstance(key, ast.Constant) and isinstance(key.value, (str, int)) \
            and not isinstance(key.value, bool):
        return f"{base.id}[{key.value!r}]"
    return None


def _forget_container_entries(env: Dict[str, Dims], name: str) -> None:
    """Drop every tracked ``name[...]`` slot when ``name`` is rebound."""
    prefix = f"{name}["
    for key in [k for k in env if k.startswith(prefix)]:
        del env[key]


def _container_literal_entries(
    module: ModuleInfo, specs: Dict[str, List[ShapeSpec]],
    env: Dict[str, Dims], name: str, value: ast.expr,
) -> Optional[Dict[str, Dims]]:
    """Tracked slots for ``name = {literal}`` / ``name = [literal]``.

    A dict literal with constant string/int keys and a list/tuple literal
    both store their elements under the same constant-subscript keys a
    later ``name["w"]`` / ``name[0]`` read resolves through, so dims flow
    through literal construction exactly as through per-slot assignment.
    Returns ``None`` when ``value`` is not a trackable container literal;
    entries whose dims are unknown are simply absent (sound-by-silence).
    """
    entries: Dict[str, Dims] = {}
    if isinstance(value, ast.Dict):
        for key, elt in zip(value.keys, value.values):
            if key is None:  # ``**spread`` — contents unknown
                continue
            if not (isinstance(key, ast.Constant)
                    and isinstance(key.value, (str, int))
                    and not isinstance(key.value, bool)):
                continue
            dims = _expr_dims(module, specs, env, elt)
            if dims is not None:
                entries[f"{name}[{key.value!r}]"] = dims
        return entries
    if isinstance(value, (ast.List, ast.Tuple)):
        for index, elt in enumerate(value.elts):
            if isinstance(elt, ast.Starred):
                return entries  # later indices shift by an unknown amount
            dims = _expr_dims(module, specs, env, elt)
            if dims is not None:
                entries[f"{name}[{index!r}]"] = dims
        return entries
    return None


def _is_scalar_expr(node: ast.expr) -> bool:
    """A literal number (possibly signed): broadcasts without reshaping."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, (int, float, complex)) \
            and not isinstance(node.value, bool)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op,
                                                    (ast.UAdd, ast.USub)):
        return _is_scalar_expr(node.operand)
    return False


def _expr_dims(module: ModuleInfo, specs: Dict[str, List[ShapeSpec]],
               env: Dict[str, Dims], node: ast.expr) -> Optional[Dims]:
    """Known symbolic dims of an expression, or ``None``."""
    if isinstance(node, ast.Name):
        return env.get(node.id)
    subscript_key = _const_subscript_key(node)
    if subscript_key is not None:
        return env.get(subscript_key)
    if isinstance(node, ast.Attribute) and node.attr == "T":
        inner = _expr_dims(module, specs, env, node.value)
        return _transposed(inner) if inner is not None else None
    if isinstance(node, ast.BinOp) and not isinstance(node.op, ast.MatMult):
        # Elementwise arithmetic preserves shape; scalars broadcast.
        left = _expr_dims(module, specs, env, node.left)
        right = _expr_dims(module, specs, env, node.right)
        if left is not None and (left == right or _is_scalar_expr(node.right)):
            return left
        if right is not None and left is None \
                and _is_scalar_expr(node.left):
            return right
        return None
    if isinstance(node, ast.Call):
        resolved = module.resolve(node.func)
        if resolved in ("numpy.transpose", "numpy.matrix_transpose"):
            if node.args:
                inner = _expr_dims(module, specs, env, node.args[0])
                return _transposed(inner) if inner is not None else None
            return None
        if resolved in ("numpy.ascontiguousarray", "numpy.asarray",
                        "numpy.array", "numpy.copy"):
            if len(node.args) == 1:
                return _expr_dims(module, specs, env, node.args[0])
            return None
        if (isinstance(node.func, ast.Name)
                and node.func.id in _SHAPE_PRESERVING_CONTAINERS
                and resolved in (None, node.func.id)):
            if len(node.args) == 1 and not node.keywords:
                return _expr_dims(module, specs, env, node.args[0])
            return None
        spec = _lookup_spec(specs, module, node.func)
        if spec is not None:
            return spec.result
    return None


def _incompatible(passed: Dims, declared: Dims) -> Optional[str]:
    """A human-readable clash between two known dim tuples, or ``None``."""
    if len(passed) != len(declared):
        return (
            f"{len(passed)}-D ({', '.join(passed)}) passed where "
            f"{len(declared)}-D ({', '.join(declared)}) is declared"
        )
    symbolic_passed = [d for d in passed if not d.isdigit() and d != "_"]
    symbolic_declared = [d for d in declared if not d.isdigit() and d != "_"]
    if (passed != declared
            and sorted(symbolic_passed) == sorted(symbolic_declared)
            and len(set(symbolic_passed)) > 1
            and len(symbolic_passed) == len(passed)):
        return (
            f"({', '.join(passed)}) passed where ({', '.join(declared)}) is "
            f"declared — the array is transposed"
        )
    return None


def _tuple_element_dims(project: Project, module: ModuleInfo,
                        specs: Dict[str, List[ShapeSpec]],
                        env: Dict[str, Dims], value: ast.expr,
                        n: int) -> Optional[List[Optional[Dims]]]:
    """Per-element dims of a tuple-valued expression, or ``None``.

    Handles the literal form ``a, b = x, y.T`` directly and the call
    form ``a, b = f(x)`` by evaluating every return tuple of the
    resolved callee under the callee's own declared parameter dims;
    disagreeing returns degrade elementwise to unknown.
    """
    if isinstance(value, ast.Tuple):
        if len(value.elts) != n:
            return None
        return [_expr_dims(module, specs, env, elt) for elt in value.elts]
    if isinstance(value, ast.Call):
        record = project.lookup_function(module, value.func)
        if record is None:
            return None
        callee_env: Dict[str, Dims] = {}
        for spec in specs.get(record.short_name, []):
            if spec.record is record:
                callee_env = dict(spec.params)
        returns = project.return_expressions(record)
        if not returns:
            return None
        dims: Optional[List[Optional[Dims]]] = None
        for ret in returns:
            if not (isinstance(ret, ast.Tuple) and len(ret.elts) == n):
                return None
            these = [_expr_dims(record.module, specs, callee_env, elt)
                     for elt in ret.elts]
            if dims is None:
                dims = these
            else:
                dims = [a if a == b else None for a, b in zip(dims, these)]
        return dims
    return None


def _check_function(project: Project, module: ModuleInfo,
                    record: FunctionRecord,
                    specs: Dict[str, List[ShapeSpec]]) -> Iterator[Finding]:
    fn = record.node
    if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return
    env: Dict[str, Dims] = {}
    own = [s for s in specs.get(record.short_name, []) if s.record is record]
    if own:
        env.update(own[0].params)

    class _Visitor(ast.NodeVisitor):
        def __init__(self) -> None:
            self.findings: List[Finding] = []

        def visit_Assign(self, node: ast.Assign) -> None:
            self.generic_visit(node)
            if len(node.targets) != 1:
                return
            target = node.targets[0]
            if isinstance(target, ast.Name):
                _forget_container_entries(env, target.id)
                entries = _container_literal_entries(
                    module, specs, env, target.id, node.value
                )
                if entries is not None:
                    env.pop(target.id, None)
                    env.update(entries)
                    return
                dims = _expr_dims(module, specs, env, node.value)
                if dims is not None:
                    env[target.id] = dims
                else:
                    env.pop(target.id, None)
            elif (subscript_key := _const_subscript_key(target)) is not None:
                dims = _expr_dims(module, specs, env, node.value)
                if dims is not None:
                    env[subscript_key] = dims
                else:
                    env.pop(subscript_key, None)
            elif isinstance(target, ast.Tuple) and all(
                isinstance(elt, ast.Name) for elt in target.elts
            ):
                elements = _tuple_element_dims(
                    project, module, specs, env, node.value, len(target.elts)
                ) or [None] * len(target.elts)
                for elt, dims in zip(target.elts, elements):
                    if dims is not None:
                        env[elt.id] = dims
                    else:
                        env.pop(elt.id, None)

        def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
            self.generic_visit(node)
            if isinstance(node.target, ast.Name) and node.value is not None:
                _forget_container_entries(env, node.target.id)
                entries = _container_literal_entries(
                    module, specs, env, node.target.id, node.value
                )
                if entries is not None:
                    env.pop(node.target.id, None)
                    env.update(entries)
                    return
                dims = _expr_dims(module, specs, env, node.value)
                if dims is not None:
                    env[node.target.id] = dims
                else:
                    env.pop(node.target.id, None)

        def visit_Call(self, node: ast.Call) -> None:
            self.generic_visit(node)
            spec = _lookup_spec(specs, module, node.func)
            if spec is None or spec.record is record:
                return
            callee = spec.record
            params = callee.parameters()
            pairs: List[Tuple[str, ast.expr]] = []
            offset = 0
            if callee.is_method and not isinstance(node.func, ast.Attribute):
                offset = 0  # unbound call with explicit self is not produced
            for index, arg in enumerate(node.args):
                if isinstance(arg, ast.Starred):
                    break
                pidx = index + offset
                if pidx < len(params):
                    pairs.append((params[pidx], arg))
            for keyword in node.keywords:
                if keyword.arg is not None:
                    pairs.append((keyword.arg, keyword.value))
            for param_name, arg in pairs:
                declared = spec.params.get(param_name)
                if declared is None:
                    continue
                passed = _expr_dims(module, specs, env, arg)
                if passed is None:
                    continue
                clash = _incompatible(passed, declared)
                if clash is not None:
                    self.findings.append(
                        Finding(
                            path=module.path,
                            line=arg.lineno,
                            col=arg.col_offset + 1,
                            rule_id="REPRO010",
                            message=(
                                f"argument '{param_name}' of "
                                f"{callee.qualname}: {clash}"
                            ),
                            severity="error",
                        )
                    )

    visitor = _Visitor()
    for statement in fn.body:
        visitor.visit(statement)
    yield from visitor.findings


def check_shapes(project: Project) -> Iterator[Finding]:
    """Verify every resolvable call site against the ``@shaped`` specs."""
    specs = collect_specs(project)
    for record in project.functions_by_full.values():
        yield from _check_function(project, record.module, record, specs)
