"""Parallel-safety rules: REPRO013-018.

The sharded experiment engine (ROADMAP: ``repro bench --parallel N``)
fans sweep points out over ``multiprocessing`` workers and promises
bit-identical per-shard results.  Everything that silently breaks that
promise is *shared state the type system cannot see*: module globals a
forked child inherits, a parent RNG stream pickled into two workers,
closures that only explode inside the pool, in-place mutation aliased
across a shard boundary, float reductions whose value depends on merge
order, and workers that read their environment instead of their
payload.  Each hazard gets a static rule:

* **REPRO013 — module-global mutable state written after import time.**
  A dict/list/set/array bound at module scope and mutated (or rebound
  via ``global``) from a function body is per-process state: a fork
  clones it, a spawn resets it, and either way shards diverge from the
  serial run.  Deliberate per-process state is annotated on its
  defining line with ``# repro: process-local — <why it is safe>``;
  anything unannotated is a finding.
* **REPRO014 — a parent RNG stream crossing a process boundary.**
  Handing one ``Generator`` to a worker (captured by the payload,
  passed as an argument, or pickled) forks its state: parent and child
  then replay the same draws.  Derive children (``spawn_rngs`` /
  ``Generator.spawn``) or pass plain seeds; both forms stay silent.
* **REPRO015 — unpicklable worker payloads.**  Lambdas, and closures
  over locks, open files, or generator expressions, reach the submit
  call site fine and explode only inside the worker.  Flagged at the
  submission, where the fix (a module-level function taking explicit
  arguments) is decided.
* **REPRO016 — in-place mutation read by another component.**  A callee
  that mutates a parameter (``+=``, ``x[...] = v``, ``.sort()``,
  ``x.attr = v``) while the caller hands the same object to a
  *different* component afterwards aliases state across what the
  sharded engine assumes are independent inputs.  Out-parameter
  accumulators handed repeatedly to one component stay silent.
* **REPRO017 — order-dependent reductions over unordered containers.**
  Float addition is not associative: accumulating over a set (hash
  order) or over a dict assembled by ``.update`` merges (merge order)
  yields shard-count-dependent results.  ``sorted(...)`` at the use
  site or ``math.fsum`` (exact, order-independent) are the recognised
  fixes.
* **REPRO018 — environment reads inside worker-reachable code.**
  ``os.environ``/``os.getenv``/``tempfile``/``os.getcwd`` inside any
  function reachable from a worker entry point makes the shard's result
  depend on the worker's inherited environment; thread explicit
  settings and paths through the payload instead.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.lint.engine import Finding
from repro.analysis.flow.project import (
    FunctionRecord,
    ModuleInfo,
    Project,
    bind_arguments,
    bound_names,
    call_keyword,
    enclosing_scopes,
    free_loads,
    iter_scope_nodes,
)
from repro.analysis.flow.rng import _GENERATOR_CONSTRUCTORS

#: Methods that mutate their receiver in place (list/set/dict/ndarray).
MUTATING_METHODS = {
    "append", "extend", "insert", "remove", "pop", "clear", "sort",
    "reverse", "update", "add", "discard", "setdefault", "popitem",
    "fill", "put", "resize", "itemset", "partition", "byteswap",
}

#: Parameter names that mean "this argument is a Generator" (note:
#: ``seed`` is deliberately absent — passing a plain seed across a
#: process boundary is the sanctioned pattern REPRO014 points at).
_GEN_PARAM_NAMES = {"rng", "_rng", "generator", "random_state"}

#: Attribute calls that hand work to another process.
_SUBMIT_METHODS = {
    "submit", "map", "map_async", "imap", "imap_unordered",
    "starmap", "starmap_async", "apply", "apply_async",
}

#: Constructors whose ``target=`` runs in a child process.
_PROCESS_CONSTRUCTORS = {
    "multiprocessing.Process",
    "multiprocessing.context.Process",
}

#: Serialisation entry points a payload must survive.
_PICKLERS = {
    "pickle.dumps", "pickle.dump",
    "cloudpickle.dumps", "cloudpickle.dump",
    "dill.dumps", "dill.dump",
}

#: Constructors whose result cannot cross a pickle boundary.
_LOCK_CONSTRUCTORS = {
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Event", "threading.Semaphore", "threading.BoundedSemaphore",
    "multiprocessing.Lock", "multiprocessing.RLock",
}

#: Environment/cwd/tempfile reads that make a worker's result depend on
#: its inherited process environment.
_ENV_READ_CALLS = {
    "os.getenv", "os.getcwd", "os.getcwdb",
    "os.environ.get", "os.environ.setdefault", "os.environ.copy",
    "tempfile.gettempdir", "tempfile.gettempprefix",
    "tempfile.mkstemp", "tempfile.mkdtemp",
    "tempfile.NamedTemporaryFile", "tempfile.TemporaryFile",
    "tempfile.SpooledTemporaryFile", "tempfile.TemporaryDirectory",
    "pathlib.Path.cwd",
}


def _finding(rule_id: str, module: ModuleInfo, node: ast.AST,
             message: str) -> Finding:
    return Finding(
        path=module.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0) + 1,
        rule_id=rule_id,
        message=message,
        severity="error",
    )


def _subscript_base(node: ast.expr) -> ast.expr:
    while isinstance(node, ast.Subscript):
        node = node.value
    return node


def _function_scopes(project: Project,
                     module: ModuleInfo) -> Iterator[FunctionRecord]:
    """Every function record defined in ``module``."""
    for records in project.functions_by_short.values():
        for record in records:
            if record.module is module and isinstance(
                record.node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                yield record


# ----------------------------------------------------------------------
# REPRO013 — module-global mutable state written after import time
# ----------------------------------------------------------------------
def _global_mutations(project: Project) -> Dict[str, Set[str]]:
    """Map each mutated module-global key to the functions mutating it."""
    mutations: Dict[str, Set[str]] = {}

    def note(module: ModuleInfo, name: str, local: Set[str],
             qualname: str) -> None:
        if name in local:
            return  # a shadowing local, not the module global
        record = project.resolve_global(module, name)
        if record is not None:
            mutations.setdefault(record.key(), set()).add(qualname)

    for module in project.modules:
        for record in _function_scopes(project, module):
            scope = record.node
            local = bound_names(scope)
            declared_global: Set[str] = set()
            for node in iter_scope_nodes(scope):
                if isinstance(node, ast.Global):
                    declared_global.update(node.names)
            for node in iter_scope_nodes(scope):
                if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    targets = (node.targets if isinstance(node, ast.Assign)
                               else [node.target])
                    for target in targets:
                        base = _subscript_base(target)
                        if not isinstance(base, ast.Name):
                            continue
                        is_item_write = isinstance(target, ast.Subscript)
                        is_rebinding = base.id in declared_global
                        if is_item_write or is_rebinding:
                            note(module, base.id, local, record.qualname)
                elif isinstance(node, ast.Delete):
                    for target in node.targets:
                        base = _subscript_base(target)
                        if isinstance(base, ast.Name) and isinstance(
                            target, ast.Subscript
                        ):
                            note(module, base.id, local, record.qualname)
                elif (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in MUTATING_METHODS
                        and isinstance(node.func.value, ast.Name)):
                    note(module, node.func.value.id, local, record.qualname)
    return mutations


def _check_module_globals(project: Project) -> Iterator[Finding]:
    mutations = _global_mutations(project)
    for key in sorted(mutations):
        record = project.module_globals[key]
        if record.process_local:
            continue  # deliberately per-process, justified at the definition
        writers = ", ".join(sorted(mutations[key]))
        yield _finding(
            "REPRO013", record.module, record.node,
            f"module-global '{record.name}' is written after import time "
            f"by {writers}; forked workers clone it and spawned workers "
            f"reset it, so shards diverge — refactor to explicit ownership "
            f"or annotate the definition '# repro: process-local — <why>'",
        )


# ----------------------------------------------------------------------
# Process-boundary submissions (shared by REPRO014/015/018)
# ----------------------------------------------------------------------
class Submission:
    """One call site that ships a payload to another process (or pickle)."""

    def __init__(self, call: ast.Call, payload: Optional[ast.expr],
                 extras: Sequence[ast.expr], label: str) -> None:
        self.call = call
        self.payload = payload
        self.extras = list(extras)
        self.label = label


def find_submissions(module: ModuleInfo, scope: ast.AST) -> List[Submission]:
    """Submission sites in ``scope``'s own scope (nested defs excluded)."""
    submissions: List[Submission] = []
    for node in iter_scope_nodes(scope):
        if not isinstance(node, ast.Call):
            continue
        resolved = module.resolve(node.func)
        if resolved in _PICKLERS:
            if node.args:
                submissions.append(Submission(
                    node, node.args[0], node.args[1:],
                    resolved.rsplit(".", 1)[-1] + "()",
                ))
        elif resolved in _PROCESS_CONSTRUCTORS:
            target = call_keyword(node, "target")
            extras = [call_keyword(node, "args"),
                      call_keyword(node, "kwargs")]
            submissions.append(Submission(
                node, target, [e for e in extras if e is not None],
                "Process(target=...)",
            ))
        elif (isinstance(node.func, ast.Attribute)
                and node.func.attr in _SUBMIT_METHODS
                and node.args
                and isinstance(node.args[0],
                               (ast.Name, ast.Attribute, ast.Lambda))):
            submissions.append(Submission(
                node, node.args[0],
                list(node.args[1:]) + [k.value for k in node.keywords],
                f".{node.func.attr}()",
            ))
    return submissions


def _payload_record(project: Project, module: ModuleInfo, scope: ast.AST,
                    payload: ast.expr) -> Optional[Tuple[ast.AST, str]]:
    """The payload's definition node and label, preferring nested defs.

    A nested ``def`` submitted by name is looked up in the submitting
    scope first (that is the closure case); otherwise the project-wide
    function table resolves it.
    """
    if isinstance(payload, ast.Lambda):
        return payload, "<lambda>"
    if isinstance(payload, ast.Name):
        for node in iter_scope_nodes(scope):
            if (isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and node.name == payload.id):
                return node, node.name
    record = project.lookup_function(module, payload)
    if record is not None:
        return record.node, record.qualname
    return None


# ----------------------------------------------------------------------
# REPRO014 — a parent Generator crossing the process boundary
# ----------------------------------------------------------------------
def _generator_locals(module: ModuleInfo, scope: ast.AST) -> Set[str]:
    """Names in ``scope`` that hold a *parent* Generator stream.

    Parameters named like a generator, and locals assigned from a
    generator constructor.  Spawn derivations (``spawn_rngs``,
    ``Generator.spawn``) are excluded — their children are exactly what
    should cross the boundary.  Unlike REPRO009's stream set, ``seed``
    is not generator-like here: passing a seed to a worker is the fix.
    """
    names: Set[str] = set()
    args = getattr(scope, "args", None)
    if args is not None:
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if arg.arg in _GEN_PARAM_NAMES:
                names.add(arg.arg)
    for node in iter_scope_nodes(scope):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        value = node.value
        if isinstance(value, ast.Call):
            resolved = module.resolve(value.func)
            if resolved in _GENERATOR_CONSTRUCTORS:
                names.add(target.id)
            elif resolved == "repro.utils.rng.spawn_rngs" or (
                isinstance(value.func, ast.Attribute)
                and value.func.attr == "spawn"
            ):
                names.discard(target.id)
        elif isinstance(value, ast.Name) and value.id in names:
            names.add(target.id)
    return names


def _visible_generators(module: ModuleInfo, scope: ast.AST) -> Set[str]:
    """Generator names usable in ``scope``: its own plus captured ones."""
    names = _generator_locals(module, scope)
    shadowed = bound_names(scope)
    for enclosing in enclosing_scopes(module, scope):
        names |= _generator_locals(module, enclosing) - shadowed
    return names


def _names_in(expr: ast.expr) -> Set[str]:
    return {node.id for node in ast.walk(expr)
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)}


def _check_rng_boundary(project: Project,
                        module: ModuleInfo) -> Iterator[Finding]:
    for record in _function_scopes(project, module):
        scope = record.node
        generators = _visible_generators(module, scope)
        if not generators:
            continue
        for submission in find_submissions(module, scope):
            payload = submission.payload
            if payload is None:
                continue
            if isinstance(payload, ast.Name) and payload.id in generators:
                yield _finding(
                    "REPRO014", module, payload,
                    f"Generator '{payload.id}' crosses a process boundary "
                    f"via {submission.label}; parent and worker then replay "
                    f"the same draws — derive a child via spawn_rngs/"
                    f"Generator.spawn or pass a seed",
                )
                continue
            resolved = _payload_record(project, module, scope, payload)
            if resolved is not None:
                node, label = resolved
                captured = sorted(free_loads(node) & generators)
                if captured:
                    yield _finding(
                        "REPRO014", module, payload,
                        f"worker payload '{label}' closes over parent "
                        f"Generator '{captured[0]}'; every worker forks the "
                        f"same stream state — derive child streams or pass "
                        f"seeds through the payload arguments",
                    )
            for extra in submission.extras:
                for name in sorted(_names_in(extra) & generators):
                    yield _finding(
                        "REPRO014", module, extra,
                        f"parent Generator '{name}' is passed into "
                        f"{submission.label}; shards sharing one stream "
                        f"cannot be bit-identical — spawn a child per "
                        f"worker or send seeds",
                    )


# ----------------------------------------------------------------------
# REPRO015 — unpicklable worker payloads
# ----------------------------------------------------------------------
def _unpicklable_locals(module: ModuleInfo, scope: ast.AST) -> Dict[str, str]:
    """Local name -> human label of an unpicklable value it holds."""
    kinds: Dict[str, str] = {}

    def classify(value: ast.expr) -> Optional[str]:
        if isinstance(value, ast.Lambda):
            return "lambda"
        if isinstance(value, ast.GeneratorExp):
            return "generator expression"
        if isinstance(value, ast.Call):
            resolved = module.resolve(value.func)
            if resolved == "open" or (
                isinstance(value.func, ast.Attribute)
                and value.func.attr == "open"
            ):
                return "open file handle"
            if resolved in _LOCK_CONSTRUCTORS:
                return "thread lock"
        return None

    for node in iter_scope_nodes(scope):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            kind = classify(node.value)
            if kind is not None:
                kinds[node.targets[0].id] = kind
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if isinstance(item.optional_vars, ast.Name):
                    kind = classify(item.context_expr)
                    if kind is not None:
                        kinds[item.optional_vars.id] = kind
    return kinds


def _check_picklability(project: Project,
                        module: ModuleInfo) -> Iterator[Finding]:
    for record in _function_scopes(project, module):
        scope = record.node
        submissions = find_submissions(module, scope)
        if not submissions:
            continue
        unpicklable = _unpicklable_locals(module, scope)
        for enclosing in enclosing_scopes(module, scope):
            shadowed = bound_names(scope)
            for name, kind in _unpicklable_locals(module, enclosing).items():
                if name not in shadowed:
                    unpicklable.setdefault(name, kind)
        for submission in submissions:
            payload = submission.payload
            if payload is None:
                continue
            if isinstance(payload, ast.Lambda):
                yield _finding(
                    "REPRO015", module, payload,
                    f"lambda payload reaches {submission.label} but cannot "
                    f"be pickled into a worker process; define a "
                    f"module-level function instead",
                )
            elif isinstance(payload, ast.Name) and payload.id in unpicklable:
                yield _finding(
                    "REPRO015", module, payload,
                    f"payload '{payload.id}' holds a "
                    f"{unpicklable[payload.id]}, which cannot be pickled "
                    f"into a worker process",
                )
            else:
                resolved = _payload_record(project, module, scope, payload)
                if resolved is not None:
                    node, label = resolved
                    captured = sorted(
                        free_loads(node) & set(unpicklable)
                    )
                    if captured:
                        kind = unpicklable[captured[0]]
                        yield _finding(
                            "REPRO015", module, payload,
                            f"worker payload '{label}' closes over "
                            f"{kind} '{captured[0]}' and will fail to "
                            f"pickle at {submission.label}; pass explicit "
                            f"picklable arguments instead",
                        )
            for extra in submission.extras:
                if isinstance(extra, ast.Lambda):
                    yield _finding(
                        "REPRO015", module, extra,
                        f"lambda argument reaches {submission.label} but "
                        f"cannot be pickled into a worker process",
                    )
                    continue
                for name in sorted(_names_in(extra) & set(unpicklable)):
                    yield _finding(
                        "REPRO015", module, extra,
                        f"{unpicklable[name]} '{name}' is shipped to "
                        f"{submission.label} but cannot be pickled into a "
                        f"worker process",
                    )


# ----------------------------------------------------------------------
# REPRO016 — in-place mutation read by another component afterwards
# ----------------------------------------------------------------------
def _mutated_parameters(record: FunctionRecord) -> Set[str]:
    """Parameters ``record`` mutates in place in its own scope."""
    params = set(record.parameters())
    if not params:
        return set()
    mutated: Set[str] = set()
    for node in iter_scope_nodes(record.node):
        if isinstance(node, ast.AugAssign):
            base = _subscript_base(node.target)
            if isinstance(base, ast.Name) and base.id in params:
                mutated.add(base.id)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    base = _subscript_base(target)
                    if isinstance(base, ast.Name) and base.id in params:
                        mutated.add(base.id)
        elif (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in MUTATING_METHODS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in params):
            mutated.add(node.func.value.id)
    for base, _attr, _node in record.attribute_writes():
        if base in params:
            mutated.add(base)
    return mutated


def _call_label(module: ModuleInfo, call: ast.Call) -> str:
    resolved = module.resolve(call.func)
    if resolved is not None:
        return resolved
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return getattr(call.func, "id", "<call>")


def _enclosing_statement(module: ModuleInfo,
                         node: ast.AST) -> Optional[ast.stmt]:
    for ancestor in module.ancestors(node):
        if isinstance(ancestor, ast.stmt):
            return ancestor
    return None


def _collect_mutators(project: Project) -> Dict[int, Set[str]]:
    """``id(record)`` -> the parameters that record mutates in place."""
    mutators: Dict[int, Set[str]] = {}
    for records in project.functions_by_short.values():
        for record in records:
            mutated = _mutated_parameters(record)
            if mutated:
                mutators[id(record)] = mutated
    return mutators


def _check_aliased_mutation(project: Project, module: ModuleInfo,
                            mutators: Dict[int, Set[str]]
                            ) -> Iterator[Finding]:
    if not mutators:
        return
    for caller in _function_scopes(project, module):
        scope = caller.node
        calls = [node for node in iter_scope_nodes(scope)
                 if isinstance(node, ast.Call)]
        for call in calls:
            callee = project.lookup_function(module, call.func)
            if callee is None or id(callee) not in mutators:
                continue
            mutated = mutators[id(callee)]
            statement = _enclosing_statement(module, call)
            if statement is None:
                continue
            end = getattr(statement, "end_lineno", statement.lineno)
            mutating_label = _call_label(module, call)
            for param, arg in bind_arguments(callee, call):
                if param not in mutated or not isinstance(arg, ast.Name):
                    continue
                for later in calls:
                    if later.lineno <= end or later is call:
                        continue
                    if _call_label(module, later) == mutating_label:
                        continue  # same component: an out-param accumulator
                    later_args = list(later.args) + [
                        k.value for k in later.keywords
                    ]
                    if any(arg.id in _names_in(a) for a in later_args):
                        yield _finding(
                            "REPRO016", module, call,
                            f"{callee.qualname}() mutates parameter "
                            f"'{param}' in place, and '{arg.id}' is read "
                            f"by {_call_label(module, later)} afterwards; "
                            f"the mutation aliases across components — "
                            f"pass a copy or return the new value",
                        )
                        break
                else:
                    continue
                break


# ----------------------------------------------------------------------
# REPRO017 — order-dependent reductions over unordered containers
# ----------------------------------------------------------------------
def _is_set_expr(module: ModuleInfo, node: ast.expr,
                 set_locals: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_locals
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) \
                and node.func.id in ("set", "frozenset"):
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "union", "intersection", "difference", "symmetric_difference",
        ):
            return _is_set_expr(module, node.func.value, set_locals)
    return False


def _merged_dict_locals(module: ModuleInfo, scope: ast.AST) -> Set[str]:
    """Names of dicts assembled by ``.update(...)`` / ``|=`` merges.

    These are the shard-merge accumulators whose insertion order depends
    on merge order; iterating them into a float reduction is the
    REPRO017 hazard even though a single-process dict is
    insertion-ordered.
    """
    merged: Set[str] = set()
    for node in iter_scope_nodes(scope):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "update"
                and isinstance(node.func.value, ast.Name)):
            merged.add(node.func.value.id)
        elif (isinstance(node, ast.AugAssign)
                and isinstance(node.op, ast.BitOr)
                and isinstance(node.target, ast.Name)):
            merged.add(node.target.id)
    return merged


def _unordered_iter_label(module: ModuleInfo, node: ast.expr,
                          set_locals: Set[str],
                          merged: Set[str]) -> Optional[str]:
    if _is_set_expr(module, node, set_locals):
        return "a set"
    if (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("values", "items", "keys")
            and not node.args
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in merged):
        return f"merge-built dict '{node.func.value.id}'"
    return None


def _check_reductions(project: Project,
                      module: ModuleInfo) -> Iterator[Finding]:
    for record in _function_scopes(project, module):
        scope = record.node
        set_locals = {
            node.targets[0].id
            for node in iter_scope_nodes(scope)
            if isinstance(node, ast.Assign) and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and _is_set_expr(module, node.value, set())
        }
        merged = _merged_dict_locals(module, scope)

        for node in iter_scope_nodes(scope):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                label = _unordered_iter_label(
                    module, node.iter, set_locals, merged)
                if label is None:
                    continue
                for child in node.body:
                    accumulations = [
                        inner for inner in ast.walk(child)
                        if isinstance(inner, ast.AugAssign)
                        and isinstance(inner.op, (ast.Add, ast.Sub, ast.Mult))
                    ]
                    if accumulations:
                        yield _finding(
                            "REPRO017", module, accumulations[0],
                            f"accumulating while iterating {label}: float "
                            f"addition is not associative, so the result "
                            f"depends on iteration/merge order — iterate "
                            f"sorted(...) or use math.fsum",
                        )
                        break
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Name
            ) and node.func.id == "sum" and node.args:
                argument = node.args[0]
                iters: List[ast.expr] = []
                if isinstance(argument,
                              (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
                    iters = [gen.iter for gen in argument.generators]
                else:
                    iters = [argument]
                for it in iters:
                    label = _unordered_iter_label(
                        module, it, set_locals, merged)
                    if label is not None:
                        yield _finding(
                            "REPRO017", module, node,
                            f"sum() over {label} depends on iteration/"
                            f"merge order; use math.fsum (exact and "
                            f"order-independent) or sum over sorted(...)",
                        )
                        break


# ----------------------------------------------------------------------
# REPRO018 — environment reads in worker-reachable functions
# ----------------------------------------------------------------------
def _worker_entries(project: Project) -> Dict[int, Tuple[FunctionRecord, str]]:
    """Function records submitted as worker payloads anywhere in the project."""
    entries: Dict[int, Tuple[FunctionRecord, str]] = {}
    for module in project.modules:
        for caller in _function_scopes(project, module):
            for submission in find_submissions(module, caller.node):
                payload = submission.payload
                if payload is None:
                    continue
                if isinstance(payload, ast.Lambda):
                    for node in ast.walk(payload):
                        if isinstance(node, ast.Call):
                            target = project.lookup_function(
                                module, node.func)
                            if target is not None:
                                entries.setdefault(
                                    id(target), (target, target.qualname))
                    continue
                target = project.lookup_function(module, payload)
                if target is not None:
                    entries.setdefault(id(target), (target, target.qualname))
    return entries


def _reachable(project: Project,
               entries: Dict[int, Tuple[FunctionRecord, str]]
               ) -> Dict[int, Tuple[FunctionRecord, str]]:
    """Transitive closure of the call graph from the worker entries."""
    reached = dict(entries)
    frontier = list(entries.values())
    while frontier:
        record, entry = frontier.pop()
        for node in ast.walk(record.node):
            if not isinstance(node, ast.Call):
                continue
            callee = project.lookup_function(record.module, node.func)
            if callee is not None and id(callee) not in reached:
                reached[id(callee)] = (callee, entry)
                frontier.append((callee, entry))
    return reached


def _check_worker_env(project: Project) -> Iterator[Finding]:
    reached = _reachable(project, _worker_entries(project))
    seen: Set[Tuple[str, int, int]] = set()
    for record, entry in reached.values():
        module = record.module
        for node in ast.walk(record.node):
            resolved: Optional[str] = None
            if isinstance(node, ast.Call):
                resolved = module.resolve(node.func)
                if resolved not in _ENV_READ_CALLS:
                    resolved = None
            elif isinstance(node, ast.Subscript):
                if module.resolve(node.value) == "os.environ":
                    resolved = "os.environ"
            elif isinstance(node, ast.Attribute):
                parent = module.parent(node)
                if not isinstance(parent, (ast.Attribute, ast.Call,
                                           ast.Subscript)):
                    if module.resolve(node) == "os.environ":
                        resolved = "os.environ"
            if resolved is None:
                continue
            key = (module.path, node.lineno, node.col_offset)
            if key in seen:
                continue
            seen.add(key)
            yield _finding(
                "REPRO018", module, node,
                f"'{resolved}' read inside '{record.qualname}', which is "
                f"reachable from worker entry '{entry}'; the shard's "
                f"result then depends on the worker's inherited "
                f"environment — pass explicit settings/paths through the "
                f"payload",
            )


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def check_parallel(project: Project) -> Iterator[Finding]:
    """Run the six parallel-safety rules over the whole project."""
    yield from _check_module_globals(project)
    mutators = _collect_mutators(project)
    for module in project.modules:
        yield from _check_rng_boundary(project, module)
        yield from _check_picklability(project, module)
        yield from _check_aliased_mutation(project, module, mutators)
        yield from _check_reductions(project, module)
    yield from _check_worker_env(project)
