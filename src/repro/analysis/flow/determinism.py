"""Determinism hazard rules: REPRO011, REPRO012.

Bit-identical checkpoint/resume (PR 2) and metrics-on == metrics-off
(PR 3) only hold if no data-bearing path depends on filesystem
enumeration order, set iteration order, or the wall clock:

* **REPRO011 — unordered enumeration feeding computation.**
  ``os.listdir`` / ``os.scandir`` / ``glob.glob`` / ``Path.glob`` /
  ``Path.rglob`` / ``Path.iterdir`` return entries in filesystem order,
  and iterating a ``set`` literal/constructor is hash-order; both must
  pass through ``sorted(...)`` before they feed arrays or label streams.
* **REPRO012 — wall-clock reads outside ``obs/``.**  ``time.time`` and
  friends are legitimate inside the observability layer (whose registry
  takes an injectable clock precisely so tests stay deterministic) and
  nowhere else in the library.  A deliberate, audited read elsewhere is
  exempted with a *keyed* annotation naming the exact clock it excuses::

      # repro: wall-clock[time.monotonic] — real-time demo mode only
      self._origin = time.monotonic()

  The key must match the resolved clock name — an annotation for
  ``time.monotonic`` never silences a ``time.time`` read that creeps
  onto the same line — and the annotation holds for the next code line
  when its comment block sits directly above the read (mirroring the
  ``# repro: process-local`` convention of REPRO013).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional

from repro.analysis.lint.engine import Finding
from repro.analysis.flow.project import (
    ModuleInfo,
    Project,
    call_keyword,
    exempted_key,
    keyed_exemptions,
)

#: Fully qualified enumeration calls whose order is filesystem-defined.
_FS_ENUMERATORS = {
    "os.listdir",
    "os.scandir",
    "glob.glob",
    "glob.iglob",
}

#: Attribute names that enumerate in filesystem order on Path-like objects.
_FS_ATTR_ENUMERATORS = {"glob", "rglob", "iterdir"}

#: Wall-clock reads; allowed only under the observability package.
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: Dotted sub-packages exempt from the wall-clock rule.
_CLOCK_EXEMPT_PACKAGES = ("obs",)

def _wall_clock_exemptions(module: ModuleInfo) -> Dict[int, str]:
    """Line number -> exempted clock key, from the module's annotations."""
    return keyed_exemptions(module, "wall-clock")


def _clock_exempted(module: ModuleInfo, exemptions: Dict[int, str],
                    lineno: int, resolved: str) -> bool:
    """Whether the read at ``lineno`` carries a matching keyed exemption.

    The annotation counts on the read's own line, or on the comment
    block sitting directly above it (see
    :func:`repro.analysis.flow.project.exempted_key`).  The key must
    equal the resolved clock name exactly.
    """
    return exempted_key(module, exemptions, lineno) == resolved


def _finding(rule_id: str, module: ModuleInfo, node: ast.AST,
             message: str) -> Finding:
    return Finding(
        path=module.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0) + 1,
        rule_id=rule_id,
        message=message,
        severity="error",
    )


#: Builtins whose value varies between runs/processes — useless as sort keys.
_NONDET_KEY_BUILTINS = {"id", "hash"}

#: Call prefixes that make a ``key=`` callable non-deterministic.
_NONDET_KEY_PREFIXES = ("random.", "numpy.random.", "time.", "uuid.",
                        "secrets.")


def _nondeterministic_key(module: ModuleInfo, key: ast.expr) -> bool:
    """Whether a ``sorted(key=...)`` argument defeats the ordering.

    ``key=id`` sorts by memory address, ``key=hash`` is
    ``PYTHONHASHSEED``-dependent for strings, and a lambda that draws
    randomness or reads the clock produces a fresh permutation per run —
    the ``sorted(...)`` wrapper then launders an unordered enumeration
    without actually ordering it.
    """
    resolved = module.resolve(key)
    if resolved in _NONDET_KEY_BUILTINS:
        return True
    if resolved is not None and resolved.startswith(_NONDET_KEY_PREFIXES):
        return True  # a bare reference like ``key=random.random``
    if isinstance(key, ast.Lambda):
        for node in ast.walk(key.body):
            if not isinstance(node, ast.Call):
                continue
            target = module.resolve(node.func)
            if target in _NONDET_KEY_BUILTINS:
                return True
            if target is not None and target.startswith(
                _NONDET_KEY_PREFIXES
            ):
                return True
    return False


def _ordered_by_ancestor(module: ModuleInfo, node: ast.AST) -> bool:
    """Whether ``node`` flows into a genuine ``sorted(...)`` in its statement.

    Climbs the parent chain so both the direct ``sorted(path.glob(...))``
    and the comprehension form ``sorted(p for p in path.rglob(...))``
    count as ordered.  A ``sorted(..., key=...)`` whose key is itself
    non-deterministic (``key=id``, ``key=lambda _: random()``) does not
    count — it permutes rather than orders.
    """
    for ancestor in module.ancestors(node):
        if isinstance(ancestor, ast.Call):
            func = ancestor.func
            name = func.id if isinstance(func, ast.Name) else None
            if name == "sorted":
                key = call_keyword(ancestor, "key")
                if key is None or not _nondeterministic_key(module, key):
                    return True
        if isinstance(ancestor, ast.stmt):
            return False
    return False


def _enumerator_label(module: ModuleInfo, node: ast.Call) -> Optional[str]:
    resolved = module.resolve(node.func)
    if resolved in _FS_ENUMERATORS:
        return resolved
    if (isinstance(node.func, ast.Attribute)
            and node.func.attr in _FS_ATTR_ENUMERATORS):
        # Heuristic: ``.glob``/``.rglob``/``.iterdir`` on anything is a
        # pathlib enumeration unless the receiver resolves to a known
        # non-path module.
        if resolved is None or not resolved.startswith(("re.", "fnmatch.")):
            return f".{node.func.attr}"
    return None


def _check_fs_order(module: ModuleInfo) -> Iterator[Finding]:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        label = _enumerator_label(module, node)
        if label is None:
            continue
        if not _ordered_by_ancestor(module, node):
            yield _finding(
                "REPRO011", module, node,
                f"'{label}' enumerates in filesystem order; wrap in "
                f"sorted(...) before the entries feed any computation",
            )


def _iter_targets(module: ModuleInfo) -> Iterator[ast.expr]:
    """Every expression some construct iterates over."""
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for generator in node.generators:
                yield generator.iter


def _check_set_iteration(module: ModuleInfo) -> Iterator[Finding]:
    for target in _iter_targets(module):
        is_set = isinstance(target, ast.Set) or (
            isinstance(target, ast.Call)
            and isinstance(target.func, ast.Name)
            and target.func.id in ("set", "frozenset")
        )
        if is_set and not _ordered_by_ancestor(module, target):
            yield _finding(
                "REPRO011", module, target,
                "iterating a set is hash-order (PYTHONHASHSEED-dependent "
                "for str keys); iterate sorted(...) instead",
            )


def _check_wall_clock(module: ModuleInfo) -> Iterator[Finding]:
    if module.in_subpackage(*_CLOCK_EXEMPT_PACKAGES):
        return
    exemptions = _wall_clock_exemptions(module)
    for node in ast.walk(module.tree):
        resolved: Optional[str] = None
        if isinstance(node, ast.Call):
            resolved = module.resolve(node.func)
        elif isinstance(node, (ast.Attribute, ast.Name)):
            # A bare reference (e.g. a default argument ``clock=time.time``)
            # smuggles the clock just as effectively as calling it.
            parent = module.parent(node)
            if isinstance(parent, (ast.Call, ast.Attribute)):
                continue  # the enclosing node is the one to judge
            resolved = module.resolve(node)
        if resolved in _WALL_CLOCK:
            lineno = getattr(node, "lineno", 1)
            if _clock_exempted(module, exemptions, lineno, resolved):
                continue
            yield _finding(
                "REPRO012", module, node,
                f"wall-clock read '{resolved}' outside repro.obs breaks "
                f"run reproducibility; inject a clock or move the timing "
                f"into the observability layer, or annotate a deliberate "
                f"read with '# repro: wall-clock[{resolved}] — <why>'",
            )


def check_determinism(project: Project) -> Iterator[Finding]:
    """Run the enumeration-order and wall-clock rules over the project."""
    for module in project.modules:
        yield from _check_fs_order(module)
        yield from _check_set_iteration(module)
        yield from _check_wall_clock(module)
