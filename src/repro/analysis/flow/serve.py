"""Serve-safety rules: REPRO019-024.

The multi-tenant serving layer (:mod:`repro.serve`, PR 9) promises four
invariants the type system cannot see: every submitted answer is
eventually delivered (future lifecycle), one session's state never leaks
into another's books (tenant isolation), completions dispatch in the
``(due, seq)`` total order (deterministic scheduling), and the stepwise
``episode()`` generator is driven by its protocol — primed with
``next``, fed with ``send(records)``, ``close()``d on abort.  Each
invariant gets static rules:

* **REPRO019 — dropped futures.**  A ``PendingAnswer`` (or any
  project-defined ``*Future`` type, or a call into a function that
  transitively returns one) whose result is discarded as a bare
  expression statement, or bound to a name that is never read again,
  is an answer the event loop will pop with nobody listening.  Routing
  counts: returning it, appending it to a batch, passing it to any
  call, or reading any of its attributes afterwards.
* **REPRO020 — blocking calls in event-loop-reachable code.**  The loop
  is single-threaded; ``time.sleep``, file/socket I/O, subprocess
  spawns, and lock acquisition anywhere in the call-graph closure of
  the serve layer (the ``serve`` package, ``serve_*`` modules, and
  every episode-protocol generator) stall *every* session at once.
  The observability sink (:mod:`repro.obs`) is exempt — its atomic
  flush is the sanctioned write path — and a deliberate block is
  excused with a keyed annotation naming the exact call::

      # repro: blocking[time.sleep] — demo wall-clock mode really waits
      time.sleep(remaining)

  (the same key-must-match convention as REPRO012's ``wall-clock[...]``
  annotations; see :func:`repro.analysis.flow.project.exempted_key`).
* **REPRO021 — per-session state in shared scope.**  Session state — a
  ``MetricsRegistry``, a ``LabellingHistory``, an RNG stream, anything
  flowing from a ``registry``/``history``/``rng`` parameter or
  attribute — written to a plain attribute of a *shared* class (one
  whose methods take a ``session`` parameter) or to a module global is
  reachable from every other session on the engine.  Writes keyed by
  session (``self._grants[session] = ...``) preserve isolation and stay
  silent, as do globals annotated ``# repro: process-local — <why>``.
* **REPRO022 — scheduling off the ``(due, seq)`` total order.**  The
  bit-identity proofs all reduce to one fact: completions dispatch in
  ``(due, submission seq)`` order.  A heap of pending completions
  pushed without a ``seq`` tie-breaker, a ``min()``/``max()`` over a
  pending set/dict whose key ignores ``seq``, or a ``for`` loop
  dispatching straight out of a set/dict of futures all reintroduce
  hash/heap-internal order into delivery.
* **REPRO023 — episode-generator protocol misuse.**  The stepwise
  ``episode()`` generator must be primed with one ``next()``, then fed
  every batch back via ``send(records)`` — iterating it (or calling
  ``next`` in a loop) sends ``None`` and silently starves the episode.
  A generator parked on an attribute with no ``close()`` path anywhere
  in its class leaves a suspended frame (and its platform references)
  alive after an abort; a ``yield`` inside ``try`` without ``finally``
  means ``close()`` during the suspension skips the cleanup the
  ``try`` was written for.
* **REPRO024 — delivered payloads mutated after delivery.**  The
  records handed back at a delivery site (``mark_delivered``/``drain``
  results, ``[p.record for p in ...]`` projections) are the *same*
  objects the session's history and answer log hold — REPRO016's
  aliased-mutation hazard at the serve boundary.  Sorting, item
  assignment, or passing them to a known in-place mutator after
  delivery rewrites the books; copy first.

All six rules resolve conservatively: an ambiguous name or an opaque
receiver stays silent rather than guessing.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.lint.engine import Finding
from repro.analysis.flow.parallel import (
    MUTATING_METHODS,
    _LOCK_CONSTRUCTORS,
    _collect_mutators,
    _finding,
    _function_scopes,
    _reachable,
    _subscript_base,
)
from repro.analysis.flow.project import (
    ClassRecord,
    FunctionRecord,
    ModuleInfo,
    Project,
    bind_arguments,
    bound_names,
    call_keyword,
    exempted_key,
    iter_scope_nodes,
    keyed_exemptions,
)
from repro.analysis.flow.rng import _GENERATOR_CONSTRUCTORS

#: Standard-library future constructors (beyond project-defined types).
_STDLIB_FUTURES = {
    "concurrent.futures.Future",
    "asyncio.Future",
    "asyncio.ensure_future",
    "asyncio.create_task",
}

#: Parameter names that mean "this argument is a pending completion".
_FUTURE_PARAM_NAMES = {
    "pending", "pendings", "pending_answer", "pending_answers",
    "future", "futures", "fut", "completion", "completions",
}

#: Container names (underscores stripped) treated as pending-completion
#: stores at scheduling sites even when their contents are opaque.
_PENDING_CONTAINER_HINTS = {
    "pending", "pendings", "pending_answers", "completions", "events",
    "queue", "inflight", "in_flight", "waiting", "futures",
}

#: Calls that block the event loop's only thread.
_BLOCKING_CALLS = {
    "time.sleep",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
    "os.system", "os.popen", "os.waitpid",
    "socket.socket", "socket.create_connection", "socket.getaddrinfo",
    "urllib.request.urlopen",
    "requests.get", "requests.post", "requests.put", "requests.delete",
    "requests.head", "requests.request",
    "open", "input",
}

#: Dotted sub-packages exempt from the blocking rule: the observability
#: sink's atomic flush is the sanctioned write path out of the loop.
_BLOCKING_EXEMPT_PACKAGES = ("obs",)

#: Constructor tails whose result is per-session state.
_SESSION_STATE_CONSTRUCTORS = {
    "MetricsRegistry", "make_registry", "LabellingHistory",
}

#: Parameter names that carry per-session state into a scope.
_SESSION_STATE_PARAMS = {"registry", "history", "rng", "session_rng"}

#: Attribute names whose read is per-session state (``session.registry``).
_SESSION_STATE_ATTRS = {"registry", "history", "rng"}

#: Calls whose assigned result is a delivered payload (REPRO024 sites).
_DELIVERY_CALLS = {"mark_delivered", "drain"}


# ----------------------------------------------------------------------
# Future-flow substrate (REPRO019/022)
# ----------------------------------------------------------------------
def _future_class_shorts(project: Project) -> Set[str]:
    """Short names of project-defined future types, ``PendingAnswer`` in."""
    shorts = {"PendingAnswer"}
    for short in project.classes_by_short:
        if short.endswith(("Future", "Pending")):
            shorts.add(short)
    return shorts


def _future_call_label(project: Project, module: ModuleInfo, call: ast.Call,
                       future_shorts: Set[str],
                       producers: Dict[int, FunctionRecord]) -> Optional[str]:
    """Label of a call that creates/returns a future, or ``None``."""
    resolved = module.resolve(call.func)
    if resolved in _STDLIB_FUTURES:
        return resolved
    tail = resolved.rsplit(".", 1)[-1] if resolved is not None else None
    if tail is None and isinstance(call.func, ast.Attribute):
        tail = call.func.attr
    if tail in future_shorts:
        return tail
    record = project.lookup_function(module, call.func)
    if record is not None and id(record) in producers:
        return record.qualname
    return None


def _expr_holds_future(project: Project, module: ModuleInfo, expr: ast.expr,
                       names: Set[str], future_shorts: Set[str],
                       producers: Dict[int, FunctionRecord]) -> bool:
    """Whether ``expr`` evaluates to a future or a container of futures."""
    if isinstance(expr, ast.Name):
        return expr.id in names
    if isinstance(expr, ast.Await):
        return _expr_holds_future(project, module, expr.value, names,
                                  future_shorts, producers)
    if isinstance(expr, ast.Call):
        return _future_call_label(project, module, expr, future_shorts,
                                  producers) is not None
    if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
        return any(_expr_holds_future(project, module, elt, names,
                                      future_shorts, producers)
                   for elt in expr.elts)
    if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
        return _expr_holds_future(project, module, expr.elt, names,
                                  future_shorts, producers)
    if isinstance(expr, ast.IfExp):
        return any(_expr_holds_future(project, module, branch, names,
                                      future_shorts, producers)
                   for branch in (expr.body, expr.orelse))
    return False


def _scope_future_names(project: Project, module: ModuleInfo, scope: ast.AST,
                        future_shorts: Set[str],
                        producers: Dict[int, FunctionRecord]) -> Set[str]:
    """Names in ``scope`` holding a future or a container of futures.

    Fixpoint over single-name assignments and ``append``/``add``/
    ``insert`` feeds, seeded by future-ish parameter names.
    """
    names: Set[str] = set()
    args = getattr(scope, "args", None)
    if args is not None:
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if arg.arg.lstrip("_") in _FUTURE_PARAM_NAMES:
                names.add(arg.arg)
    while True:
        before = len(names)
        for node in iter_scope_nodes(scope):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                if _expr_holds_future(project, module, node.value, names,
                                      future_shorts, producers):
                    names.add(node.targets[0].id)
            elif (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("append", "add", "insert")
                    and isinstance(node.func.value, ast.Name)
                    and any(_expr_holds_future(project, module, arg, names,
                                               future_shorts, producers)
                            for arg in node.args)):
                names.add(node.func.value.id)
        if len(names) == before:
            return names


def _future_producers(project: Project,
                      future_shorts: Set[str]) -> Dict[int, FunctionRecord]:
    """Fixpoint of functions whose returns flow futures (transitively)."""
    producers: Dict[int, FunctionRecord] = {}
    changed = True
    while changed:
        changed = False
        for records in project.functions_by_short.values():
            for record in records:
                if id(record) in producers:
                    continue
                names = _scope_future_names(
                    project, record.module, record.node, future_shorts,
                    producers,
                )
                for value in project.return_expressions(record):
                    if _expr_holds_future(project, record.module, value,
                                          names, future_shorts, producers):
                        producers[id(record)] = record
                        changed = True
                        break
    return producers


# ----------------------------------------------------------------------
# REPRO019 — dropped futures
# ----------------------------------------------------------------------
def _enclosing_statement(module: ModuleInfo,
                         node: ast.AST) -> Optional[ast.stmt]:
    for ancestor in module.ancestors(node):
        if isinstance(ancestor, ast.stmt):
            return ancestor
    return None


def _used_outside(module: ModuleInfo, scope: ast.AST, statement: ast.stmt,
                  name: str) -> bool:
    """Whether ``name`` is read anywhere in ``scope`` outside ``statement``."""
    for node in iter_scope_nodes(scope):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load) \
                and node.id == name:
            if node is statement or any(
                ancestor is statement for ancestor in module.ancestors(node)
            ):
                continue
            return True
    return False


def _check_dropped_futures(project: Project, module: ModuleInfo,
                           future_shorts: Set[str],
                           producers: Dict[int, FunctionRecord]
                           ) -> Iterator[Finding]:
    for record in _function_scopes(project, module):
        scope = record.node
        for node in iter_scope_nodes(scope):
            if not isinstance(node, ast.Call):
                continue
            label = _future_call_label(project, module, node, future_shorts,
                                       producers)
            if label is None:
                continue
            statement = _enclosing_statement(module, node)
            if statement is None:
                continue
            if isinstance(statement, ast.Expr):
                value = statement.value
                if isinstance(value, ast.Await):
                    value = value.value
                if value is node:
                    yield _finding(
                        "REPRO019", module, node,
                        f"pending answer from '{label}' is created and "
                        f"immediately dropped; the event loop will pop its "
                        f"completion with nobody listening — route it to a "
                        f"completion handler or collect it",
                    )
            elif isinstance(statement, ast.Assign) \
                    and len(statement.targets) == 1 \
                    and isinstance(statement.targets[0], ast.Name):
                value = statement.value
                if isinstance(value, ast.Await):
                    value = value.value
                if value is not node:
                    continue
                name = statement.targets[0].id
                if not _used_outside(module, scope, statement, name):
                    yield _finding(
                        "REPRO019", module, node,
                        f"pending answer '{name}' from '{label}' is never "
                        f"routed to a completion handler or collected; the "
                        f"future leaks out of the delivery path",
                    )


# ----------------------------------------------------------------------
# REPRO020 — blocking calls reachable from the event loop
# ----------------------------------------------------------------------
def _serve_scoped(module: ModuleInfo) -> bool:
    """Whether a module belongs to the serving layer.

    The ``serve`` sub-package, or a standalone ``serve_*`` module (the
    fixture convention) — episode-protocol generators are entry points
    regardless of where they live.
    """
    return module.in_subpackage("serve") \
        or module.name.split(".")[-1].startswith("serve_")


def _serve_entries(project: Project, gens: Dict[int, FunctionRecord]
                   ) -> Dict[int, Tuple[FunctionRecord, str]]:
    entries: Dict[int, Tuple[FunctionRecord, str]] = {}
    for module in project.modules:
        if not _serve_scoped(module):
            continue
        for record in _function_scopes(project, module):
            entries.setdefault(id(record), (record, record.qualname))
    for record in gens.values():
        entries.setdefault(id(record), (record, record.qualname))
    return entries


def _lock_locals(module: ModuleInfo, scope: ast.AST) -> Set[str]:
    """Names in ``scope`` assigned from a lock constructor."""
    names: Set[str] = set()
    for node in iter_scope_nodes(scope):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and isinstance(node.value, ast.Call) \
                and module.resolve(node.value.func) in _LOCK_CONSTRUCTORS:
            names.add(node.targets[0].id)
    return names


def _blocking_label(module: ModuleInfo, node: ast.Call,
                    locks: Set[str]) -> Optional[str]:
    resolved = module.resolve(node.func)
    if resolved in _BLOCKING_CALLS:
        return resolved
    if isinstance(node.func, ast.Attribute) and node.func.attr == "acquire":
        receiver = node.func.value
        if resolved is not None and resolved.startswith(
            ("threading.", "multiprocessing.")
        ):
            return resolved
        if isinstance(receiver, ast.Name) and receiver.id in locks:
            return f"{receiver.id}.acquire"
    return None


def _check_blocking(project: Project,
                    gens: Dict[int, FunctionRecord]) -> Iterator[Finding]:
    reached = _reachable(project, _serve_entries(project, gens))
    seen: Set[Tuple[str, int, int]] = set()
    exemptions_cache: Dict[int, Dict[int, str]] = {}
    for record, entry in reached.values():
        module = record.module
        if module.in_subpackage(*_BLOCKING_EXEMPT_PACKAGES):
            continue
        if id(module) not in exemptions_cache:
            exemptions_cache[id(module)] = keyed_exemptions(module, "blocking")
        exemptions = exemptions_cache[id(module)]
        locks = _lock_locals(module, record.node)
        for node in ast.walk(record.node):
            if not isinstance(node, ast.Call):
                continue
            label = _blocking_label(module, node, locks)
            if label is None:
                continue
            key = (module.path, node.lineno, node.col_offset)
            if key in seen:
                continue
            seen.add(key)
            if exempted_key(module, exemptions, node.lineno) == label:
                continue
            yield _finding(
                "REPRO020", module, node,
                f"blocking call '{label}' inside '{record.qualname}', "
                f"reachable from event-loop entry '{entry}'; the loop is "
                f"single-threaded, so this stalls every session — move the "
                f"block off the loop or annotate a deliberate one with "
                f"'# repro: blocking[{label}] — <why>'",
            )


# ----------------------------------------------------------------------
# REPRO021 — per-session state in shared scope
# ----------------------------------------------------------------------
def _shared_classes(project: Project) -> Set[int]:
    """Ids of :class:`ClassRecord` whose methods take a ``session``."""
    shared: Set[int] = set()
    for class_list in project.classes_by_short.values():
        for cls in class_list:
            for method in cls.methods():
                args = method.node.args
                names = {arg.arg for arg in
                         args.posonlyargs + args.args + args.kwonlyargs}
                if "session" in names - {"self", "cls"}:
                    shared.add(id(cls))
                    break
    return shared


def _enclosing_class(project: Project,
                     record: FunctionRecord) -> Optional[ClassRecord]:
    if record.class_name is None:
        return None
    for cls in project.classes_by_short.get(record.class_name, []):
        if cls.module is record.module \
                and record.qualname.startswith(f"{cls.qualname}."):
            return cls
    return None


def _session_state_names(module: ModuleInfo, scope: ast.AST) -> Set[str]:
    """Names in ``scope`` holding per-session state."""
    names: Set[str] = set()
    args = getattr(scope, "args", None)
    if args is not None:
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if arg.arg.lstrip("_") in _SESSION_STATE_PARAMS:
                names.add(arg.arg)
    for node in iter_scope_nodes(scope):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and _is_session_state(module, node.value, names):
            names.add(node.targets[0].id)
    return names


def _is_session_state(module: ModuleInfo, expr: ast.expr,
                      names: Set[str]) -> bool:
    if isinstance(expr, ast.Name):
        return expr.id in names
    if isinstance(expr, ast.Attribute):
        return expr.attr in _SESSION_STATE_ATTRS
    if isinstance(expr, ast.Call):
        resolved = module.resolve(expr.func)
        if resolved in _GENERATOR_CONSTRUCTORS:
            return True
        tail = resolved.rsplit(".", 1)[-1] if resolved is not None else None
        if tail is None and isinstance(expr.func, ast.Attribute):
            tail = expr.func.attr
        return tail in _SESSION_STATE_CONSTRUCTORS
    return False


def _state_label(module: ModuleInfo, expr: ast.expr) -> str:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return f".{expr.attr}"
    if isinstance(expr, ast.Call):
        resolved = module.resolve(expr.func)
        if resolved is not None:
            return f"{resolved.rsplit('.', 1)[-1]}()"
        if isinstance(expr.func, ast.Attribute):
            return f"{expr.func.attr}()"
    return "session state"


def _keyed_by_session(key: ast.expr) -> bool:
    """Whether a subscript key isolates the write per session."""
    for node in ast.walk(key):
        if isinstance(node, ast.Name) and (
            "session" in node.id.lower() or node.id == "name"
        ):
            return True
        if isinstance(node, ast.Attribute) and (
            "session" in node.attr.lower() or node.attr == "name"
        ):
            return True
    return False


def _check_shared_attributes(project: Project, module: ModuleInfo,
                             shared: Set[int]) -> Iterator[Finding]:
    for record in _function_scopes(project, module):
        cls = _enclosing_class(project, record)
        if cls is None or id(cls) not in shared:
            continue
        scope = record.node
        state = _session_state_names(module, scope)
        for base, attr, node in record.attribute_writes():
            if base != "self" or isinstance(node, ast.AugAssign):
                continue
            value = getattr(node, "value", None)
            if value is None or not _is_session_state(module, value, state):
                continue
            yield _finding(
                "REPRO021", module, node,
                f"per-session state ({_state_label(module, value)}) is "
                f"written to shared slot '{attr}' of '{cls.short_name}'; "
                f"every other session on the engine reads the same slot — "
                f"key it by session or keep it on the session object",
            )
        for node in iter_scope_nodes(scope):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if not isinstance(target, ast.Subscript):
                    continue
                base_expr = target.value
                while isinstance(base_expr, ast.Subscript):
                    base_expr = base_expr.value
                if not (isinstance(base_expr, ast.Attribute)
                        and isinstance(base_expr.value, ast.Name)
                        and base_expr.value.id == "self"):
                    continue
                if not _is_session_state(module, node.value, state):
                    continue
                if _keyed_by_session(target.slice):
                    continue
                yield _finding(
                    "REPRO021", module, node,
                    f"per-session state ({_state_label(module, node.value)}) "
                    f"is stored in shared '{base_expr.attr}' of "
                    f"'{cls.short_name}' under a key that does not isolate "
                    f"the session; key the slot by session",
                )


def _check_global_sinks(project: Project,
                        module: ModuleInfo) -> Iterator[Finding]:
    for record in _function_scopes(project, module):
        scope = record.node
        state = _session_state_names(module, scope)
        if not state:
            continue
        local = bound_names(scope)
        declared: Set[str] = set()
        for node in iter_scope_nodes(scope):
            if isinstance(node, ast.Global):
                declared.update(node.names)
        for node in iter_scope_nodes(scope):
            sinks: List[Tuple[str, ast.expr, bool]] = []
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) \
                            and target.id in declared:
                        sinks.append((target.id, node.value, False))
                    elif isinstance(target, ast.Subscript):
                        base = _subscript_base(target)
                        if isinstance(base, ast.Name) \
                                and base.id not in local:
                            sinks.append((
                                base.id, node.value,
                                _keyed_by_session(target.slice),
                            ))
            elif (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("append", "add", "insert",
                                           "setdefault")
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id not in local):
                for arg in node.args:
                    if _is_session_state(module, arg, state):
                        sinks.append((node.func.value.id, arg, False))
                        break
            for name, value, keyed in sinks:
                if keyed or not _is_session_state(module, value, state):
                    continue
                grec = project.resolve_global(module, name)
                if grec is None or grec.process_local:
                    continue
                yield _finding(
                    "REPRO021", module, node,
                    f"per-session state ({_state_label(module, value)}) is "
                    f"written to module-global '{name}'; every session in "
                    f"the process aliases it — key it by session, keep it "
                    f"on the session object, or annotate the definition "
                    f"'# repro: process-local — <why>'",
                )


# ----------------------------------------------------------------------
# REPRO022 — dispatch off the (due, seq) total order
# ----------------------------------------------------------------------
def _class_scopes(project: Project, record: FunctionRecord) -> List[ast.AST]:
    """Method scopes of ``record``'s class (its own scope included)."""
    if record.class_name is None:
        return [record.node]
    prefix = record.qualname.rsplit(".", 1)[0]
    return [
        sibling.node
        for sibling in _function_scopes(project, record.module)
        if sibling.class_name == record.class_name
        and sibling.qualname.rsplit(".", 1)[0] == prefix
    ]


def _container_kind(value: ast.expr) -> Optional[str]:
    if isinstance(value, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(value, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
        if value.func.id in ("set", "frozenset"):
            return "set"
        if value.func.id in ("dict", "list"):
            return value.func.id
    return None


def _slot_label(target: ast.expr, own_scope: bool) -> Optional[str]:
    """A trackable container slot: a local name or a ``self.X`` attribute."""
    if isinstance(target, ast.Name):
        return target.id if own_scope else None
    if isinstance(target, ast.Attribute) \
            and isinstance(target.value, ast.Name) \
            and target.value.id == "self":
        return f"self.{target.attr}"
    return None


def _dispatch_facts(project: Project, module: ModuleInfo,
                    record: FunctionRecord, future_shorts: Set[str],
                    producers: Dict[int, FunctionRecord]
                    ) -> Tuple[Dict[str, str], Set[str]]:
    """Container kinds and future-holding slots visible to ``record``.

    Local names come from ``record``'s own scope; ``self.X`` slots are
    gathered class-wide (a dict initialised in ``__init__`` and filled
    in ``track()`` is still a future store at the dispatch site).
    """
    kinds: Dict[str, str] = {}
    futures: Set[str] = set()
    for scope in _class_scopes(project, record):
        own = scope is record.node
        names = _scope_future_names(project, module, scope, future_shorts,
                                    producers)

        def holds(expr: ast.expr) -> bool:
            return _expr_holds_future(project, module, expr, names,
                                      future_shorts, producers)

        for node in iter_scope_nodes(scope):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                value = node.value
                if value is None:
                    continue
                kind = _container_kind(value)
                for target in targets:
                    slot = _slot_label(target, own)
                    if slot is None:
                        if isinstance(target, ast.Subscript):
                            slot = _slot_label(_subscript_base(target), own)
                            if slot is not None and holds(value):
                                futures.add(slot)
                        continue
                    if kind is not None:
                        kinds.setdefault(slot, kind)
                    if holds(value):
                        futures.add(slot)
            elif (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("add", "append", "insert",
                                           "setdefault")):
                slot = _slot_label(node.func.value, own)
                if slot is not None and any(holds(arg) for arg in node.args):
                    futures.add(slot)
    return kinds, futures


def _seq_keyed(expr: ast.expr) -> bool:
    """Whether ``expr`` references a submission-sequence component."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and "seq" in node.id.lower():
            return True
        if isinstance(node, ast.Attribute) and "seq" in node.attr.lower():
            return True
    return False


def _pending_slot(expr: ast.expr, kinds: Dict[str, str], futures: Set[str],
                  own_names: bool = True) -> Optional[str]:
    """The pending-container slot an expression names, or ``None``."""
    slot = _slot_label(expr, own_names)
    if slot is None:
        return None
    normalized = slot.split(".")[-1].lstrip("_")
    if slot in futures:
        return slot
    if normalized in _PENDING_CONTAINER_HINTS and slot in kinds:
        return slot
    return None


def _iterated_exprs(node: ast.AST) -> Iterator[ast.expr]:
    if isinstance(node, (ast.For, ast.AsyncFor)):
        yield node.iter
    elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                           ast.GeneratorExp)):
        for generator in node.generators:
            yield generator.iter


def _unwrap_view(expr: ast.expr) -> ast.expr:
    """Strip a ``.values()``/``.keys()``/``.items()`` view call."""
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute) \
            and expr.func.attr in ("values", "keys", "items") \
            and not expr.args:
        return expr.func.value
    return expr


def _check_scheduling(project: Project, module: ModuleInfo,
                      future_shorts: Set[str],
                      producers: Dict[int, FunctionRecord]
                      ) -> Iterator[Finding]:
    for record in _function_scopes(project, module):
        scope = record.node
        kinds, futures = _dispatch_facts(project, module, record,
                                         future_shorts, producers)
        for node in iter_scope_nodes(scope):
            if isinstance(node, ast.Call):
                resolved = module.resolve(node.func)
                if resolved in ("heapq.heappush", "heapq.heapreplace") \
                        and len(node.args) >= 2:
                    names = _scope_future_names(project, module, scope,
                                                future_shorts, producers)
                    slot = _pending_slot(node.args[0], kinds, futures)
                    item = node.args[1]
                    item_is_future = _expr_holds_future(
                        project, module, item, names, future_shorts,
                        producers,
                    )
                    if slot is None and not item_is_future:
                        continue
                    ordered = isinstance(item, ast.Tuple) \
                        and len(item.elts) >= 2 \
                        and any(_seq_keyed(elt) for elt in item.elts)
                    if not ordered:
                        label = slot if slot is not None else "heap"
                        yield _finding(
                            "REPRO022", module, node,
                            f"completion heap '{label}' is pushed without "
                            f"the (due, seq) total-order key; ties on due "
                            f"break by heap-internal order — push "
                            f"(due, seq, event) tuples",
                        )
                elif isinstance(node.func, ast.Name) \
                        and node.func.id in ("min", "max") and node.args:
                    container = _unwrap_view(node.args[0])
                    slot = _pending_slot(container, kinds, futures)
                    if slot is None:
                        continue
                    key = call_keyword(node, "key")
                    if key is not None and _seq_keyed(key):
                        continue
                    yield _finding(
                        "REPRO022", module, node,
                        f"{node.func.id}() over pending completions "
                        f"'{slot}' dispatches outside the (due, seq) total "
                        f"order; pop a (due, seq)-keyed heap (or key by "
                        f"(due, seq)) instead",
                    )
            for iter_expr in _iterated_exprs(node):
                container = _unwrap_view(iter_expr)
                slot = _slot_label(container, True)
                if slot is None:
                    continue
                if kinds.get(slot) not in ("set", "dict") \
                        or slot not in futures:
                    continue
                yield _finding(
                    "REPRO022", module, node,
                    f"dispatching pending completions by iterating "
                    f"{kinds[slot]} '{slot}' is {kinds[slot]}-order, not "
                    f"the (due, seq) total order; pop a (due, seq)-keyed "
                    f"heap instead",
                )


# ----------------------------------------------------------------------
# REPRO023 — episode-generator protocol
# ----------------------------------------------------------------------
def _yields_collect_request(record: FunctionRecord) -> bool:
    for node in iter_scope_nodes(record.node):
        if isinstance(node, ast.Yield) and node.value is not None:
            for call in ast.walk(node.value):
                if isinstance(call, ast.Call):
                    resolved = record.module.resolve(call.func)
                    tail = (resolved.rsplit(".", 1)[-1]
                            if resolved is not None else None)
                    if tail is None and isinstance(call.func, ast.Attribute):
                        tail = call.func.attr
                    if tail == "CollectRequest":
                        return True
    return False


def _episode_generators(project: Project) -> Dict[int, FunctionRecord]:
    """Generator functions implementing the stepwise episode protocol."""
    gens: Dict[int, FunctionRecord] = {}
    for records in project.functions_by_short.values():
        for record in records:
            if not record.is_generator:
                continue
            if record.short_name == "episode" \
                    or _yields_collect_request(record):
                gens[id(record)] = record
    return gens


def _is_episode_call(project: Project, module: ModuleInfo,
                     call: ast.Call, gens: Dict[int, FunctionRecord]) -> bool:
    record = project.lookup_function(module, call.func)
    if record is not None and id(record) in gens:
        return True
    return isinstance(call.func, ast.Attribute) and call.func.attr == "episode"


def _episode_values(project: Project, module: ModuleInfo,
                    record: FunctionRecord, gens: Dict[int, FunctionRecord]
                    ) -> Tuple[Set[str], Set[str]]:
    """Local names / class-wide ``self.X`` slots holding an episode frame."""
    names: Set[str] = set()
    attrs: Set[str] = set()
    args = getattr(record.node, "args", None)
    if args is not None:
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if arg.arg == "episode":
                names.add(arg.arg)
    for scope in _class_scopes(project, record):
        own = scope is record.node
        for node in iter_scope_nodes(scope):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.value, ast.Call)
                    and _is_episode_call(project, module, node.value, gens)):
                continue
            target = node.targets[0]
            if isinstance(target, ast.Name) and own:
                names.add(target.id)
            elif isinstance(target, ast.Attribute):
                resolved = module.resolve(target)
                if resolved is not None:
                    attrs.add(resolved)
    return names, attrs


def _matches_episode(module: ModuleInfo, expr: ast.expr, names: Set[str],
                     attrs: Set[str]) -> bool:
    if isinstance(expr, ast.Name):
        return expr.id in names
    if isinstance(expr, ast.Attribute):
        return module.resolve(expr) in attrs
    return False


def _in_loop(module: ModuleInfo, node: ast.AST, scope: ast.AST) -> bool:
    for ancestor in module.ancestors(node):
        if ancestor is scope:
            return False
        if isinstance(ancestor, (ast.While, ast.For, ast.AsyncFor)):
            return True
    return False


def _class_closes(project: Project, record: FunctionRecord,
                  attr: str) -> bool:
    """Whether any method of ``record``'s class calls ``self.<attr>.close()``."""
    wanted = f"self.{attr}"
    for scope in _class_scopes(project, record):
        for node in iter_scope_nodes(scope):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "close" \
                    and record.module.resolve(node.func.value) == wanted:
                return True
    return False


def _check_yield_in_try(gens: Dict[int, FunctionRecord]) -> Iterator[Finding]:
    for record in gens.values():
        module = record.module
        for node in iter_scope_nodes(record.node):
            if not isinstance(node, (ast.Yield, ast.YieldFrom)):
                continue
            for ancestor in module.ancestors(node):
                if ancestor is record.node:
                    break
                if isinstance(ancestor, ast.Try):
                    if not ancestor.finalbody:
                        yield _finding(
                            "REPRO023", module, node,
                            f"yield inside try without finally in episode "
                            f"generator '{record.qualname}': a close() "
                            f"during the suspension skips the handler's "
                            f"cleanup — add finally or move the yield out",
                        )
                    break  # judge the innermost try only


def _check_generator_protocol(project: Project, module: ModuleInfo,
                              gens: Dict[int, FunctionRecord]
                              ) -> Iterator[Finding]:
    for record in _function_scopes(project, module):
        scope = record.node
        names, attrs = _episode_values(project, module, record, gens)
        if names or attrs:
            nexts = []
            sends = []
            for node in iter_scope_nodes(scope):
                if isinstance(node, (ast.For, ast.AsyncFor)) \
                        and _matches_episode(module, node.iter, names, attrs):
                    label = (node.iter.id if isinstance(node.iter, ast.Name)
                             else module.resolve(node.iter))
                    yield _finding(
                        "REPRO023", module, node,
                        f"episode generator '{label}' is advanced by "
                        f"iteration, which sends None each step — the "
                        f"collected records never reach the episode; drive "
                        f"it with send(records) after a priming next()",
                    )
                elif isinstance(node, ast.Call):
                    if isinstance(node.func, ast.Name) \
                            and node.func.id == "next" and node.args \
                            and _matches_episode(module, node.args[0],
                                                 names, attrs):
                        nexts.append(node)
                    elif isinstance(node.func, ast.Attribute) \
                            and node.func.attr == "send" \
                            and _matches_episode(module, node.func.value,
                                                 names, attrs):
                        sends.append(node)
            if nexts and not sends and (
                len(nexts) >= 2
                or any(_in_loop(module, n, scope) for n in nexts)
            ):
                yield _finding(
                    "REPRO023", module, nexts[0],
                    f"episode generator in '{record.qualname}' is advanced "
                    f"with next() but never handed records via send(); the "
                    f"protocol is one priming next(), then send(records) "
                    f"for every batch",
                )
        if record.is_method:
            for base, attr, node in record.attribute_writes():
                if base != "self":
                    continue
                value = getattr(node, "value", None)
                if not isinstance(value, ast.Call) \
                        or not _is_episode_call(project, module, value, gens):
                    continue
                if _class_closes(project, record, attr):
                    continue
                yield _finding(
                    "REPRO023", module, node,
                    f"episode generator parked on 'self.{attr}' with no "
                    f"close() path anywhere in the class; an abort or "
                    f"fault leaves a suspended generator frame (and its "
                    f"platform references) alive — add a close() path",
                )


# ----------------------------------------------------------------------
# REPRO024 — delivered payloads mutated after delivery
# ----------------------------------------------------------------------
def _is_delivery_assignment(module: ModuleInfo, value: ast.expr) -> bool:
    if isinstance(value, ast.Call):
        resolved = module.resolve(value.func)
        tail = resolved.rsplit(".", 1)[-1] if resolved is not None else None
        if tail is None and isinstance(value.func, ast.Attribute):
            tail = value.func.attr
        return tail in _DELIVERY_CALLS
    return isinstance(value, ast.ListComp) \
        and isinstance(value.elt, ast.Attribute) \
        and value.elt.attr == "record"


def _mutation_of(project: Project, module: ModuleInfo, node: ast.AST,
                 name: str, mutators: Dict[int, Set[str]]) -> Optional[str]:
    """How ``node`` mutates ``name`` in place, or ``None``."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute) \
            and node.func.attr in MUTATING_METHODS \
            and isinstance(node.func.value, ast.Name) \
            and node.func.value.id == name:
        return f"via .{node.func.attr}()"
    if isinstance(node, (ast.Assign, ast.AugAssign)):
        targets = (node.targets if isinstance(node, ast.Assign)
                   else [node.target])
        for target in targets:
            if not isinstance(target, (ast.Subscript, ast.Attribute)):
                continue
            base: ast.expr = target
            if isinstance(base, ast.Attribute):
                base = base.value
            base = _subscript_base(base)
            if isinstance(base, ast.Name) and base.id == name:
                return "via item/attribute assignment"
    if isinstance(node, ast.Call):
        callee = project.lookup_function(module, node.func)
        if callee is not None and id(callee) in mutators:
            for param, arg in bind_arguments(callee, node):
                if param in mutators[id(callee)] \
                        and isinstance(arg, ast.Name) and arg.id == name:
                    return (f"via {callee.qualname}(), which mutates "
                            f"'{param}' in place")
    return None


def _check_delivery_alias(project: Project, module: ModuleInfo,
                          mutators: Dict[int, Set[str]]) -> Iterator[Finding]:
    for record in _function_scopes(project, module):
        scope = record.node
        delivered: List[Tuple[str, ast.stmt]] = []
        for node in iter_scope_nodes(scope):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name) \
                    and _is_delivery_assignment(module, node.value):
                delivered.append((node.targets[0].id, node))
        for name, statement in delivered:
            end = getattr(statement, "end_lineno", statement.lineno)
            for node in iter_scope_nodes(scope):
                if getattr(node, "lineno", 0) <= end:
                    continue
                how = _mutation_of(project, module, node, name, mutators)
                if how is None:
                    continue
                yield _finding(
                    "REPRO024", module, node,
                    f"delivered records '{name}' are mutated after "
                    f"delivery ({how}); the session's history and answer "
                    f"log alias the same objects, so the books are "
                    f"rewritten — copy before mutating",
                )
                break


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def check_serve(project: Project) -> Iterator[Finding]:
    """Run the six serve-safety rules over the whole project."""
    future_shorts = _future_class_shorts(project)
    producers = _future_producers(project, future_shorts)
    gens = _episode_generators(project)
    mutators = _collect_mutators(project)
    shared = _shared_classes(project)
    yield from _check_blocking(project, gens)
    yield from _check_yield_in_try(gens)
    for module in project.modules:
        yield from _check_dropped_futures(project, module, future_shorts,
                                          producers)
        yield from _check_shared_attributes(project, module, shared)
        yield from _check_global_sinks(project, module)
        yield from _check_scheduling(project, module, future_shorts,
                                     producers)
        yield from _check_generator_protocol(project, module, gens)
        yield from _check_delivery_alias(project, module, mutators)
