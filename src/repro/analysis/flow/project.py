"""Whole-project model for the interprocedural flow analyzer.

The lint engine (:mod:`repro.analysis.lint`) sees one module at a time;
the flow engines need to follow values *across* modules — a
``default_factory`` in ``crowd/`` resolving to a helper in ``utils/``, a
``@shaped`` declaration in ``rl/`` constraining a call site in ``core/``.
This module builds that shared substrate once per run:

* :class:`ModuleInfo` — one parsed module with its dotted name, import
  alias table and per-line suppression map;
* :class:`FunctionRecord` — one function/method definition, indexed both
  by qualified and by short name so attribute calls (``agent.q_matrix``)
  resolve to their unique project definition when the short name is
  unambiguous;
* :class:`Project` — the loaded module set plus name-resolution helpers
  (:meth:`Project.resolve`, :meth:`Project.lookup_function`) and parent
  links (:meth:`ModuleInfo.parent`) for context-sensitive checks;
* :class:`GlobalRecord` and :attr:`Project.module_globals` — every
  module-scope binding, so the parallel-safety rules can see shared
  state a worker process would fork-inherit;
* the scope machinery (:func:`iter_scope_nodes`, :func:`bound_names`,
  :func:`free_loads`, :func:`enclosing_scopes`) — a closure-capture
  view of nested lambdas/defs that both the REPRO009 shared-stream rule
  and the process-boundary rules (REPRO014/015) walk;
* :class:`ClassRecord` and :attr:`Project.classes_by_short` — class
  definitions indexed by short name, so the serve-safety rules can
  recognise project-defined future types (``PendingAnswer``) at their
  construction sites;
* generator-frame support (:attr:`FunctionRecord.is_generator`) and the
  keyed-exemption machinery (:func:`keyed_exemptions`,
  :func:`exempted_key`) shared by the REPRO012 wall-clock and REPRO020
  blocking-call annotations.

Resolution is deliberately conservative: a name that cannot be traced to
a unique definition resolves to ``None`` and downstream rules stay quiet
rather than guess.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.lint.engine import iter_python_files, suppressed_rules

#: Annotation that declares a module-global as deliberate per-process
#: state (REPRO013); place it on the global's defining line together
#: with a justification, e.g. ``_CACHE: dict = {}  # repro: process-local
#: — rebuilt identically by every worker import``.
_PROCESS_LOCAL_RE = re.compile(r"#\s*repro:\s*process-local", re.IGNORECASE)

#: Scope-introducing AST nodes (comprehensions stay transparent: their
#: bodies run under the enclosing scope's control flow).
SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def module_dotted_name(path: Path) -> str:
    """Dotted module name inferred from the ``__init__.py`` package chain.

    ``src/repro/crowd/pool.py`` -> ``repro.crowd.pool``; a file outside
    any package keeps just its stem (fixtures analyze fine that way).
    """
    path = path.resolve()
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


def _import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Local name -> fully qualified name, from the module's imports."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue  # relative imports are not used in this project
            for alias in node.names:
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


@dataclass
class FunctionRecord:
    """One function or method definition somewhere in the project."""

    module: "ModuleInfo"
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    qualname: str
    class_name: Optional[str] = None

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    @property
    def short_name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]

    def parameters(self) -> List[str]:
        """Positional parameter names, ``self``/``cls`` stripped for methods."""
        args = self.node.args
        names = [a.arg for a in args.posonlyargs + args.args]
        if self.is_method and names and names[0] in ("self", "cls"):
            names = names[1:]
        return names

    def full_name(self) -> str:
        return f"{self.module.name}.{self.qualname}"

    @property
    def is_generator(self) -> bool:
        """Whether this function's own scope contains a ``yield``.

        Nested defs/lambdas are excluded (their yields belong to their
        own frames), so this matches Python's definition of a generator
        function.
        """
        return any(
            isinstance(node, (ast.Yield, ast.YieldFrom))
            for node in iter_scope_nodes(self.node)
        )

    def attribute_writes(self) -> List[Tuple[str, str, ast.AST]]:
        """``(base_name, attribute, node)`` for every ``name.attr = ...``.

        Only writes in this function's own scope (nested defs track their
        own), with the base resolved through subscripts so
        ``grid[i].total = v`` reports base ``grid``.
        """
        writes: List[Tuple[str, str, ast.AST]] = []
        for node in iter_scope_nodes(self.node):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if isinstance(target, ast.Attribute):
                    base = target.value
                    while isinstance(base, ast.Subscript):
                        base = base.value
                    if isinstance(base, ast.Name):
                        writes.append((base.id, target.attr, node))
        return writes


@dataclass
class ClassRecord:
    """One class definition somewhere in the project."""

    module: "ModuleInfo"
    node: ast.ClassDef
    qualname: str

    @property
    def short_name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]

    def full_name(self) -> str:
        return f"{self.module.name}.{self.qualname}"

    def methods(self) -> List["FunctionRecord"]:
        """The class's method records, in definition order."""
        return [
            record
            for record in _collect_functions(self.module)
            if record.class_name == self.short_name
            and record.qualname.startswith(f"{self.qualname}.")
        ]


@dataclass
class GlobalRecord:
    """One module-scope binding (the state a forked worker inherits)."""

    module: "ModuleInfo"
    name: str
    node: ast.stmt
    mutable_literal: bool  #: initialiser is a known mutable container

    def key(self) -> str:
        return f"{self.module.name}.{self.name}"

    @property
    def process_local(self) -> bool:
        """Whether the defining line carries ``# repro: process-local``."""
        return self.node.lineno in self.module.process_local_lines


#: Call targets whose result is a mutable container.
_MUTABLE_CONSTRUCTORS = {
    "dict", "list", "set", "bytearray", "collections.defaultdict",
    "collections.OrderedDict", "collections.Counter", "collections.deque",
    "numpy.zeros", "numpy.ones", "numpy.empty", "numpy.full", "numpy.array",
}


def _is_mutable_literal(module: "ModuleInfo", value: ast.expr) -> bool:
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                          ast.ListComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        return module.resolve(value.func) in _MUTABLE_CONSTRUCTORS
    return False


def _collect_globals(module: "ModuleInfo") -> Iterator[GlobalRecord]:
    """Module-scope name bindings, including ones under top-level if/try."""

    def walk(statements: Iterable[ast.stmt]) -> Iterator[GlobalRecord]:
        for statement in statements:
            if isinstance(statement, ast.Assign):
                for target in statement.targets:
                    if isinstance(target, ast.Name):
                        yield GlobalRecord(
                            module=module, name=target.id, node=statement,
                            mutable_literal=_is_mutable_literal(
                                module, statement.value),
                        )
            elif (isinstance(statement, ast.AnnAssign)
                    and isinstance(statement.target, ast.Name)
                    and statement.value is not None):
                yield GlobalRecord(
                    module=module, name=statement.target.id, node=statement,
                    mutable_literal=_is_mutable_literal(
                        module, statement.value),
                )
            elif isinstance(statement, ast.If):
                yield from walk(statement.body)
                yield from walk(statement.orelse)
            elif isinstance(statement, ast.Try):
                yield from walk(statement.body)
                yield from walk(statement.orelse)
                yield from walk(statement.finalbody)
                for handler in statement.handlers:
                    yield from walk(handler.body)

    return walk(module.tree.body)


@dataclass
class ModuleInfo:
    """One parsed module plus everything resolution needs about it."""

    path: str
    name: str
    tree: ast.Module
    source: str
    aliases: Dict[str, str] = field(default_factory=dict)
    suppressions: dict = field(default_factory=dict)
    process_local_lines: Set[int] = field(default_factory=set)
    _parents: Dict[int, ast.AST] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not self.aliases:
            self.aliases = _import_aliases(self.tree)
        if not self.suppressions:
            self.suppressions = suppressed_rules(self.source.splitlines())
        if not self.process_local_lines:
            self.process_local_lines = {
                lineno
                for lineno, text in enumerate(self.source.splitlines(), 1)
                if _PROCESS_LOCAL_RE.search(text)
            }
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[id(child)] = parent

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        """The syntactic parent of ``node`` (None at the module root)."""
        return self._parents.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterable[ast.AST]:
        """Walk from ``node``'s parent up to the module root."""
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def resolve(self, node: ast.expr) -> Optional[str]:
        """Fully qualified dotted name of an expression, or ``None``.

        ``np.random.default_rng`` resolves through the ``import numpy as
        np`` alias to ``numpy.random.default_rng``; a plain name imported
        with ``from x import y`` resolves to ``x.y``.
        """
        chain: List[str] = []
        while isinstance(node, ast.Attribute):
            chain.insert(0, node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.aliases.get(node.id, node.id)
        return ".".join([base] + chain)

    def in_subpackage(self, *names: str) -> bool:
        """Whether this module lives under any dotted component in ``names``."""
        parts = self.name.split(".")[:-1]
        return any(name in parts for name in names)


# ----------------------------------------------------------------------
# Scope walking (the closure-capture substrate)
# ----------------------------------------------------------------------
def iter_scope_nodes(scope: ast.AST) -> Iterator[ast.AST]:
    """Every node in ``scope``'s own execution scope, nested scopes excluded.

    Nested ``def``/``lambda`` nodes are yielded (so a scan can *see* the
    hand-off of a closure) but not descended into — their bodies run
    under their own control flow and get their own scan.  Comprehensions
    are transparent: their bodies execute eagerly under ``scope``.
    """
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, SCOPE_NODES):
            stack.extend(ast.iter_child_nodes(node))


def bound_names(scope: ast.AST) -> Set[str]:
    """Names bound directly in ``scope``: parameters, stores, imports.

    Names declared ``global``/``nonlocal`` are *not* local bindings and
    are excluded, so an assignment under a ``global`` declaration still
    reads as a module-global write.
    """
    bound: Set[str] = set()
    escaped: Set[str] = set()
    args = getattr(scope, "args", None)
    if args is not None:
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            bound.add(arg.arg)
        for arg in (args.vararg, args.kwarg):
            if arg is not None:
                bound.add(arg.arg)
    for node in iter_scope_nodes(scope):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            bound.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            bound.add(node.name)
        elif isinstance(node, (ast.Global, ast.Nonlocal)):
            escaped.update(node.names)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                bound.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                bound.add(alias.asname or alias.name)
    return bound - escaped


def free_loads(scope: ast.AST) -> Set[str]:
    """Names ``scope`` reads but does not bind itself — its captures.

    The walk descends into nested scopes (a doubly nested lambda still
    captures the outermost variable), so this over-approximates: a name
    a nested scope re-binds locally still counts as free here.  Rules
    using this stay conservative by only *intersecting* the result with
    names they already track in the enclosing scope.
    """
    loads: Set[str] = set()
    for node in ast.walk(scope):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            loads.add(node.id)
    return loads - bound_names(scope)


def enclosing_scopes(module: ModuleInfo, node: ast.AST) -> List[ast.AST]:
    """Function/lambda ancestors of ``node``, innermost first."""
    return [ancestor for ancestor in module.ancestors(node)
            if isinstance(ancestor, SCOPE_NODES)]


class Project:
    """The parsed module set with cross-module name resolution."""

    def __init__(self, modules: Sequence[ModuleInfo]) -> None:
        self.modules = list(modules)
        self.by_name: Dict[str, ModuleInfo] = {m.name: m for m in modules}
        #: short function name -> every project definition with that name
        self.functions_by_short: Dict[str, List[FunctionRecord]] = {}
        #: fully qualified name -> definition
        self.functions_by_full: Dict[str, FunctionRecord] = {}
        #: ``module.NAME`` -> module-scope binding record
        self.module_globals: Dict[str, GlobalRecord] = {}
        #: short class name -> every project definition with that name
        self.classes_by_short: Dict[str, List[ClassRecord]] = {}
        for module in self.modules:
            for record in _collect_functions(module):
                self.functions_by_short.setdefault(
                    record.short_name, []
                ).append(record)
                self.functions_by_full[record.full_name()] = record
            for class_record in _collect_classes(module):
                self.classes_by_short.setdefault(
                    class_record.short_name, []
                ).append(class_record)
            for global_record in _collect_globals(module):
                self.module_globals[global_record.key()] = global_record

    @classmethod
    def load(cls, paths: Iterable[str]) -> "Project":
        """Parse every ``*.py`` file under ``paths`` into a project."""
        modules: List[ModuleInfo] = []
        seen: Set[str] = set()
        for file_path in iter_python_files(paths):
            resolved = str(Path(file_path).resolve())
            if resolved in seen:
                continue
            seen.add(resolved)
            source = Path(file_path).read_text(encoding="utf-8")
            try:
                tree = ast.parse(source, filename=str(file_path))
            except SyntaxError:  # repro: noqa REPRO004
                continue  # the lint engine owns REPRO000 syntax reporting
            modules.append(
                ModuleInfo(
                    path=str(file_path),
                    name=module_dotted_name(Path(file_path)),
                    tree=tree,
                    source=source,
                )
            )
        return cls(modules)

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def lookup_function(self, module: ModuleInfo,
                        callee: ast.expr) -> Optional[FunctionRecord]:
        """Resolve a call target expression to a project definition.

        Tries the fully qualified resolution first (free functions and
        imported names); attribute calls whose base is opaque
        (``self.agent.q_matrix``) fall back to the short method name when
        exactly one project definition carries it.
        """
        full = module.resolve(callee)
        if full is not None:
            # Module-local names resolve to themselves; qualify them.
            record = self.functions_by_full.get(full) \
                or self.functions_by_full.get(f"{module.name}.{full}")
            if record is not None:
                return record
            # ``module.func`` where ``module`` was imported as a module
            tail = full.rsplit(".", 1)[-1]
            candidates = [
                r for r in self.functions_by_short.get(tail, [])
                if r.full_name() == full or full.endswith(
                    f"{r.module.name}.{r.qualname}"
                )
            ]
            if len(candidates) == 1:
                return candidates[0]
        if isinstance(callee, ast.Attribute):
            candidates = self.functions_by_short.get(callee.attr, [])
            methods = [r for r in candidates if r.is_method]
            if len(methods) == 1 and len(candidates) == 1:
                return methods[0]
        return None

    def resolve_global(self, module: ModuleInfo,
                       name: str) -> Optional[GlobalRecord]:
        """The module-scope binding a bare name refers to, if any.

        A name imported via ``from m import NAME`` resolves to ``m``'s
        record; an unimported name resolves within ``module`` itself.
        """
        target = module.aliases.get(name)
        if target is not None:
            return self.module_globals.get(target)
        return self.module_globals.get(f"{module.name}.{name}")

    def return_expressions(self, record: FunctionRecord) -> List[ast.expr]:
        """Every non-``None`` returned expression of a function body."""
        returns: List[ast.expr] = []
        for node in ast.walk(record.node):
            if isinstance(node, ast.Return) and node.value is not None:
                returns.append(node.value)
        return returns


def _collect_classes(module: ModuleInfo) -> Iterable[ClassRecord]:
    """Yield every class definition in a module, nested ones qualified."""

    def walk(node: ast.AST, prefix: str) -> Iterable[ClassRecord]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                qualname = f"{prefix}{child.name}"
                yield ClassRecord(module=module, node=child, qualname=qualname)
                yield from walk(child, f"{qualname}.")
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from walk(child, f"{prefix}{child.name}.<locals>.")
            else:
                yield from walk(child, prefix)

    return walk(module.tree, "")


def _collect_functions(module: ModuleInfo) -> Iterable[FunctionRecord]:
    """Yield every function definition in a module with its class context."""

    def walk(node: ast.AST, prefix: str,
             class_name: Optional[str]) -> Iterable[FunctionRecord]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                yield FunctionRecord(
                    module=module, node=child, qualname=qualname,
                    class_name=class_name,
                )
                yield from walk(child, f"{qualname}.<locals>.", class_name)
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, f"{prefix}{child.name}.", child.name)
            else:
                yield from walk(child, prefix, class_name)

    return walk(module.tree, "", None)


# ----------------------------------------------------------------------
# Keyed exemption annotations (shared by REPRO012 and REPRO020)
# ----------------------------------------------------------------------
#: ``# repro: <kind>[<key>] — <why>``; the key names exactly what the
#: annotation excuses and the justification after the dash is mandatory.
_KEYED_EXEMPT_TEMPLATE = r"#\s*repro:\s*{kind}\[([^\]]+)\]\s*[-—–]+\s*\S"


def keyed_exemptions(module: ModuleInfo, kind: str) -> Dict[int, str]:
    """Line number -> exempted key, for ``# repro: <kind>[...]`` comments."""
    pattern = re.compile(
        _KEYED_EXEMPT_TEMPLATE.format(kind=re.escape(kind)), re.IGNORECASE
    )
    return {
        lineno: match.group(1).strip()
        for lineno, text in enumerate(module.source.splitlines(), 1)
        if (match := pattern.search(text)) is not None
    }


def exempted_key(module: ModuleInfo, exemptions: Dict[int, str],
                 lineno: int) -> Optional[str]:
    """The exemption key covering ``lineno``, or ``None``.

    An annotation counts on the line itself, or on the contiguous
    comment block sitting directly above it (scanning up through
    comment-only lines, so a long justification can wrap).  Callers
    compare the returned key against the resolved call they are judging
    — a key never silences a different call that creeps onto the line.
    """
    lines = module.source.splitlines()
    line = lineno
    while line >= 1:
        key = exemptions.get(line)
        if key is not None:
            return key
        if line != lineno:
            text = lines[line - 1].strip()
            if not text.startswith("#"):
                return None
        line -= 1
    return None


def call_keyword(call: ast.Call, name: str) -> Optional[ast.expr]:
    """The value of keyword argument ``name`` on ``call``, if present."""
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def bind_arguments(record: FunctionRecord,
                   call: ast.Call) -> List[Tuple[str, ast.expr]]:
    """Pair call arguments with the callee's parameter names.

    Starred arguments stop positional binding (conservative); unknown
    keywords are dropped.
    """
    params = record.parameters()
    bound: List[Tuple[str, ast.expr]] = []
    for index, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred) or index >= len(params):
            break
        bound.append((params[index], arg))
    for keyword in call.keywords:
        if keyword.arg is not None and keyword.arg in params:
            bound.append((keyword.arg, keyword.value))
        elif keyword.arg is not None:
            # dataclass synthetic __init__: fields are not in the AST of
            # any def, so keyword binding by name is still meaningful.
            bound.append((keyword.arg, keyword.value))
    return bound
