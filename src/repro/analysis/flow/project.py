"""Whole-project model for the interprocedural flow analyzer.

The lint engine (:mod:`repro.analysis.lint`) sees one module at a time;
the flow engines need to follow values *across* modules — a
``default_factory`` in ``crowd/`` resolving to a helper in ``utils/``, a
``@shaped`` declaration in ``rl/`` constraining a call site in ``core/``.
This module builds that shared substrate once per run:

* :class:`ModuleInfo` — one parsed module with its dotted name, import
  alias table and per-line suppression map;
* :class:`FunctionRecord` — one function/method definition, indexed both
  by qualified and by short name so attribute calls (``agent.q_matrix``)
  resolve to their unique project definition when the short name is
  unambiguous;
* :class:`Project` — the loaded module set plus name-resolution helpers
  (:meth:`Project.resolve`, :meth:`Project.lookup_function`) and parent
  links (:meth:`ModuleInfo.parent`) for context-sensitive checks.

Resolution is deliberately conservative: a name that cannot be traced to
a unique definition resolves to ``None`` and downstream rules stay quiet
rather than guess.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.lint.engine import iter_python_files, suppressed_rules


def module_dotted_name(path: Path) -> str:
    """Dotted module name inferred from the ``__init__.py`` package chain.

    ``src/repro/crowd/pool.py`` -> ``repro.crowd.pool``; a file outside
    any package keeps just its stem (fixtures analyze fine that way).
    """
    path = path.resolve()
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


def _import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Local name -> fully qualified name, from the module's imports."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue  # relative imports are not used in this project
            for alias in node.names:
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


@dataclass
class FunctionRecord:
    """One function or method definition somewhere in the project."""

    module: "ModuleInfo"
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    qualname: str
    class_name: Optional[str] = None

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    @property
    def short_name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]

    def parameters(self) -> List[str]:
        """Positional parameter names, ``self``/``cls`` stripped for methods."""
        args = self.node.args
        names = [a.arg for a in args.posonlyargs + args.args]
        if self.is_method and names and names[0] in ("self", "cls"):
            names = names[1:]
        return names

    def full_name(self) -> str:
        return f"{self.module.name}.{self.qualname}"


@dataclass
class ModuleInfo:
    """One parsed module plus everything resolution needs about it."""

    path: str
    name: str
    tree: ast.Module
    source: str
    aliases: Dict[str, str] = field(default_factory=dict)
    suppressions: dict = field(default_factory=dict)
    _parents: Dict[int, ast.AST] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not self.aliases:
            self.aliases = _import_aliases(self.tree)
        if not self.suppressions:
            self.suppressions = suppressed_rules(self.source.splitlines())
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[id(child)] = parent

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        """The syntactic parent of ``node`` (None at the module root)."""
        return self._parents.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterable[ast.AST]:
        """Walk from ``node``'s parent up to the module root."""
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def resolve(self, node: ast.expr) -> Optional[str]:
        """Fully qualified dotted name of an expression, or ``None``.

        ``np.random.default_rng`` resolves through the ``import numpy as
        np`` alias to ``numpy.random.default_rng``; a plain name imported
        with ``from x import y`` resolves to ``x.y``.
        """
        chain: List[str] = []
        while isinstance(node, ast.Attribute):
            chain.insert(0, node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.aliases.get(node.id, node.id)
        return ".".join([base] + chain)

    def in_subpackage(self, *names: str) -> bool:
        """Whether this module lives under any dotted component in ``names``."""
        parts = self.name.split(".")[:-1]
        return any(name in parts for name in names)


class Project:
    """The parsed module set with cross-module name resolution."""

    def __init__(self, modules: Sequence[ModuleInfo]) -> None:
        self.modules = list(modules)
        self.by_name: Dict[str, ModuleInfo] = {m.name: m for m in modules}
        #: short function name -> every project definition with that name
        self.functions_by_short: Dict[str, List[FunctionRecord]] = {}
        #: fully qualified name -> definition
        self.functions_by_full: Dict[str, FunctionRecord] = {}
        for module in self.modules:
            for record in _collect_functions(module):
                self.functions_by_short.setdefault(
                    record.short_name, []
                ).append(record)
                self.functions_by_full[record.full_name()] = record

    @classmethod
    def load(cls, paths: Iterable[str]) -> "Project":
        """Parse every ``*.py`` file under ``paths`` into a project."""
        modules: List[ModuleInfo] = []
        seen: Set[str] = set()
        for file_path in iter_python_files(paths):
            resolved = str(Path(file_path).resolve())
            if resolved in seen:
                continue
            seen.add(resolved)
            source = Path(file_path).read_text(encoding="utf-8")
            try:
                tree = ast.parse(source, filename=str(file_path))
            except SyntaxError:  # repro: noqa REPRO004
                continue  # the lint engine owns REPRO000 syntax reporting
            modules.append(
                ModuleInfo(
                    path=str(file_path),
                    name=module_dotted_name(Path(file_path)),
                    tree=tree,
                    source=source,
                )
            )
        return cls(modules)

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def lookup_function(self, module: ModuleInfo,
                        callee: ast.expr) -> Optional[FunctionRecord]:
        """Resolve a call target expression to a project definition.

        Tries the fully qualified resolution first (free functions and
        imported names); attribute calls whose base is opaque
        (``self.agent.q_matrix``) fall back to the short method name when
        exactly one project definition carries it.
        """
        full = module.resolve(callee)
        if full is not None:
            # Module-local names resolve to themselves; qualify them.
            record = self.functions_by_full.get(full) \
                or self.functions_by_full.get(f"{module.name}.{full}")
            if record is not None:
                return record
            # ``module.func`` where ``module`` was imported as a module
            tail = full.rsplit(".", 1)[-1]
            candidates = [
                r for r in self.functions_by_short.get(tail, [])
                if r.full_name() == full or full.endswith(
                    f"{r.module.name}.{r.qualname}"
                )
            ]
            if len(candidates) == 1:
                return candidates[0]
        if isinstance(callee, ast.Attribute):
            candidates = self.functions_by_short.get(callee.attr, [])
            methods = [r for r in candidates if r.is_method]
            if len(methods) == 1 and len(candidates) == 1:
                return methods[0]
        return None

    def return_expressions(self, record: FunctionRecord) -> List[ast.expr]:
        """Every non-``None`` returned expression of a function body."""
        returns: List[ast.expr] = []
        for node in ast.walk(record.node):
            if isinstance(node, ast.Return) and node.value is not None:
                returns.append(node.value)
        return returns


def _collect_functions(module: ModuleInfo) -> Iterable[FunctionRecord]:
    """Yield every function definition in a module with its class context."""

    def walk(node: ast.AST, prefix: str,
             class_name: Optional[str]) -> Iterable[FunctionRecord]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                yield FunctionRecord(
                    module=module, node=child, qualname=qualname,
                    class_name=class_name,
                )
                yield from walk(child, f"{qualname}.<locals>.", class_name)
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, f"{prefix}{child.name}.", child.name)
            else:
                yield from walk(child, prefix, class_name)

    return walk(module.tree, "", None)


def call_keyword(call: ast.Call, name: str) -> Optional[ast.expr]:
    """The value of keyword argument ``name`` on ``call``, if present."""
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def bind_arguments(record: FunctionRecord,
                   call: ast.Call) -> List[Tuple[str, ast.expr]]:
    """Pair call arguments with the callee's parameter names.

    Starred arguments stop positional binding (conservative); unknown
    keywords are dropped.
    """
    params = record.parameters()
    bound: List[Tuple[str, ast.expr]] = []
    for index, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred) or index >= len(params):
            break
        bound.append((params[index], arg))
    for keyword in call.keywords:
        if keyword.arg is not None and keyword.arg in params:
            bound.append((keyword.arg, keyword.value))
        elif keyword.arg is not None:
            # dataclass synthetic __init__: fields are not in the AST of
            # any def, so keyword binding by name is still meaningful.
            bound.append((keyword.arg, keyword.value))
    return bound
