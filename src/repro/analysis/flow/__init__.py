"""Interprocedural dataflow analysis for the CrowdRL reproduction.

Where :mod:`repro.analysis.lint` judges one module at a time, this
package loads the whole ``repro`` tree into a :class:`~.project.Project`
graph and runs three engines across function and module boundaries:

* :mod:`~.rng` — RNG provenance (REPRO007 unseeded construction,
  REPRO008 global numpy state in dataflow, REPRO009 one stream shared
  across components);
* :mod:`~.shapes` — static verification of the ``@shaped`` runtime
  contracts as interface specs (REPRO010 transposed/ill-arity call
  sites);
* :mod:`~.determinism` — ordering and clock hazards (REPRO011 unsorted
  filesystem/set enumeration — a ``sorted(key=...)`` whose key is
  itself non-deterministic does not count as ordering, REPRO012
  wall-clock reads outside ``obs/``);
* :mod:`~.parallel` — parallel-safety rules guarding the sharded
  experiment engine (REPRO013 module-global mutable state, REPRO014
  parent RNG streams crossing process boundaries, REPRO015 unpicklable
  worker payloads, REPRO016 in-place mutation aliased across
  components, REPRO017 order-dependent reductions over unordered
  containers, REPRO018 environment reads in worker-reachable code);
* :mod:`~.serve` — serve-safety rules certifying the multi-tenant
  event loop (REPRO019 dropped futures, REPRO020 blocking calls in
  event-loop-reachable code, REPRO021 per-session state in shared
  scope, REPRO022 completion dispatch off the ``(due, seq)`` total
  order, REPRO023 episode-generator protocol misuse, REPRO024
  delivered payloads mutated after delivery).

Findings reuse the lint engine's :class:`~repro.analysis.lint.engine.Finding`
record and honour the same ``# repro: noqa REPROxxx`` suppression
comments; REPRO013 additionally honours a ``# repro: process-local``
annotation on a global's defining line for state that is *deliberately*
per-process; :mod:`~.baseline` adds committed-baseline ratcheting for
CI.  ``select`` accepts both single ids and inclusive ranges
(``REPRO013-REPRO018``).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.analysis.lint.engine import (
    Finding,
    _is_suppressed,
    expand_rule_ranges,
)
from repro.analysis.flow.baseline import (
    BASELINE_FILENAME,
    discover_baseline,
    finding_key,
    load_baseline,
    split_by_baseline,
    write_baseline,
)
from repro.analysis.flow.determinism import check_determinism
from repro.analysis.flow.parallel import check_parallel
from repro.analysis.flow.project import Project
from repro.analysis.flow.rng import check_rng
from repro.analysis.flow.serve import check_serve
from repro.analysis.flow.shapes import check_shapes

#: Rule id -> one-line description, in report order.
FLOW_RULES = {
    "REPRO007": "no unseeded Generator construction (incl. default_factory"
                "/lambda/default-arg indirection)",
    "REPRO008": "global np.random state must not enter dataflow",
    "REPRO009": "no single RNG stream shared across components; spawn "
                "child streams",
    "REPRO010": "call sites must satisfy the @shaped symbolic dimension "
                "contracts",
    "REPRO011": "no unsorted filesystem/set enumeration feeding computation",
    "REPRO012": "no wall-clock reads outside repro.obs",
    "REPRO013": "no module-global mutable state written after import time "
                "(annotate '# repro: process-local' to justify)",
    "REPRO014": "no parent RNG stream crossing a process boundary; spawn "
                "children or pass seeds",
    "REPRO015": "worker payloads must be picklable (no lambdas or closures "
                "over locks/files/generators)",
    "REPRO016": "no in-place parameter mutation read by another component "
                "after the call",
    "REPRO017": "no order-dependent float reduction over sets or "
                "merge-built dicts",
    "REPRO018": "no os.environ/tempfile/cwd reads in worker-reachable "
                "functions",
    "REPRO019": "no dropped futures: every PendingAnswer produced must be "
                "routed to a handler or collected",
    "REPRO020": "no blocking calls reachable from event-loop-driven code "
                "(annotate '# repro: blocking[<call>]' to justify)",
    "REPRO021": "no per-session state written to engine- or module-scope "
                "slots reachable from another session",
    "REPRO022": "completion dispatch must key on the (due, seq) total "
                "order — no bare heaps, min() over dicts, or set/dict "
                "iteration",
    "REPRO023": "episode generators must be fed via send and closed on "
                "abort; no yield inside try without finally",
    "REPRO024": "no mutation of a delivered answer payload or records "
                "list after delivery",
}

_ENGINES = (check_rng, check_shapes, check_determinism, check_parallel,
            check_serve)


def _selected(select: Optional[Iterable[str]]) -> Sequence[str]:
    if select is None:
        return tuple(FLOW_RULES)
    return tuple(expand_rule_ranges(select, FLOW_RULES, kind="flow rule"))


def analyze_project(project: Project,
                    select: Optional[Iterable[str]] = None) -> List[Finding]:
    """Run the flow engines over an already-loaded project."""
    wanted = set(_selected(select))
    by_path = {module.path: module for module in project.modules}
    findings = [
        finding
        for engine in _ENGINES
        for finding in engine(project)
        if finding.rule_id in wanted
    ]
    kept = []
    for finding in findings:
        module = by_path.get(finding.path)
        suppressions = module.suppressions if module is not None else {}
        if not _is_suppressed(finding, suppressions):
            kept.append(finding)
    return sorted(kept)


def analyze_paths(paths: Iterable[str],
                  select: Optional[Iterable[str]] = None) -> List[Finding]:
    """Load ``paths`` into a project and run the flow engines over it."""
    return analyze_project(Project.load(paths), select=select)


__all__ = [
    "BASELINE_FILENAME",
    "FLOW_RULES",
    "Finding",
    "Project",
    "analyze_paths",
    "analyze_project",
    "discover_baseline",
    "finding_key",
    "load_baseline",
    "split_by_baseline",
    "write_baseline",
]
