"""Fault-tolerant sharded experiment engine.

:class:`ShardedRunner` fans a sweep's shards — one JSON-safe payload per
(seed, setting) point — out over ``multiprocessing`` *spawn* workers and
merges the per-shard results back **in shard-index order**, so the merged
output never depends on scheduling.  The engine's contract is the one
REPRO013-018 was built to guard:

* **Per-shard determinism.**  A shard's result is a function of its
  payload and its shard index only.  Each shard's RNG stream is the
  ``Generator.spawn`` child at its index (:func:`repro.utils.rng.spawn_rng_at`),
  rebuilt inside whichever worker — or retry attempt — executes it, so
  serial (``parallel=1``), parallel, retried and resumed executions of the
  same shard are bit-identical.
* **Crash and hang survival.**  Workers heartbeat from a side thread
  while the shard computes; a worker that dies (crash, OOM-kill,
  ``SIGKILL``) or stops beating for ``shard_timeout`` seconds is killed
  and its shard is requeued onto a fresh worker after a *seeded*
  exponential backoff, up to ``shard_retries`` relaunches per shard.
* **Graceful degradation.**  When workers keep dying — a shard exhausts
  its retry budget, the sweep-wide death budget is spent, or the platform
  cannot spawn at all — the engine falls back to in-process serial
  execution of the remaining shards: slower, but the sweep completes (or
  surfaces the real, deterministic error).
* **Kill-resume.**  With a ``journal_dir``, every completed shard is
  persisted atomically (``shard-NNNN/result.json``) and every running
  shard gets a private working directory for its own run-level
  checkpoints (:mod:`repro.harness.checkpoint`).  A sweep SIGKILLed
  mid-flight and re-run with ``resume=True`` loads the finished shards
  from disk, resumes half-finished shards from their journals, and merges
  to the same bytes as a sweep that was never interrupted.

Task functions must be module-level callables (spawn pickles them by
reference; REPRO015 flags anything else) with the signature
``task(payload, ctx) -> value`` where ``payload`` is JSON-safe, ``ctx``
is a :class:`ShardContext` and ``value`` is JSON-safe when journalling.
A task exception is *not* retried — identical inputs would fail
identically — but crashes and hangs are.
"""

from __future__ import annotations

import hashlib
import json
import logging
import multiprocessing
import os
import threading
import traceback
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from queue import Empty
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import ConfigurationError, ShardError
from repro.harness.serialization import PathLike
from repro.obs import get_registry, monotonic
from repro.utils.rng import spawn_rng_at

logger = logging.getLogger(__name__)

SWEEP_MANIFEST_VERSION = 1

#: Result-queue poll period (seconds): the parent's reaction latency to
#: heartbeats, completions and deaths.
_TICK = 0.05


@dataclass(frozen=True)
class SweepOptions:
    """How a sweep executes: worker count, liveness knobs, journalling.

    ``parallel`` is the worker-process count; ``1`` (the default) runs
    every shard in-process, which is the pre-engine serial behaviour.
    ``shard_timeout`` is the longest a running shard may go without a
    heartbeat before it is presumed hung; ``shard_retries`` bounds how
    often one shard may be relaunched after crashes/hangs.  ``journal_dir``
    turns on the per-shard journal (and is where a killed sweep resumes
    from with ``resume=True``); ``metrics`` additionally collects each
    shard's obs event log and merges them in shard-index order.  ``seed``
    feeds the per-shard RNG streams and the retry-backoff jitter.
    """

    parallel: int = 1
    shard_timeout: float = 120.0
    shard_retries: int = 2
    heartbeat_every: float = 0.2
    backoff_base: float = 0.05
    backoff_cap: float = 5.0
    journal_dir: Optional[PathLike] = None
    resume: bool = False
    metrics: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.parallel < 1:
            raise ConfigurationError(
                f"parallel must be >= 1, got {self.parallel}"
            )
        if self.shard_timeout <= 0:
            raise ConfigurationError(
                f"shard_timeout must be > 0, got {self.shard_timeout}"
            )
        if self.shard_retries < 0:
            raise ConfigurationError(
                f"shard_retries must be >= 0, got {self.shard_retries}"
            )
        if self.heartbeat_every <= 0:
            raise ConfigurationError(
                f"heartbeat_every must be > 0, got {self.heartbeat_every}"
            )
        if self.resume and self.journal_dir is None:
            raise ConfigurationError("resume=True requires journal_dir")
        if self.metrics and self.journal_dir is None:
            raise ConfigurationError(
                "metrics=True requires journal_dir (shard event logs live "
                "in the per-shard journal directories)"
            )

    @classmethod
    def coerce(cls, value: Union[int, "SweepOptions", None]) -> "SweepOptions":
        """Accept a plain worker count where full options are overkill."""
        if isinstance(value, cls):
            return value
        if value is None:
            return cls()
        return cls(parallel=int(value))


@dataclass(frozen=True)
class ShardContext:
    """What a task function knows about the shard it is executing.

    ``rng`` is the shard's own spawn-derived child stream — the *only*
    engine-provided randomness a task may use, because it is rebuilt
    identically for every attempt and execution mode.  ``attempt`` counts
    relaunches (0 on first execution); ``journal_dir`` is the shard's
    private working directory when the sweep journals (tasks put their
    run-level checkpoints there); ``metrics_dir`` is where the task should
    write obs event logs (``metrics-*.jsonl``) when metrics are collected;
    ``resuming`` says the journal may hold state from a previous attempt
    or a previous (killed) sweep process.
    """

    index: int
    attempt: int
    rng: np.random.Generator
    journal_dir: Optional[Path] = None
    metrics_dir: Optional[Path] = None
    resuming: bool = False


@dataclass
class ShardOutcome:
    """One shard's merged-order result plus its execution provenance."""

    index: int
    tag: str
    value: object
    attempts: int = 1
    worker: str = "serial"
    wall_s: float = 0.0
    resumed: bool = False


@dataclass(frozen=True)
class _ShardSpec:
    index: int
    payload: object
    tag: str


@dataclass
class _Attempt:
    """A shard waiting to run (or re-run after a crash/hang)."""

    spec: _ShardSpec
    attempt: int = 0
    not_before: float = 0.0  # engine-clock gate for backoff


@dataclass
class _Worker:
    process: multiprocessing.process.BaseProcess
    jobs: object  # per-worker job queue
    name: str
    busy: Optional[_Attempt] = None
    last_beat: float = field(default_factory=monotonic)


def _write_json_atomic(path: Path, payload: dict) -> None:
    """The checkpoint convention: write-temp-then-rename is the commit."""
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload))
    os.replace(tmp, path)


def _payload_fingerprint(payloads: Sequence[object]) -> str:
    """Content hash identifying a sweep: payloads, in shard order."""
    blob = json.dumps(list(payloads), sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def _task_name(task: Callable) -> str:
    return f"{getattr(task, '__module__', '?')}.{getattr(task, '__qualname__', '?')}"


def _backoff_delay(options: SweepOptions, index: int, attempt: int) -> float:
    """Seeded exponential backoff before relaunching shard ``index``.

    Deterministic in (sweep seed, shard index, attempt) — independent of
    worker identity and of wall-clock timing — so two operators replaying
    the same failing sweep see the same pacing.
    """
    base = min(options.backoff_cap,
               options.backoff_base * (2.0 ** max(0, attempt - 1)))
    jitter_rng = np.random.default_rng(
        np.random.SeedSequence((options.seed, index, attempt))
    )
    return base * (0.5 + jitter_rng.random())


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _shard_worker(worker_name: str, task: Callable, jobs, results,
                  heartbeat_every: float) -> None:
    """Worker main loop: run journalled jobs, heartbeating from the side.

    The heartbeat thread keeps beating while the task computes, so the
    parent can tell "long shard" from "dead worker": a crash or SIGKILL
    stops the beats (and the process); a C-level hang that holds the GIL
    stops the beats while the process stays alive.
    """
    while True:
        job = jobs.get()
        if job is None:
            return
        (index, attempt, payload, seed, journal_dir, metrics_dir,
         resuming) = job
        stop = threading.Event()

        def _beat(index: int = index) -> None:
            while not stop.wait(heartbeat_every):
                results.put(("hb", worker_name, index))

        beater = threading.Thread(target=_beat, daemon=True)
        beater.start()
        start = monotonic()
        try:
            context = ShardContext(
                index=index,
                attempt=attempt,
                rng=spawn_rng_at(seed, index),
                journal_dir=Path(journal_dir) if journal_dir else None,
                metrics_dir=Path(metrics_dir) if metrics_dir else None,
                resuming=resuming,
            )
            value = task(payload, context)
        except BaseException as exc:  # noqa: B036 - report, parent decides
            stop.set()
            beater.join()
            results.put(("err", worker_name, index, type(exc).__name__,
                         str(exc), traceback.format_exc(),
                         monotonic() - start))
        else:
            stop.set()
            beater.join()
            results.put(("ok", worker_name, index, value,
                         monotonic() - start))


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class ShardedRunner:
    """Run a sweep's shards through ``task``, surviving worker failure.

    >>> runner = ShardedRunner(my_module.my_task, options=SweepOptions(parallel=4))
    >>> outcomes = runner.run(payloads, tags=labels)

    ``run`` returns one :class:`ShardOutcome` per payload, **always in
    shard-index order**, each carrying the task's return value.  The
    degradation ladder, top rung first: spawn workers with heartbeat
    supervision; requeue-with-backoff onto a fresh worker after a crash or
    hang; in-process serial execution when workers keep dying or the
    platform cannot spawn.  Shard-lifecycle counters
    (``shards.launched/completed/retried/degraded/resumed``), per-shard
    wall-time gauges (``shard.N.wall_s``) and a ``shard`` phase land in
    the ambient obs registry.
    """

    def __init__(self, task: Callable, *,
                 options: Union[int, SweepOptions, None] = None) -> None:
        self.task = task
        self.options = SweepOptions.coerce(options)

    # ------------------------------------------------------------------
    def run(self, payloads: Sequence[object],
            tags: Optional[Sequence[str]] = None) -> List[ShardOutcome]:
        """Execute one shard per payload and merge in shard-index order."""
        if tags is not None and len(tags) != len(payloads):
            raise ConfigurationError(
                f"{len(tags)} tags for {len(payloads)} payloads"
            )
        specs = [
            _ShardSpec(index=i, payload=payload,
                       tag=tags[i] if tags is not None else f"shard{i}")
            for i, payload in enumerate(payloads)
        ]
        journal = self._prepare_journal(specs)
        done: Dict[int, ShardOutcome] = {}
        if journal is not None:
            done = self._load_resumed(journal, specs)
        pending = [_Attempt(spec) for spec in specs if spec.index not in done]

        registry = get_registry()
        if self._use_pool(pending):
            survivors = self._run_pool(pending, done, journal)
            # Bottom rung: whatever the pool could not finish runs here,
            # serially, in index order — slower but unkillable-by-worker.
            for attempt in survivors:
                if attempt.spec.index in done:
                    continue  # completed in the pool's final drain
                registry.inc("shards.degraded")
                done[attempt.spec.index] = self._run_inline(
                    attempt, journal, worker="degraded"
                )
        else:
            for attempt in pending:
                done[attempt.spec.index] = self._run_inline(
                    attempt, journal, worker="serial"
                )
        if journal is not None and self.options.metrics:
            self._merge_metrics(journal, specs)
        return [done[spec.index] for spec in specs]

    # ------------------------------------------------------------------
    # Journal
    # ------------------------------------------------------------------
    def _prepare_journal(self, specs: Sequence[_ShardSpec]) -> Optional[Path]:
        options = self.options
        if options.journal_dir is None:
            return None
        journal = Path(options.journal_dir)
        journal.mkdir(parents=True, exist_ok=True)
        manifest_path = journal / "sweep.json"
        fingerprint = _payload_fingerprint([s.payload for s in specs])
        manifest = {
            "version": SWEEP_MANIFEST_VERSION,
            "task": _task_name(self.task),
            "n_shards": len(specs),
            "fingerprint": fingerprint,
        }
        if manifest_path.exists():
            try:
                existing = json.loads(manifest_path.read_text())
            except (ValueError, OSError) as exc:
                raise ShardError(
                    f"unreadable sweep manifest at {manifest_path}: {exc}"
                ) from exc
            if existing != manifest:
                raise ShardError(
                    f"journal at {journal} belongs to a different sweep "
                    f"(manifest {existing} != {manifest}); point the sweep "
                    f"at a fresh journal_dir"
                )
            if not options.resume:
                # Same sweep, fresh start: drop completed-shard results and
                # half-finished run checkpoints so nothing stale replays.
                for shard_dir in sorted(journal.glob("shard-*")):
                    for stale in sorted(shard_dir.iterdir()):
                        stale.unlink()
        else:
            if options.resume:
                raise ShardError(
                    f"resume=True but {manifest_path} does not exist; "
                    f"nothing to resume from"
                )
            _write_json_atomic(manifest_path, manifest)
        for spec in specs:
            self._shard_dir(journal, spec.index).mkdir(exist_ok=True)
        return journal

    @staticmethod
    def _shard_dir(journal: Path, index: int) -> Path:
        return journal / f"shard-{index:04d}"

    def _load_resumed(self, journal: Path,
                      specs: Sequence[_ShardSpec]) -> Dict[int, ShardOutcome]:
        """Completed shards from a previous (killed) execution of this sweep."""
        registry = get_registry()
        done: Dict[int, ShardOutcome] = {}
        if not self.options.resume:
            return done
        for spec in specs:
            path = self._shard_dir(journal, spec.index) / "result.json"
            if not path.exists():
                continue
            try:
                payload = json.loads(path.read_text())
            except (ValueError, OSError) as exc:
                # Atomic writes mean half-written results never exist under
                # the final name; anything unreadable is treated as not-done
                # and recomputed — the deterministic task makes that safe.
                logger.warning("unreadable shard result %s (%s); shard %d "
                               "will be recomputed", path, exc, spec.index)
                continue
            if payload.get("index") != spec.index:
                raise ShardError(
                    f"{path} records shard {payload.get('index')}, "
                    f"expected {spec.index}"
                )
            done[spec.index] = ShardOutcome(
                index=spec.index,
                tag=str(payload.get("tag", spec.tag)),
                value=payload["value"],
                attempts=int(payload.get("attempts", 1)),
                worker=str(payload.get("worker", "?")),
                wall_s=float(payload.get("wall_s", 0.0)),
                resumed=True,
            )
            registry.inc("shards.resumed")
        return done

    def _record_done(self, outcome: ShardOutcome,
                     journal: Optional[Path]) -> None:
        registry = get_registry()
        registry.inc("shards.completed")
        registry.set_gauge(f"shard.{outcome.index}.wall_s", outcome.wall_s)
        registry.record_phase("shard", outcome.wall_s)
        if journal is not None:
            _write_json_atomic(
                self._shard_dir(journal, outcome.index) / "result.json",
                {
                    "index": outcome.index,
                    "tag": outcome.tag,
                    "value": outcome.value,
                    "attempts": outcome.attempts,
                    "worker": outcome.worker,
                    "wall_s": outcome.wall_s,
                },
            )

    def _merge_metrics(self, journal: Path,
                       specs: Sequence[_ShardSpec]) -> None:
        """Concatenate per-shard event logs in shard-index order."""
        merged = journal / "metrics.jsonl"
        tmp = merged.with_name(merged.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as sink:
            for spec in specs:
                shard_dir = self._shard_dir(journal, spec.index)
                for log in sorted(shard_dir.glob("metrics-*.jsonl")):
                    sink.write(log.read_text())
        os.replace(tmp, merged)

    # ------------------------------------------------------------------
    # Execution rungs
    # ------------------------------------------------------------------
    def _use_pool(self, pending: Sequence[_Attempt]) -> bool:
        options = self.options
        if options.parallel <= 1 or len(pending) <= 1:
            return False
        if "spawn" not in multiprocessing.get_all_start_methods():
            get_registry().inc("shards.degraded", len(pending))
            return False
        return True

    def _context_fields(self, spec: _ShardSpec, journal: Optional[Path]):
        shard_dir = (
            self._shard_dir(journal, spec.index) if journal is not None
            else None
        )
        metrics_dir = shard_dir if (self.options.metrics and shard_dir) else None
        return shard_dir, metrics_dir

    def _run_inline(self, attempt: _Attempt, journal: Optional[Path],
                    worker: str) -> ShardOutcome:
        """In-process execution: the serial rung of the ladder."""
        spec = attempt.spec
        shard_dir, metrics_dir = self._context_fields(spec, journal)
        registry = get_registry()
        registry.inc("shards.launched")
        context = ShardContext(
            index=spec.index,
            attempt=attempt.attempt,
            rng=spawn_rng_at(self.options.seed, spec.index),
            journal_dir=shard_dir,
            metrics_dir=metrics_dir,
            resuming=self.options.resume or attempt.attempt > 0,
        )
        start = monotonic()
        value = self.task(spec.payload, context)
        outcome = ShardOutcome(
            index=spec.index, tag=spec.tag, value=value,
            attempts=attempt.attempt + 1, worker=worker,
            wall_s=monotonic() - start,
        )
        self._record_done(outcome, journal)
        return outcome

    # ------------------------------------------------------------------
    # Worker-pool execution with heartbeat supervision
    # ------------------------------------------------------------------
    def _run_pool(self, pending: List[_Attempt], done: Dict[int, ShardOutcome],
                  journal: Optional[Path]) -> List[_Attempt]:
        """Fan shards over spawn workers; return what must run serially.

        The return value is the degradation hand-off: empty when the pool
        finished everything, otherwise the (index-sorted) attempts the
        caller runs in-process because workers kept dying.
        """
        options = self.options
        registry = get_registry()
        mp = multiprocessing.get_context("spawn")
        results = mp.Queue()
        queue: deque = deque(sorted(pending, key=lambda a: a.spec.index))
        workers: Dict[str, _Worker] = {}
        death_budget = 2 * options.parallel + 2
        deaths = 0
        next_id = 0
        n_target = len(pending)
        n_done = 0
        degraded = False

        def spawn_worker() -> None:
            nonlocal next_id
            name = f"worker-{next_id}"
            next_id += 1
            jobs = mp.Queue()
            process = mp.Process(
                target=_shard_worker,
                args=(name, self.task, jobs, results,
                      options.heartbeat_every),
                daemon=True,
                name=f"repro-shard-{name}",
            )
            process.start()
            workers[name] = _Worker(process=process, jobs=jobs, name=name)

        def dispatch() -> None:
            now = monotonic()
            for worker in workers.values():
                if worker.busy is not None or not queue:
                    continue
                ready = None
                for candidate in queue:  # backoff gates some entries
                    if candidate.not_before <= now:
                        ready = candidate
                        break
                if ready is None:
                    continue
                queue.remove(ready)
                spec = ready.spec
                shard_dir, metrics_dir = self._context_fields(spec, journal)
                worker.busy = ready
                worker.last_beat = now
                registry.inc("shards.launched")
                worker.jobs.put((
                    spec.index, ready.attempt, spec.payload, options.seed,
                    str(shard_dir) if shard_dir else None,
                    str(metrics_dir) if metrics_dir else None,
                    options.resume or ready.attempt > 0,
                ))

        def reap(worker: _Worker, reason: str) -> None:
            """Bury a dead/hung worker; requeue its shard; refill the pool."""
            nonlocal deaths, degraded
            attempt = worker.busy
            worker.busy = None
            self._kill(worker)
            workers.pop(worker.name, None)
            deaths += 1
            if attempt is not None:
                queue.append(attempt)
            if deaths > death_budget:
                degraded = True
                logger.warning(
                    "sharded sweep: %d worker deaths exceed the budget of "
                    "%d; degrading to in-process serial execution",
                    deaths, death_budget,
                )
                return
            if attempt is not None:
                if attempt.attempt >= options.shard_retries:
                    degraded = True
                    logger.warning(
                        "shard %d (%s) exhausted its retry budget of %d; "
                        "degrading to in-process serial execution",
                        attempt.spec.index, attempt.spec.tag,
                        options.shard_retries,
                    )
                    return
                registry.inc("shards.retried")
                attempt.attempt += 1
                attempt.not_before = monotonic() + _backoff_delay(
                    options, attempt.spec.index, attempt.attempt
                )
                logger.warning(
                    "worker %s %s on shard %d (%s); requeued as attempt %d",
                    worker.name, reason, attempt.spec.index,
                    attempt.spec.tag, attempt.attempt,
                )
            spawn_worker()

        def handle(message: Tuple) -> None:
            nonlocal n_done
            kind, name = message[0], message[1]
            worker = workers.get(name)
            if worker is not None:
                worker.last_beat = monotonic()
            if worker is None or worker.busy is None:
                return  # stale message from an already-reaped worker
            if kind == "ok":
                _, _, index, value, wall = message
                attempt = worker.busy
                worker.busy = None
                outcome = ShardOutcome(
                    index=index, tag=attempt.spec.tag, value=value,
                    attempts=attempt.attempt + 1, worker=name, wall_s=wall,
                )
                self._record_done(outcome, journal)
                done[index] = outcome
                n_done += 1
            elif kind == "err":
                _, _, index, exc_name, exc_msg, tb, _wall = message
                worker.busy = None
                raise ShardError(
                    f"shard {index} raised {exc_name}: {exc_msg}\n"
                    f"--- worker traceback ---\n{tb}"
                )

        try:
            for _ in range(min(options.parallel, n_target)):
                spawn_worker()
            while n_done < n_target and not degraded:
                dispatch()
                # Block briefly for the first message, then drain whatever
                # has piled up so heartbeats can never starve completions.
                draining = True
                try:
                    message = results.get(timeout=_TICK)
                except Empty:
                    draining = False
                while draining:
                    handle(message)
                    try:
                        message = results.get_nowait()
                    except Empty:
                        draining = False
                now = monotonic()
                for worker in list(workers.values()):
                    if worker.busy is None:
                        continue
                    if not worker.process.is_alive():
                        reap(worker, "crashed")
                    elif now - worker.last_beat > options.shard_timeout:
                        reap(worker, "stopped heartbeating")
        finally:
            for worker in list(workers.values()):
                self._kill(worker)
            results.cancel_join_thread()
            results.close()
        survivors = list(queue) + [
            w.busy for w in workers.values() if w.busy is not None
        ]
        return sorted(survivors, key=lambda a: a.spec.index)

    @staticmethod
    def _kill(worker: _Worker) -> None:
        try:
            worker.jobs.cancel_join_thread()
            worker.jobs.close()
        except (OSError, ValueError) as exc:
            logger.debug("closing %s job queue: %s", worker.name, exc)
        process = worker.process
        if process.is_alive():
            process.terminate()
            process.join(timeout=1.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=1.0)


def run_sharded(task: Callable, payloads: Sequence[object], *,
                tags: Optional[Sequence[str]] = None,
                options: Union[int, SweepOptions, None] = None
                ) -> List[ShardOutcome]:
    """One-call façade over :class:`ShardedRunner`."""
    return ShardedRunner(task, options=options).run(payloads, tags=tags)


__all__ = [
    "ShardContext",
    "ShardOutcome",
    "ShardedRunner",
    "SweepOptions",
    "run_sharded",
]
